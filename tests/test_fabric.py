"""Tests for the sharded + replicated tuple-space fabric (``repro.fabric``).

Covers the shard keying rules, consistent-hash placement, O(k) routed
lookups, the bounded wildcard scatter, shard-map skew convergence via the
piggybacked digest, ownership handoff racing a blocking ``in``, and —
load-bearing for every seeded baseline in the repo — that a fabric-less
instance is bit-for-bit unaffected by the subsystem's existence.
"""

import pytest

from repro.core import TiamatConfig, TiamatInstance
from repro.core import protocol
from repro.fabric import (
    FabricConfig,
    HashRing,
    ShardMap,
    is_infrastructure,
    pattern_shard_key,
    shard_key,
    stable_hash,
)
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple


@pytest.fixture()
def sim():
    return Simulator(seed=7)


def fabric_config(**overrides) -> FabricConfig:
    """Tight timings so handoff fits inside short test horizons."""
    defaults = dict(replication=2, key_fields=2, membership_lease=0.8,
                    heartbeat_period=0.25, migrate_timeout=0.4)
    defaults.update(overrides)
    return FabricConfig(**defaults)


def build(sim, names, fabric=True, **overrides):
    net = Network(sim)
    config = TiamatConfig(
        fabric=fabric_config(**overrides) if fabric else None)
    instances = {n: TiamatInstance(sim, net, n, config=config)
                 for n in names}
    net.visibility.connect_clique(list(names))
    if fabric:
        for inst in instances.values():
            inst.fabric.bootstrap(list(names))
    return net, instances


# ---------------------------------------------------------------------------
# Shard keying
# ---------------------------------------------------------------------------
def test_shard_key_covers_arity_and_leading_fields():
    assert shard_key(Tuple("job", "k0", 1), 2) == shard_key(
        Tuple("job", "k0", 99), 2)
    assert shard_key(Tuple("job", "k0", 1), 2) != shard_key(
        Tuple("job", "k1", 1), 2)
    # Arity is always part of the key: same prefix, different width.
    assert shard_key(Tuple("job", "k0"), 2) != shard_key(
        Tuple("job", "k0", 1), 2)
    # Types distinguish: 1 and "1" must not collide.
    assert shard_key(Tuple(1, "x"), 1) != shard_key(Tuple("1", "x"), 1)


def test_pattern_shard_key_requires_ground_prefix():
    assert pattern_shard_key(Pattern("job", "k0", Formal(int)), 2) == \
        shard_key(Tuple("job", "k0", 7), 2)
    # A wildcard inside the key prefix cannot route.
    assert pattern_shard_key(Pattern("job", Formal(str), 3), 2) is None
    assert pattern_shard_key(Pattern(Formal(str), "k0", 3), 2) is None
    # ...but is fine beyond the prefix.
    assert pattern_shard_key(Pattern("job", "k0", Formal(int)), 1) is not None


def test_infrastructure_tuples_never_shard():
    from repro.fabric import pattern_is_infrastructure

    assert is_infrastructure(Tuple("_registry", "svc", 1))
    assert not is_infrastructure(Tuple("registry", "svc", 1))
    assert pattern_is_infrastructure(Pattern("_registry", Formal(str)))
    assert not pattern_is_infrastructure(Pattern("registry", Formal(str)))


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------
def test_ring_deterministic_and_distinct_owners():
    a = HashRing(["n0", "n1", "n2", "n3"], vnodes=8)
    b = HashRing(["n3", "n2", "n1", "n0"], vnodes=8)  # order-insensitive
    for key in ("alpha", "beta", "gamma"):
        owners = a.owners(key, 2)
        assert owners == b.owners(key, 2)
        assert len(owners) == len(set(owners)) == 2


def test_ring_minimal_movement_on_join():
    before = HashRing([f"n{i}" for i in range(10)], vnodes=8)
    after = HashRing([f"n{i}" for i in range(11)], vnodes=8)
    keys = [f"key-{i}" for i in range(200)]
    moved = sum(1 for k in keys
                if before.owners(k, 1) != after.owners(k, 1)
                and after.owners(k, 1) == ["n10"])
    stayed = sum(1 for k in keys if before.owners(k, 1) == after.owners(k, 1))
    # Consistent hashing: roughly 1/11 of keys move, all to the joiner.
    assert stayed > 150
    assert 2 <= moved <= 60


def test_stable_hash_is_process_independent():
    # Pinned value: placement must agree across runs and machines (the
    # builtin hash() is salted per process and would not).
    assert stable_hash("tiamat") == 0xC508_E232_6827_C3CD
    assert stable_hash("a") != stable_hash("b")


# ---------------------------------------------------------------------------
# Shard map
# ---------------------------------------------------------------------------
def test_shard_map_merge_converges_and_digest_tracks_names():
    left, right = ShardMap(), ShardMap()
    left.renew("a", 10.0)
    left.renew("b", 12.0)
    right.renew("b", 15.0)
    right.renew("c", 9.0)
    left.merge(right.to_payload())
    right.merge(left.to_payload())
    assert left.members == right.members == {"a": 10.0, "b": 15.0, "c": 9.0}
    assert left.digest(0.0) == right.digest(0.0)
    # The digest covers live *names*, not expiries: a renewal that keeps
    # the same membership must not change it (it piggybacks on every
    # frame, so expiry-sensitivity would mean perpetual map pushes).
    before = left.digest(0.0)
    left.renew("a", 11.0)
    assert left.digest(0.0) == before
    # Losing a member does change it.
    assert left.digest(10.5) != before


# ---------------------------------------------------------------------------
# Routing integration
# ---------------------------------------------------------------------------
def test_ground_lookup_contacts_at_most_k_owners(sim):
    net, inst = build(sim, [f"n{i}" for i in range(8)])
    producer = inst["n0"]
    producer.out(Tuple("job", "key-a", 1))
    sim.run(until=1.0)
    # Pick a consumer that is not in the owner set, so the lookup must go
    # remote; it may contact at most the k=2 owners.
    owners = producer.fabric.map.ring(sim.now).owners(
        shard_key(Tuple("job", "key-a", 1), 2), 2)
    consumer = next(inst[n] for n in sorted(inst)
                    if n not in owners)
    op = consumer.in_(Pattern("job", "key-a", Formal(int)))
    sim.run(until=3.0)
    assert op.event.value == Tuple("job", "key-a", 1)
    assert len(op.contacted) <= 2
    assert set(op.contacted) <= set(owners)


def test_wildcard_first_pattern_scatters_bounded(sim):
    net, inst = build(sim, [f"n{i}" for i in range(12)], scatter_limit=4)
    sim.run(until=0.5)
    consumer = inst["n0"]
    peers = consumer.fabric.plan(Pattern(Formal(str), "x", Formal(int)))
    assert 0 < len(peers) <= 4
    # And a ground-prefix plan stays O(k), independent of population.
    routed = consumer.fabric.plan(Pattern("job", "key-z", Formal(int)))
    assert len(routed) <= 2


def test_routed_deposit_lands_at_owner(sim):
    net, inst = build(sim, ["a", "b", "c", "d"])
    sim.run(until=0.5)
    tup = Tuple("job", "route-me", 1)
    owners = inst["a"].fabric.map.ring(sim.now).owners(shard_key(tup, 2), 2)
    sender = next(inst[n] for n in sorted(inst) if n not in owners)
    sender.out(tup)
    sim.run(until=1.5)
    primary = inst[owners[0]]
    assert any(e.tuple == tup and not e.removed and not e.held
               for e in primary.space.store), "deposit did not reach owner"
    # The sender kept no copy.
    assert not any(e.tuple == tup and not e.removed
                   for e in sender.space.store)


def test_shard_map_skew_converges_via_piggybacked_digest(sim):
    net, inst = build(sim, ["a", "b", "c"])
    sim.run(until=0.5)
    # Inject skew: node c learns of a phantom member the others lack.
    inst["c"].fabric.map.renew("zz-phantom", sim.now + 5.0)
    inst["c"].fabric._next_lapse = 0.0
    assert inst["a"].fabric.digest() != inst["c"].fabric.digest()
    # Any ordinary frame exchange carries the digest; the mismatch
    # triggers a (rate-limited) full-map push and the maps converge.
    inst["a"].out(Tuple("job", "poke", 1))
    op = inst["c"].in_(Pattern("job", "poke", Formal(int)))
    sim.run(until=2.0)
    assert op.event.triggered
    assert inst["a"].fabric.map.is_live("zz-phantom", sim.now)
    assert inst["a"].fabric.digest() == inst["c"].fabric.digest()


def test_handoff_races_blocking_in(sim):
    """A blocked ``in`` survives its shard primary crashing mid-wait.

    The replica holder promotes its quarantined copy after the witness
    sync, the map-change subscription re-contacts the new owner, and the
    waiter gets the tuple exactly once.
    """
    net, inst = build(sim, ["a", "b", "c", "d", "e"])
    sim.run(until=0.3)
    tup = Tuple("job", "fail-over", 41)
    owners = inst["a"].fabric.map.ring(sim.now).owners(shard_key(tup, 2), 2)
    primary = owners[0]
    outsiders = [n for n in sorted(inst) if n not in owners]
    inst[outsiders[0]].out(tup)
    sim.run(until=0.8)
    # Issue the `in` and crash the primary in the same instant: the
    # consumer's query races the handoff — its frame to the primary is
    # lost with the crash, and only the promotion of the quarantined
    # replica (plus the map-change re-plan) can satisfy it.
    op = inst[outsiders[1]].in_(Pattern("job", "fail-over", Formal(int)))
    inst[primary].shutdown()
    assert not op.event.triggered
    sim.run(until=6.0)
    assert op.event.triggered, "blocked in never satisfied after handoff"
    assert op.event.value == tup
    # Exactly once: no copy of the tuple survives anywhere.
    for name, node in inst.items():
        if name == primary:
            continue
        assert not any(e.tuple == tup and not e.removed
                       for e in node.space.store), name


# ---------------------------------------------------------------------------
# Fabric-off passivity
# ---------------------------------------------------------------------------
def test_fabric_defaults_off():
    assert TiamatConfig().fabric is None
    with pytest.raises(ValueError):
        TiamatConfig(fabric="yes")  # type: ignore[arg-type]


def test_fabric_off_sends_no_fabric_frames_or_digests(sim):
    """Seeded baselines must be bit-identical with the fabric absent: no
    fabric frame kinds, no piggybacked digest key, no manager attached."""
    captured = []
    net, inst = build(sim, ["a", "b", "c"], fabric=False)
    orig = net.unicast

    def spy(src, dst, payload):
        captured.append(payload)
        return orig(src, dst, payload)

    net.unicast = spy
    assert all(node.fabric is None for node in inst.values())
    inst["a"].out(Tuple("job", "k", 1))
    op = inst["b"].in_(Pattern("job", "k", Formal(int)))
    sim.run(until=3.0)
    assert op.event.triggered
    kinds = {p.get("kind") for p in captured}
    assert not (kinds & protocol.FABRIC_KINDS)
    assert not any("fmd" in p for p in captured)
    by_kind = set()
    for node_stats in net.stats.nodes.values():
        by_kind |= set(node_stats.by_kind)
    assert not (by_kind & protocol.FABRIC_KINDS)


def test_fabric_churn_template_is_deterministic_and_clean():
    from repro.check.explorer import Perturbations, run_schedule

    hashes = set()
    for _ in range(2):
        outcome = run_schedule("fabric_churn", 23, Perturbations())
        assert not outcome.violations
        hashes.add(outcome.schedule_hash)
    assert len(hashes) == 1, "fabric_churn schedule not deterministic"
