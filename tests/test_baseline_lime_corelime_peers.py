"""Tests for the LIME, CoreLime, and PeerSpaces baselines."""


from repro.baselines import (
    build_corelime_system,
    build_lime_system,
    build_peers_system,
)
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


# ---------------------------------------------------------------------------
# LIME
# ---------------------------------------------------------------------------
def lime_system(n=3, max_hosts=6):
    sim = Simulator(seed=5)
    net = Network(sim)
    names = [f"h{i}" for i in range(n)]
    federation, hosts = build_lime_system(sim, net, names, max_hosts=max_hosts)
    net.visibility.connect_clique(names)
    return sim, net, federation, hosts


def test_lime_engaged_hosts_share_space():
    sim, net, fed, hosts = lime_system()
    hosts["h0"].engage()
    hosts["h1"].engage()
    sim.run(until=5.0)
    hosts["h0"].out(Tuple("shared", 1))
    op = hosts["h1"].rdp(Pattern("shared", int))
    sim.run(until=6.0)
    assert op.result == Tuple("shared", 1)


def test_lime_disengaged_host_sees_only_local():
    sim, net, fed, hosts = lime_system()
    hosts["h0"].engage()
    sim.run(until=5.0)
    hosts["h0"].out(Tuple("federated"))
    hosts["h1"].out(Tuple("private"))  # h1 never engaged
    op = hosts["h1"].rdp(Pattern("federated"))
    sim.run(until=6.0)
    assert op.result is None
    op2 = hosts["h1"].rdp(Pattern("private"))
    sim.run(until=7.0)
    assert op2.result == Tuple("private")


def test_lime_engagement_blocks_operations():
    """Atomic engagement: other ops cannot proceed meanwhile (4.4)."""
    sim, net, fed, hosts = lime_system()
    hosts["h0"].engage()
    sim.run(until=5.0)
    hosts["h0"].out(Tuple("x"))
    sim.run(until=6.0)
    # Start a slow engagement, then immediately issue an op: it must queue.
    hosts["h1"].engage()
    op = hosts["h0"].rdp(Pattern("x"))
    assert not op.done  # blocked behind the engagement barrier
    assert fed.ops_blocked_by_engagement == 1
    sim.run(until=10.0)
    assert op.result == Tuple("x")


def test_lime_engagement_cost_grows_with_size():
    sim, net, fed, hosts = lime_system(n=6)
    times = []
    for i in range(4):
        start = sim.now
        handle = hosts[f"h{i}"].engage()
        sim.run(until=sim.now + 30.0)
        assert handle.done
        times.append(sim.peek() or sim.now)
        # engagement completion time grows with membership
    assert fed.engagements == 4


def test_lime_federation_capacity_wall():
    """The reported >6-host failure (Carbunar et al., cited in 4.4)."""
    sim, net, fed, hosts = lime_system(n=8, max_hosts=6)
    handles = []
    for i in range(8):
        handles.append(hosts[f"h{i}"].engage())
        sim.run(until=sim.now + 10.0)
    succeeded = [h for h in handles if h.result is not None]
    failed = [h for h in handles if h.result is None]
    assert len(succeeded) == 6 and len(failed) == 2
    assert fed.engagement_failures == 2


def test_lime_disengage_shrinks_federation():
    sim, net, fed, hosts = lime_system()
    hosts["h0"].engage()
    hosts["h1"].engage()
    sim.run(until=5.0)
    assert fed.engaged_count == 2
    hosts["h1"].disengage()
    sim.run(until=10.0)
    assert fed.engaged_count == 1
    assert not hosts["h1"].engaged


def test_lime_blocking_in_with_timeout():
    sim, net, fed, hosts = lime_system()
    hosts["h0"].engage()
    hosts["h1"].engage()
    sim.run(until=5.0)
    op = hosts["h1"].in_(Pattern("later"), timeout=20.0)
    sim.schedule(8.0, hosts["h0"].out, Tuple("later"))
    sim.run(until=15.0)
    assert op.result == Tuple("later")


# ---------------------------------------------------------------------------
# CoreLime
# ---------------------------------------------------------------------------
def corelime_system():
    sim = Simulator(seed=6)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    return sim, net, hosts


def test_corelime_ops_are_local_only():
    sim, net, hosts = corelime_system()
    hosts["b"].out(Tuple("remote-only"))
    op = hosts["a"].rdp(Pattern("remote-only"))
    assert op.done and op.result is None  # no remote communication at all
    assert net.stats.total_messages == 0


def test_corelime_agent_performs_remote_rdp():
    sim, net, hosts = corelime_system()
    hosts["b"].out(Tuple("remote", 1))
    agent = hosts["a"].send_agent("b", "rdp", Pattern("remote", int))
    sim.run(until=5.0)
    assert agent.result == Tuple("remote", 1)
    assert hosts["a"].agents_sent == 1


def test_corelime_agent_performs_remote_in():
    sim, net, hosts = corelime_system()
    hosts["b"].out(Tuple("remote", 1))
    agent = hosts["a"].send_agent("b", "in", Pattern("remote", int))
    sim.run(until=5.0)
    assert agent.result == Tuple("remote", 1)
    assert hosts["b"].space.count(Pattern("remote", int)) == 0


def test_corelime_agent_out_deposits_remotely():
    sim, net, hosts = corelime_system()
    agent = hosts["a"].send_agent("b", "out", tup=Tuple("delivered"))
    sim.run(until=5.0)
    assert agent.done
    assert hosts["b"].space.count(Pattern("delivered")) == 1


def test_corelime_agent_fails_when_destination_invisible():
    sim, net, hosts = corelime_system()
    net.visibility.set_visible("a", "b", False)
    agent = hosts["a"].send_agent("b", "rdp", Pattern("x"))
    assert agent.done and agent.result is None
    assert hosts["a"].agents_lost == 1


def test_corelime_agent_migration_is_expensive():
    """Agent code travels both ways: far more bytes than a Tiamat query."""
    sim, net, hosts = corelime_system()
    hosts["b"].out(Tuple("x"))
    hosts["a"].send_agent("b", "rdp", Pattern("x"))
    sim.run(until=5.0)
    assert net.stats.total_bytes > 2 * 2048


def test_corelime_agent_blocking_waits_then_returns():
    sim, net, hosts = corelime_system()
    agent = hosts["a"].send_agent("b", "rd", Pattern("later"), timeout=10.0)
    sim.schedule(3.0, hosts["b"].out, Tuple("later"))
    sim.run(until=8.0)
    assert agent.result == Tuple("later")


# ---------------------------------------------------------------------------
# PeerSpaces
# ---------------------------------------------------------------------------
def peers_system(n=4, ttl=4):
    sim = Simulator(seed=7)
    net = Network(sim)
    names = [f"p{i}" for i in range(n)]
    nodes = build_peers_system(sim, net, names, default_ttl=ttl)
    return sim, net, nodes, names


def test_peers_flooding_finds_tuple_in_clique():
    sim, net, nodes, names = peers_system()
    net.visibility.connect_clique(names)
    nodes["p3"].out(Tuple("somewhere", 1))
    op = nodes["p0"].rdp(Pattern("somewhere", int))
    sim.run(until=5.0)
    assert op.result == Tuple("somewhere", 1)


def test_peers_flooding_traverses_multihop_chain():
    sim, net, nodes, names = peers_system()
    for a, b in zip(names, names[1:]):
        net.visibility.set_visible(a, b)
    nodes["p3"].out(Tuple("far"))
    op = nodes["p0"].rdp(Pattern("far"))
    sim.run(until=5.0)
    assert op.result == Tuple("far")
    assert nodes["p1"].queries_forwarded >= 1


def test_peers_ttl_bounds_search_radius():
    sim, net, nodes, names = peers_system(n=4, ttl=2)
    for a, b in zip(names, names[1:]):
        net.visibility.set_visible(a, b)
    nodes["p3"].out(Tuple("too-far"))
    op = nodes["p0"].rdp(Pattern("too-far"))
    sim.run(until=10.0)
    assert op.result is None  # 3 hops needed, TTL allows 2


def test_peers_destructive_search_consumes_exactly_once():
    sim, net, nodes, names = peers_system()
    net.visibility.connect_clique(names)
    nodes["p2"].out(Tuple("prize"))
    op = nodes["p0"].inp(Pattern("prize"))
    sim.run(until=10.0)
    assert op.result == Tuple("prize")
    assert sum(n.stored_tuples() for n in nodes.values()) == 0


def test_peers_blocking_in_refloods_until_found():
    sim, net, nodes, names = peers_system()
    net.visibility.connect_clique(names)
    op = nodes["p0"].in_(Pattern("later"), timeout=20.0)
    sim.schedule(3.0, nodes["p2"].out, Tuple("later"))
    sim.run(until=15.0)
    assert op.result == Tuple("later")


def test_peers_search_lease_is_fault_tolerance_only():
    sim, net, nodes, names = peers_system()
    net.visibility.connect_clique(names)
    op = nodes["p0"].rdp(Pattern("nothing"))
    sim.run(until=10.0)
    assert op.done and op.error == "search lease expired"


def test_peers_tuples_never_expire():
    """No resource management: deposits stay forever (section 4.6)."""
    sim, net, nodes, names = peers_system()
    nodes["p0"].out(Tuple("immortal"))
    sim.run(until=10_000.0)
    assert nodes["p0"].stored_tuples() == 1


def test_peers_flood_cost_grows_with_clique_size():
    results = {}
    for n in (4, 8):
        sim = Simulator(seed=8)
        net = Network(sim)
        names = [f"p{i}" for i in range(n)]
        nodes = build_peers_system(sim, net, names)
        net.visibility.connect_clique(names)
        nodes[names[-1]].out(Tuple("target"))
        op = nodes[names[0]].rdp(Pattern("target"))
        sim.run(until=10.0)
        assert op.result is not None
        results[n] = net.stats.total_messages
    assert results[8] > results[4]
