"""Unit and property tests for the indexed tuple store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TupleError
from repro.sim import RngStream
from repro.tuples import ANY, Pattern, Tuple, TupleStore


def test_add_and_find():
    store = TupleStore()
    store.add(Tuple("a", 1))
    entry = store.find(Pattern("a", int))
    assert entry is not None and entry.tuple == Tuple("a", 1)


def test_find_returns_none_when_no_match():
    store = TupleStore()
    store.add(Tuple("a", 1))
    assert store.find(Pattern("b", int)) is None
    assert store.find(Pattern("a", str)) is None


def test_duplicates_are_a_multiset():
    store = TupleStore()
    e1 = store.add(Tuple("dup"))
    e2 = store.add(Tuple("dup"))
    assert e1.entry_id != e2.entry_id
    assert len(store.find_all(Pattern("dup"))) == 2
    store.remove(e1.entry_id)
    assert len(store.find_all(Pattern("dup"))) == 1


def test_remove_unknown_entry_raises():
    with pytest.raises(TupleError):
        TupleStore().remove(123)


def test_find_all_is_oldest_first():
    store = TupleStore()
    for i in range(5):
        store.add(Tuple("seq", i))
    values = [e.tuple[1] for e in store.find_all(Pattern("seq", int))]
    assert values == [0, 1, 2, 3, 4]


def test_find_without_rng_returns_oldest():
    store = TupleStore()
    store.add(Tuple("x", 10))
    store.add(Tuple("x", 20))
    assert store.find(Pattern("x", int)).tuple[1] == 10


def test_find_with_rng_is_nondeterministic_but_valid():
    store = TupleStore()
    for i in range(10):
        store.add(Tuple("x", i))
    rng = RngStream(0)
    seen = {store.find(Pattern("x", int), rng).tuple[1] for _ in range(50)}
    assert len(seen) > 1  # more than one candidate gets picked
    assert seen <= set(range(10))


def test_hold_hides_from_queries():
    store = TupleStore()
    entry = store.add(Tuple("held"))
    store.hold(entry.entry_id)
    assert store.find(Pattern("held")) is None
    assert len(store) == 1  # still resident
    assert store.visible_count == 0


def test_release_restores_visibility():
    store = TupleStore()
    entry = store.add(Tuple("held"))
    store.hold(entry.entry_id)
    store.release(entry.entry_id)
    assert store.find(Pattern("held")) is not None


def test_confirm_removes_for_good():
    store = TupleStore()
    entry = store.add(Tuple("held"))
    store.hold(entry.entry_id)
    store.confirm(entry.entry_id)
    assert store.find(Pattern("held")) is None
    assert len(store) == 0


def test_double_hold_rejected():
    store = TupleStore()
    entry = store.add(Tuple("x"))
    store.hold(entry.entry_id)
    with pytest.raises(TupleError):
        store.hold(entry.entry_id)


def test_confirm_or_release_without_hold_rejected():
    store = TupleStore()
    entry = store.add(Tuple("x"))
    with pytest.raises(TupleError):
        store.confirm(entry.entry_id)
    with pytest.raises(TupleError):
        store.release(entry.entry_id)


def test_exact_type_indexing_does_not_cross_types():
    store = TupleStore()
    store.add(Tuple("k", 1))
    store.add(Tuple("k", True))
    assert store.find(Pattern("k", 1)).tuple == Tuple("k", 1)
    assert store.find(Pattern("k", True)).tuple == Tuple("k", True)


def test_candidates_use_actual_index():
    store = TupleStore()
    for i in range(100):
        store.add(Tuple("bulk", i))
    store.add(Tuple("rare", 0))
    # Searching for the rare tag should inspect only the rare bucket.
    candidates = list(store.candidates(Pattern("rare", int)))
    assert len(candidates) == 1


def test_stored_bytes_positive_and_monotone():
    store = TupleStore()
    assert store.stored_bytes() == 0
    store.add(Tuple("payload", "x" * 100))
    size1 = store.stored_bytes()
    store.add(Tuple("payload", "y" * 100))
    assert size1 > 100
    assert store.stored_bytes() > size1


def test_get_and_iter():
    store = TupleStore()
    entry = store.add(Tuple("x"))
    assert store.get(entry.entry_id) is entry
    assert store.get(9999) is None
    assert [e.tuple for e in store] == [Tuple("x")]


# ---------------------------------------------------------------------------
# Properties: the store behaves as a multiset under add/remove
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=30))
def test_multiset_semantics(values):
    store = TupleStore()
    ids = [store.add(Tuple("v", v)).entry_id for v in values]
    assert len(store) == len(values)
    for v in set(values):
        assert len(store.find_all(Pattern("v", v))) == values.count(v)
    for entry_id in ids:
        store.remove(entry_id)
    assert len(store) == 0
    assert store.find(Pattern("v", ANY)) is None


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
def test_hold_release_preserves_contents(values):
    store = TupleStore()
    entries = [store.add(Tuple("v", v)) for v in values]
    for entry in entries:
        store.hold(entry.entry_id)
    assert store.visible_count == 0
    for entry in entries:
        store.release(entry.entry_id)
    assert store.visible_count == len(values)
    assert sorted(e.tuple[1] for e in store.find_all(Pattern("v", ANY))) == sorted(values)
