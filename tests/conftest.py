"""Shared test configuration: Hypothesis settings profiles.

Two profiles, selected with ``HYPOTHESIS_PROFILE`` (default ``dev``):

* ``ci``  — derandomized (no fresh entropy per run, so CI failures are
  reproducible from the log alone), ``deadline=None`` (shared runners
  have noisy clocks; per-example deadlines are the classic flake source),
  and ``print_blob=True`` so a failing example prints its
  ``@reproduce_failure`` blob.
* ``dev`` — fast local iteration: fewer examples, deadline off, blob
  printing on so a local failure is also replayable.

The import is guarded so the suite still collects in environments
without Hypothesis installed (the property tests themselves would be
skipped/erroring, but plain unit tests keep working).
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=100,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "dev",
        deadline=None,
        max_examples=25,
        print_blob=True,
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
