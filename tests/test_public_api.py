"""Pin the redesigned public API surface (PR 4).

Three kinds of guarantees:

* **exports** — every package's ``__all__`` is pinned exactly; adding or
  removing a name is a deliberate, reviewed act that edits this file;
* **shape** — the blessed constructors are keyword-only for their
  optional arguments (inspected, not just documented), and
  :func:`repro.connect` is the one-call entry point (v1.2);
* **compatibility** — the legacy forms — positional constructor calls,
  :func:`repro.create_instance`, and the threaded-class re-exports from
  ``repro.runtime`` — still work, but only under
  :class:`DeprecationWarning`.

Run in CI as its own step (see ``.github/workflows/ci.yml``).
"""

import inspect
import warnings

import pytest

import repro
import repro.core
import repro.leasing
import repro.net
import repro.obs
import repro.runtime
import repro.sim
import repro.tuples
import repro.tuples.storage

# ---------------------------------------------------------------------------
# 1. Exported names, pinned exactly.
# ---------------------------------------------------------------------------
EXPECTED_TOP_LEVEL = {
    "ANY", "AdmissionController", "Formal", "LeaseTerms", "Network",
    "Pattern", "Range", "Refusal", "SimpleLeaseRequester", "Simulator",
    "SpaceHandle", "TiamatConfig", "TiamatInstance", "TiamatNodeHandle",
    "TiamatRuntime", "Tuple", "UnavailablePolicy", "VisibilityGraph",
    "__version__", "connect", "create_instance",
}

EXPECTED_CORE = {
    "ALL_REFUSAL_REASONS", "AdmissionController", "AdmissionDecision",
    "AppMonitor", "CommsManager", "ConflictResolver", "EvalTask",
    "FairShare", "LeaseTuner", "Operation", "QueryServer", "Refusal",
    "ReliableChannel", "RtsMonitor", "RandomRelayRouter", "Router",
    "SPACE_INFO_PATTERN", "SPACE_INFO_TAG", "SocialRouter", "SpaceHandle",
    "TiamatConfig", "TiamatInstance", "UnavailablePolicy", "parse_refusal",
}

EXPECTED_RUNTIME = {
    "AioRuntime", "SHED", "SimRuntime", "ThreadSafeTupleSpace",
    "ThreadedNodeRegistry", "ThreadedTiamatNode", "ThreadsRuntime",
    "TiamatNodeHandle", "TiamatRuntime", "connect",
}

EXPECTED_SIM = {
    "AllOf", "AnyOf", "Event", "Gate", "Process", "SimResource",
    "SimStore", "RngStream", "Simulator", "Timeout", "Timer",
}

EXPECTED_TUPLES = {
    "ANY", "Actual", "Field", "Formal", "LocalTupleSpace", "Pattern",
    "Range", "StoredEntry", "Tuple", "TupleStore", "Waiter",
    "decode_pattern", "decode_tuple", "encode_pattern", "encode_tuple",
    "encoded_size", "load_space", "matches", "restore_space",
    "save_space", "snapshot_space",
}

EXPECTED_STORAGE = {
    "DEFAULT_SKIP_TAGS", "MemoryBackend", "MemoryFS", "OsFS",
    "RecoveredState", "RecoveryStats", "SqliteBackend", "StorageBackend",
    "WALBackend", "attach_backend", "inspect_wal",
}

EXPECTED_LEASING = {
    "AcceptAnythingRequester", "AdaptivePolicy", "ConservativePolicy",
    "DenyAllPolicy", "GenerousPolicy", "GrantPolicy", "Lease",
    "LeaseManager", "LeaseRequester", "LeaseState", "LeaseTerms",
    "OperationKind", "ResourceFactory", "ResourceToken",
    "SimpleLeaseRequester",
}

EXPECTED_NET = {
    "ChurnInjector", "CorruptPayload", "CrashRestartInjector",
    "DuplicateFrames", "FaultInjector", "FaultPlan", "GilbertElliottLoss",
    "MultiHopVisibilityDriver", "OneWayLink", "ProtocolTrace",
    "RandomLoss", "ReorderFrames", "TraceEntry", "Message", "Network",
    "NetworkInterface", "NetworkStats", "NodeStats", "Position",
    "RandomWaypointMobility", "RangeVisibilityDriver", "StaticPlacement",
    "VisibilityGraph", "WaypointTrace",
}

EXPECTED_OBS = {
    "Counter", "DEFAULT_COUNT_BUCKETS", "DEFAULT_TIME_BUCKETS",
    "FlightRecorder", "FlightRing", "Gauge", "Histogram", "MetricFamily",
    "MetricsRegistry", "NodeHealth", "Observability", "SLOObjective",
    "SLOTracker", "TELEMETRY_TAG", "TelemetryPublisher", "TraceEvent",
    "Tracer", "collect_cluster_health", "load_flight_dump", "render_flight",
    "render_top",
}


@pytest.mark.parametrize("module, expected", [
    (repro, EXPECTED_TOP_LEVEL),
    (repro.core, EXPECTED_CORE),
    (repro.runtime, EXPECTED_RUNTIME),
    (repro.sim, EXPECTED_SIM),
    (repro.tuples, EXPECTED_TUPLES),
    (repro.tuples.storage, EXPECTED_STORAGE),
    (repro.leasing, EXPECTED_LEASING),
    (repro.net, EXPECTED_NET),
    (repro.obs, EXPECTED_OBS),
], ids=lambda m: getattr(m, "__name__", None) or "expected")
def test_all_is_pinned(module, expected):
    assert set(module.__all__) == expected
    # __all__ must not promise names the module cannot deliver.
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_all_lists_are_sorted():
    for module in (repro, repro.core):
        assert list(module.__all__) == sorted(module.__all__), module


# ---------------------------------------------------------------------------
# 2. Constructor shape: optionals are keyword-only in the blessed form.
# ---------------------------------------------------------------------------
def _keyword_only_names(func):
    return {p.name for p in inspect.signature(func).parameters.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY}


def test_instance_ctor_optionals_are_keyword_only():
    kw = _keyword_only_names(repro.TiamatInstance.__init__)
    assert {"policy", "config", "storage_capacity", "thread_capacity",
            "router", "space"} <= kw


def test_network_ctor_optionals_are_keyword_only():
    kw = _keyword_only_names(repro.Network.__init__)
    assert {"visibility", "loss_rate", "latency_factory", "codec",
            "batching"} <= kw


def test_connect_is_the_front_door():
    sig = inspect.signature(repro.connect)
    params = list(sig.parameters.values())
    assert params[0].name == "runtime"
    assert all(p.kind is inspect.Parameter.KEYWORD_ONLY
               for p in params[1:] if p.kind is not
               inspect.Parameter.VAR_KEYWORD)
    with repro.connect(runtime="sim") as rt:
        assert isinstance(rt, repro.TiamatRuntime)


def test_create_instance_still_works_but_warns():
    sig = inspect.signature(repro.create_instance)
    params = list(sig.parameters.values())
    assert [p.name for p in params[:3]] == ["sim", "network", "name"]
    assert params[3].name == "config"
    assert params[3].kind is inspect.Parameter.KEYWORD_ONLY

    sim = repro.Simulator(seed=3)
    net = repro.Network(sim)
    with pytest.warns(DeprecationWarning, match="repro.connect"):
        inst = repro.create_instance(sim, net, "n0",
                                     config=repro.TiamatConfig())
    assert isinstance(inst, repro.TiamatInstance)
    assert inst.name == "n0"


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])
    # the runtime front door shipped in 1.2
    assert tuple(int(p) for p in parts[:2]) >= (1, 2)


# ---------------------------------------------------------------------------
# 3. Compatibility: legacy positional calls work, but warn.
# ---------------------------------------------------------------------------
def test_legacy_positional_instance_ctor_warns_and_works():
    sim = repro.Simulator(seed=3)
    net = repro.Network(sim)
    with pytest.warns(DeprecationWarning, match="positionally is deprecated"):
        inst = repro.TiamatInstance(sim, net, "legacy", None,
                                    repro.TiamatConfig(relay_ttl=5))
    assert inst.config.relay_ttl == 5


def test_legacy_positional_network_ctor_warns_and_works():
    sim = repro.Simulator(seed=3)
    vis = repro.VisibilityGraph()
    with pytest.warns(DeprecationWarning, match="positionally is deprecated"):
        net = repro.Network(sim, vis, 0.25)
    assert net.visibility is vis
    assert net.loss_rate == 0.25


def test_positional_and_keyword_duplicate_is_an_error():
    sim = repro.Simulator(seed=3)
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            repro.Network(sim, repro.VisibilityGraph(),
                          visibility=repro.VisibilityGraph())


def test_excess_positional_arguments_are_an_error():
    sim = repro.Simulator(seed=3)
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            repro.Network(sim, None, 0.0, None, None, False, "extra")


def test_keyword_form_does_not_warn():
    sim = repro.Simulator(seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        net = repro.Network(sim, loss_rate=0.0)
        repro.TiamatInstance(sim, net, "quiet",
                             config=repro.TiamatConfig())
