"""Tests for the centralized client/server baseline (TSpaces/JavaSpaces style)."""

import pytest

from repro.baselines import build_central_system
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


@pytest.fixture()
def system():
    sim = Simulator(seed=3)
    net = Network(sim)
    server, clients = build_central_system(sim, net, ["c1", "c2"])
    net.visibility.connect_clique(["server", "c1", "c2"])
    return sim, net, server, clients


def test_out_then_rdp_through_server(system):
    sim, net, server, clients = system
    clients["c1"].out(Tuple("x", 1))
    sim.run(until=1.0)  # let the deposit land before probing
    op = clients["c2"].rdp(Pattern("x", int))
    sim.run(until=5.0)
    assert op.result == Tuple("x", 1)
    assert server.space.count(Pattern("x", int)) == 1


def test_inp_consumes_at_server(system):
    sim, net, server, clients = system
    clients["c1"].out(Tuple("x", 1))
    sim.run(until=1.0)
    op = clients["c2"].inp(Pattern("x", int))
    sim.run(until=5.0)
    assert op.result == Tuple("x", 1)
    assert server.space.count(Pattern("x", int)) == 0


def test_blocking_in_waits_at_server(system):
    sim, net, server, clients = system
    op = clients["c2"].in_(Pattern("later"), timeout=20.0)
    sim.schedule(3.0, clients["c1"].out, Tuple("later"))
    sim.run(until=10.0)
    assert op.result == Tuple("later")


def test_blocking_op_times_out(system):
    sim, net, server, clients = system
    op = clients["c1"].rd(Pattern("never"), timeout=5.0)
    sim.run(until=15.0)
    assert op.done and op.result is None


def test_unreachable_server_fails_operations(system):
    """The paper's critique: one machine must be visible to all others."""
    sim, net, server, clients = system
    net.visibility.set_up("server", False)
    op = clients["c1"].rdp(Pattern("x"))
    sim.run(until=5.0)
    assert op.done and op.result is None and op.error == "server unreachable"
    clients["c1"].out(Tuple("lost"))
    assert clients["c1"].failures_unreachable == 2
    sim.run(until=10.0)
    assert server.space.count(Pattern("lost")) == 0


def test_clients_store_nothing(system):
    sim, net, server, clients = system
    clients["c1"].out(Tuple("x", 1))
    sim.run(until=5.0)
    assert clients["c1"].stored_tuples() == 0
    assert server.space.count() == 1


def test_exactly_once_between_competing_clients(system):
    sim, net, server, clients = system
    clients["c1"].out(Tuple("prize"))
    op1 = clients["c1"].in_(Pattern("prize"), timeout=10.0)
    op2 = clients["c2"].in_(Pattern("prize"), timeout=10.0)
    sim.run(until=20.0)
    winners = [op for op in (op1, op2) if op.result is not None]
    assert len(winners) == 1
