"""Integration tests for the fractal master/worker application."""


from repro.apps import FractalMaster, FractalWorker, mandelbrot_tile
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator


def make_farm(seed=31, workers=2, tiles=8, resolution=16, max_iter=40,
              time_per_iteration=None):
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = ["master"] + [f"worker{i}" for i in range(workers)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    master = FractalMaster(sim, instances["master"], job="job1",
                           tiles=tiles, resolution=resolution, max_iter=max_iter)
    workers_ = [FractalWorker(sim, instances[f"worker{i}"],
                              time_per_iteration=time_per_iteration)
                for i in range(workers)]
    for worker in workers_:
        worker.start()
    return sim, net, instances, master, workers_


# ---------------------------------------------------------------------------
# The kernel itself
# ---------------------------------------------------------------------------
def test_mandelbrot_kernel_deterministic():
    a = mandelbrot_tile(-2.0, -1.25, 0.5, 1.25, 8, 8, 50)
    b = mandelbrot_tile(-2.0, -1.25, 0.5, 1.25, 8, 8, 50)
    assert a == b > 0


def test_mandelbrot_interior_costs_more_than_exterior():
    # A tile inside the set saturates max_iter; a far-away tile escapes fast.
    interior = mandelbrot_tile(-0.2, -0.1, 0.0, 0.1, 8, 8, 100)
    exterior = mandelbrot_tile(10.0, 10.0, 11.0, 11.0, 8, 8, 100)
    assert interior > exterior
    assert interior == 8 * 8 * 100  # every point maxes out


# ---------------------------------------------------------------------------
# The farm
# ---------------------------------------------------------------------------
def test_render_completes_and_checksums(seed=31):
    sim, net, instances, master, workers = make_farm()
    process = sim.spawn(master.run())
    sim.run(until=600.0)
    assert master.complete
    assert process.value == master.checksum > 0


def test_checksum_independent_of_worker_count():
    """The distributed render computes the same image regardless of farm size."""
    checksums = []
    for workers in (1, 3):
        sim, net, instances, master, _ = make_farm(workers=workers)
        sim.spawn(master.run())
        sim.run(until=600.0)
        assert master.complete
        checksums.append(master.checksum)
    assert checksums[0] == checksums[1]


def test_more_workers_finish_faster():
    times = {}
    for workers in (1, 4):
        sim, net, instances, master, _ = make_farm(workers=workers, tiles=8,
                                                   resolution=32, max_iter=80)
        sim.spawn(master.run())
        sim.run(until=2000.0)
        assert master.complete
        times[workers] = master.finished_at - master.started_at
    assert times[4] < times[1]


def test_work_is_shared_among_workers():
    sim, net, instances, master, workers = make_farm(workers=3, tiles=9)
    sim.spawn(master.run())
    sim.run(until=600.0)
    assert master.complete
    busy = [w for w in workers if w.tiles_done > 0]
    assert len(busy) >= 2  # load actually spread


def test_workers_added_mid_render_without_perturbing_master():
    # Slow per-iteration time so the render genuinely outlasts the join.
    sim, net, instances, master, workers = make_farm(workers=1, tiles=12,
                                                     resolution=32, max_iter=80,
                                                     time_per_iteration=5e-4)
    process = sim.spawn(master.run())

    def add_worker():
        late = TiamatInstance(sim, net, "late-worker",
                              config=TiamatConfig(propagate_mode="continuous"))
        instances["late-worker"] = late
        net.visibility.connect_clique(list(instances))
        worker = FractalWorker(sim, late, time_per_iteration=5e-4)
        worker.start()
        workers.append(worker)

    sim.schedule(0.5, add_worker)
    sim.run(until=2000.0)
    assert master.complete
    assert workers[-1].tiles_done > 0  # the late worker contributed


def test_worker_removed_mid_render_without_losing_job():
    sim, net, instances, master, workers = make_farm(workers=2, tiles=8)
    sim.spawn(master.run())

    def drop_worker():
        workers[0].stop()
        net.visibility.set_up("worker0", False)

    sim.schedule(1.0, drop_worker)
    sim.run(until=2000.0)
    assert master.complete  # the surviving worker finished the job
