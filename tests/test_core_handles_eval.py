"""Tests for handle-directed ops, reply-to-origin out, eval, and routing."""

import pytest

from repro.core import (
    SpaceHandle,
    TiamatConfig,
    TiamatInstance,
    SocialRouter,
    UnavailablePolicy,
)
from repro.errors import OperationAbandonedError, TupleError
from repro.leasing import DenyAllPolicy, LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=7)


# ---------------------------------------------------------------------------
# SpaceHandle model
# ---------------------------------------------------------------------------
def test_handle_tuple_roundtrip():
    handle = SpaceHandle("node1", persistent=True)
    assert SpaceHandle.from_tuple(handle.to_tuple()) == handle


def test_handle_from_bad_tuple_rejected():
    with pytest.raises(TupleError):
        SpaceHandle.from_tuple(Tuple("not-a-space-info", "x", True))


def test_known_handles_lists_self_and_peers(sim):
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("seed"))
    op = inst["a"].rd(Pattern("seed"))
    run_op(sim, op, until=5.0)
    handles = inst["a"].known_handles()
    assert SpaceHandle("a") in handles and SpaceHandle("b") in handles


# ---------------------------------------------------------------------------
# out_at / *_at
# ---------------------------------------------------------------------------
def test_out_at_deposits_remotely(sim):
    net, inst = build(sim, ["a", "b"])
    event = inst["a"].out_at(SpaceHandle("b"), Tuple("deposited", 1))
    sim.run(until=5.0)
    assert event.triggered and event.value is True
    assert inst["b"].space.count(Pattern("deposited", int)) == 1
    assert inst["a"].space.count(Pattern("deposited", int)) == 0


def test_out_at_self_handle_is_local(sim):
    net, inst = build(sim, ["a"])
    event = inst["a"].out_at(inst["a"].handle(), Tuple("here"))
    sim.run(until=1.0)
    assert event.value is True
    assert inst["a"].space.count(Pattern("here")) == 1


def test_out_at_invisible_target_fails(sim):
    net, inst = build(sim, ["a", "b"], clique=False)
    event = inst["a"].out_at(SpaceHandle("b"), Tuple("lost"))
    sim.run(until=5.0)
    assert event.value is False
    assert inst["b"].space.count(Pattern("lost")) == 0


def test_out_at_refused_by_remote_lease_manager(sim):
    """Remote deposits are leased at the destination (section 2.5)."""
    net = Network(sim)
    a = TiamatInstance(sim, net, "a")
    b = TiamatInstance(sim, net, "b", policy=DenyAllPolicy())
    net.visibility.set_visible("a", "b")
    event = a.out_at(SpaceHandle("b"), Tuple("refused"))
    sim.run(until=5.0)
    assert event.value is False
    # Only the (infrastructure) space-info tuple is present.
    assert b.space.count() == 1
    assert b.space.count(Pattern("refused")) == 0
    assert b.leases.refusals >= 1


def test_rdp_at_reads_only_named_space(sim):
    net, inst = build(sim, ["a", "b", "c"])
    inst["b"].out(Tuple("thing", "b"))
    inst["c"].out(Tuple("thing", "c"))
    op = inst["a"].rdp_at(SpaceHandle("b"), Pattern("thing", str))
    assert run_op(sim, op, until=5.0) == Tuple("thing", "b")
    # the local space and c were never consulted
    assert op.contacted == ["b"]


def test_inp_at_consumes_from_named_space(sim):
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("thing", 1))
    op = inst["a"].inp_at(SpaceHandle("b"), Pattern("thing", int))
    assert run_op(sim, op, until=5.0) == Tuple("thing", 1)
    sim.run(until=10.0)
    assert inst["b"].space.count(Pattern("thing", int)) == 0


def test_rdp_at_ignores_local_matches(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("thing", "local"))
    op = inst["a"].rdp_at(SpaceHandle("b"), Pattern("thing", str))
    assert run_op(sim, op, until=5.0) is None


def test_in_at_blocking_on_named_space(sim):
    net, inst = build(sim, ["a", "b"])
    op = inst["a"].in_at(SpaceHandle("b"), Pattern("later"))
    sim.schedule(2.0, inst["b"].out, Tuple("later"))
    assert run_op(sim, op, until=10.0) == Tuple("later")


def test_directed_op_to_invisible_target_finishes_none(sim):
    net, inst = build(sim, ["a", "b"], clique=False)
    op = inst["a"].rdp_at(SpaceHandle("b"), Pattern("x"))
    assert run_op(sim, op, until=10.0) is None


# ---------------------------------------------------------------------------
# out_back (reply-to-origin) and routing policies
# ---------------------------------------------------------------------------
def test_out_back_to_visible_source(sim):
    net, inst = build(sim, ["client", "server"])
    inst["client"].out(Tuple("request", 1))
    op = inst["server"].in_(Pattern("request", int))
    run_op(sim, op, until=5.0)
    assert op.source == "client"
    how = inst["server"].out_back(op.source, Tuple("response", 1))
    assert how == "remote"
    sim.run(until=10.0)
    assert inst["client"].space.count(Pattern("response", int)) == 1


def test_out_back_local_fallback(sim):
    net, inst = build(sim, ["client", "server"])
    inst["client"].out(Tuple("request", 1))
    op = inst["server"].in_(Pattern("request", int))
    run_op(sim, op, until=5.0)
    net.visibility.set_visible("client", "server", False)
    how = inst["server"].out_back(op.source, Tuple("response", 1),
                                  policy=UnavailablePolicy.LOCAL)
    assert how == "local"
    assert inst["server"].space.count(Pattern("response", int)) == 1


def test_out_back_abandon_raises(sim):
    net, inst = build(sim, ["a", "b"], clique=False)
    with pytest.raises(OperationAbandonedError):
        inst["a"].out_back("b", Tuple("response"),
                           policy=UnavailablePolicy.ABANDON)


def test_out_back_routes_via_relay(sim):
    # Chain topology: server - relay - client.
    net, inst = build(sim, ["client", "relay", "server"], clique=False)
    net.visibility.set_visible("server", "relay")
    net.visibility.set_visible("relay", "client")
    how = inst["server"].out_back("client", Tuple("response", 1),
                                  policy=UnavailablePolicy.ROUTE)
    assert how == "routed"
    sim.run(until=10.0)
    assert inst["client"].space.count(Pattern("response", int)) == 1
    assert inst["relay"].relays_forwarded == 1


def test_out_back_route_without_relay_falls_back_local(sim):
    net, inst = build(sim, ["a", "b"], clique=False)
    how = inst["a"].out_back("b", Tuple("response"),
                             policy=UnavailablePolicy.ROUTE)
    assert how == "local"


def test_relay_ttl_exhaustion_drops(sim):
    config = TiamatConfig(relay_ttl=0)
    net, inst = build(sim, ["a", "mid", "far"], config=config, clique=False)
    net.visibility.set_visible("a", "mid")
    # far is never reachable from mid either -> drop at mid.
    inst["a"].out_back("far", Tuple("r"), policy=UnavailablePolicy.ROUTE)
    sim.run(until=10.0)
    assert inst["mid"].relays_dropped == 1
    assert inst["far"].space.count(Pattern("r")) == 0


def test_social_router_prefers_high_degree_relay(sim):
    net = Network(sim)
    names = ["src", "hub", "leaf", "dst", "x1", "x2"]
    inst = {n: TiamatInstance(sim, net, n, router=SocialRouter()) for n in names}
    # hub is connected to many nodes including dst; leaf only to src.
    net.visibility.set_visible("src", "hub")
    net.visibility.set_visible("src", "leaf")
    net.visibility.set_visible("hub", "dst")
    net.visibility.set_visible("hub", "x1")
    net.visibility.set_visible("hub", "x2")
    how = inst["src"].out_back("dst", Tuple("r"), policy=UnavailablePolicy.ROUTE)
    assert how == "routed"
    sim.run(until=10.0)
    assert inst["dst"].space.count(Pattern("r")) == 1
    assert inst["hub"].relays_forwarded == 1
    assert inst["leaf"].relays_forwarded == 0


# ---------------------------------------------------------------------------
# eval (active tuples)
# ---------------------------------------------------------------------------
def test_eval_computes_then_deposits(sim):
    _, inst = build(sim, ["a"])
    task = inst["a"].eval(lambda x, y: Tuple("sum", x + y), 2, 3, compute_time=5.0)
    sim.run(until=4.0)
    # During computation the result is not yet available (active tuple).
    assert inst["a"].space.count(Pattern("sum", int)) == 0
    sim.run(until=6.0)
    assert task.result == Tuple("sum", 5)
    assert inst["a"].space.count(Pattern("sum", int)) == 1


def test_eval_result_findable_by_blocking_rd(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].eval(lambda: Tuple("answer", 42), compute_time=2.0)
    op = inst["b"].rd(Pattern("answer", int))
    assert run_op(sim, op, until=10.0) == Tuple("answer", 42)


def test_eval_halted_when_lease_expires(sim):
    """2.5: when the eval lease expires the computation may be halted."""
    _, inst = build(sim, ["a"])
    task = inst["a"].eval(lambda: Tuple("slow"), compute_time=100.0,
                          requester=SimpleLeaseRequester(LeaseTerms(duration=5.0)))
    sim.run(until=10.0)
    assert task.halted
    assert task.event.value is None
    assert inst["a"].space.count(Pattern("slow")) == 0


def test_eval_result_expires_with_lease(sim):
    _, inst = build(sim, ["a"])
    inst["a"].eval(lambda: Tuple("mortal"), compute_time=1.0,
                   requester=SimpleLeaseRequester(LeaseTerms(duration=10.0)))
    sim.run(until=5.0)
    assert inst["a"].space.count(Pattern("mortal")) == 1
    sim.run(until=11.0)
    assert inst["a"].space.count(Pattern("mortal")) == 0


def test_eval_bad_return_value_fails(sim):
    _, inst = build(sim, ["a"])
    task = inst["a"].eval(lambda: "not-a-tuple", compute_time=1.0)
    task.event.defuse()
    with pytest.raises(Exception):
        sim.run(until=5.0)
    assert task.event.triggered and not task.event.ok
