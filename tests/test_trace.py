"""Tests for the protocol tracer."""

import pytest

from repro.core import TiamatInstance
from repro.net import Network, ProtocolTrace
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=61)


def test_trace_captures_protocol_flow(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net).attach()
    inst["a"].out(Tuple("x", 1))
    op = inst["b"].in_(Pattern("x", int))
    run_op(sim, op, until=5.0)
    kinds = [e.kind for e in trace.entries]
    assert "query" in kinds
    assert "query_reply" in kinds
    assert "claim_accept" in kinds


def test_trace_filter(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net, frame_filter=lambda m: m.kind == "query").attach()
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rd(Pattern("x", int)), until=5.0)
    assert len(trace) > 0
    assert all(e.kind == "query" for e in trace.entries)


def test_trace_between_and_by_kind(sim):
    net, inst = build(sim, ["a", "b", "c"])
    trace = ProtocolTrace(net).attach()
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rd(Pattern("x", int)), until=5.0)
    ab = trace.between("a", "b")
    assert ab and all({e.src, e.dst} == {"a", "b"} for e in ab)
    replies = trace.by_kind("query_reply")
    assert all(e.kind == "query_reply" for e in replies)


def test_trace_detach_stops_capture(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net).attach()
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rdp(Pattern("x", int)), until=5.0)
    captured = len(trace)
    assert captured > 0
    trace.detach()
    run_op(sim, inst["b"].rdp(Pattern("x", int)), until=10.0)
    assert len(trace) == captured


def test_trace_wraps_late_attached_nodes(sim):
    net = Network(sim)
    a = TiamatInstance(sim, net, "a")
    trace = ProtocolTrace(net).attach()
    b = TiamatInstance(sim, net, "b")  # attached after the tracer
    net.visibility.set_visible("a", "b")
    a.out(Tuple("x", 1))
    op = b.rdp(Pattern("x", int))
    sim.run(until=5.0)
    assert op.result is not None
    receivers = {e.dst for e in trace.entries}
    assert "b" in receivers and "a" in receivers
    trace.detach()


def test_trace_render_format(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net).attach()
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rdp(Pattern("x", int)), until=5.0)
    text = trace.render(limit=3)
    assert "->" in text
    assert len(text.splitlines()) <= 3


def test_trace_clear_and_cap(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net, max_entries=2).attach()
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rd(Pattern("x", int)), until=5.0)
    assert len(trace) == 2  # capped
    trace.clear()
    assert len(trace) == 0


def test_trace_attach_idempotent(sim):
    net, inst = build(sim, ["a", "b"])
    trace = ProtocolTrace(net)
    trace.attach()
    trace.attach()  # must not double-wrap
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["b"].rdp(Pattern("x", int)), until=5.0)
    queries = trace.by_kind("query")
    # One query sent -> captured exactly once, not twice.
    assert len(queries) == len({id(e) for e in queries})
    payload_ids = [(e.time, e.src, e.dst) for e in queries]
    assert len(payload_ids) == len(set(payload_ids))
