"""SLO latency plane: histograms, exemplars, burn-rate breaches.

Also covers the metrics-registry satellite work this PR rode in:
configurable histogram buckets (``set_buckets`` / ``bucket_overrides``)
and deterministic label ordering in snapshots.
"""

import json

import pytest

from repro.obs.flight import FlightRing
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    EXEMPLAR_SLOTS,
    MIN_WINDOW_SAMPLES,
    SLOObjective,
    SLOTracker,
)


class _Clock:
    """A hand-cranked clock: advances one tick per tracker record."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt=1.0):
        self.now += dt


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
def test_objective_validation_and_name():
    obj = SLOObjective("in", percentile=0.99, threshold=5.0, window=200.0)
    assert obj.name == "p99_in_lt_5"
    with pytest.raises(ValueError):
        SLOObjective("in", percentile=1.5, threshold=5.0, window=200.0)
    with pytest.raises(ValueError):
        SLOObjective("in", percentile=0.5, threshold=0.0, window=200.0)
    with pytest.raises(ValueError):
        SLOObjective("in", percentile=0.5, threshold=1.0, window=-1.0)


def test_latencies_land_in_registry_histogram():
    registry = MetricsRegistry()
    clock = _Clock()
    tracker = SLOTracker(clock, registry=registry)
    for latency in (0.01, 0.5, 2.0):
        tracker.record("in", latency, "a#1", "a")
        clock.tick()
    tracker.record("rd", 0.1, "a#2", "a")
    snap = registry.snapshot()
    family = snap["slo_op_latency_seconds"]
    assert family["kind"] == "histogram"
    by_kind = {s["labels"]["kind"]: s for s in family["samples"]}
    assert by_kind["in"]["count"] == 3
    assert by_kind["in"]["sum"] == pytest.approx(2.51)
    assert by_kind["rd"]["count"] == 1


# ----------------------------------------------------------------------
# Exemplars
# ----------------------------------------------------------------------
def test_exemplars_keep_slowest_first_and_cap_slots():
    clock = _Clock()
    tracker = SLOTracker(clock)
    for i, latency in enumerate([0.1, 0.9, 0.3, 0.7, 0.5, 0.2, 0.8, 0.4]):
        tracker.record("in", latency, f"a#{i}", "a")
        clock.tick()
    exemplars = tracker.exemplars("in")
    assert len(exemplars) == EXEMPLAR_SLOTS
    latencies = [e["latency"] for e in exemplars]
    assert latencies == sorted(latencies, reverse=True)
    assert latencies[0] == 0.9                     # slowest survives
    assert 0.1 not in latencies and 0.2 not in latencies


def test_exemplar_carries_flight_ring_slice():
    clock = _Clock()
    tracker = SLOTracker(clock)
    ring = FlightRing("a", capacity=64)
    ring.append(0.0, "op_start", "a#1", "in")
    ring.append(0.1, "send", "a#1", "query", "b")
    ring.append(0.2, "note", "a#2", "in")          # different op: excluded
    ring.append(0.3, "op_end", "a#1", "in", "b")
    tracker.record("in", 1.5, "a#1", "a", ring=ring)
    (exemplar,) = tracker.exemplars("in")
    assert exemplar["op_id"] == "a#1" and exemplar["node"] == "a"
    trace_events = [e["event"] for e in exemplar["trace"]]
    assert trace_events == ["op_start", "send", "op_end"]
    assert all(e["op_id"] == "a#1" for e in exemplar["trace"])


def test_exemplars_expire_out_of_window():
    clock = _Clock()
    tracker = SLOTracker(clock)
    tracker.record("in", 9.0, "a#1", "a")          # will age out
    clock.now = tracker.exemplar_window + 10.0
    tracker.record("in", 0.1, "a#2", "a")
    exemplars = tracker.exemplars("in")
    assert [e["op_id"] for e in exemplars] == ["a#2"]


# ----------------------------------------------------------------------
# Burn-rate breaches
# ----------------------------------------------------------------------
def test_breach_fires_on_transition_only():
    registry = MetricsRegistry()
    clock = _Clock()
    tracker = SLOTracker(clock, registry=registry)
    obj = tracker.add_objective(
        SLOObjective("in", percentile=0.5, threshold=0.1, window=1000.0))
    ring = FlightRing("a", capacity=64)

    # MIN_WINDOW_SAMPLES bad latencies: burn = (1.0)/(0.5) = 2.0 > 1.
    for i in range(MIN_WINDOW_SAMPLES):
        tracker.record("in", 1.0, f"a#{i}", "a", ring=ring)
        clock.tick()
    assert len(tracker.breaches) == 1
    breach = tracker.breaches[0]
    assert breach["objective"] == obj.name
    assert breach["burn_rate"] == pytest.approx(2.0)

    # Still breaching: no duplicate events while inside the breach.
    for i in range(5):
        tracker.record("in", 1.0, f"a#x{i}", "a", ring=ring)
        clock.tick()
    assert len(tracker.breaches) == 1

    # Recover (enough good samples), then breach again -> second event.
    for i in range(40):
        tracker.record("in", 0.01, f"a#g{i}", "a", ring=ring)
        clock.tick()
    for i in range(40):
        tracker.record("in", 1.0, f"a#b{i}", "a", ring=ring)
        clock.tick()
    assert len(tracker.breaches) == 2

    # The breach also lands in the metrics registry and the flight ring.
    snap = registry.snapshot()
    counter = snap["slo_breaches_total"]["samples"]
    assert counter and counter[0]["value"] == 2
    assert any(e["event"] == "slo_breach" for e in ring.events())


def test_breach_needs_min_window_samples():
    clock = _Clock()
    tracker = SLOTracker(clock)
    tracker.add_objective(
        SLOObjective("in", percentile=0.99, threshold=0.1, window=1000.0))
    for i in range(MIN_WINDOW_SAMPLES - 1):
        tracker.record("in", 5.0, f"a#{i}", "a")
        clock.tick()
    assert tracker.breaches == []


def test_window_slides_old_samples_out():
    clock = _Clock()
    tracker = SLOTracker(clock)
    tracker.add_objective(
        SLOObjective("in", percentile=0.5, threshold=0.1, window=20.0))
    # Fill the window with bad samples -> breach.
    for i in range(MIN_WINDOW_SAMPLES):
        tracker.record("in", 1.0, f"a#{i}", "a")
        clock.tick()
    assert len(tracker.breaches) == 1
    # Jump past the window; bad history must not count any more.
    clock.now += 100.0
    for i in range(MIN_WINDOW_SAMPLES):
        tracker.record("in", 0.01, f"a#n{i}", "a")
        clock.tick(0.5)
    assert len(tracker.breaches) == 1  # fully recovered, no new breach


def test_objectives_only_see_their_kind():
    clock = _Clock()
    tracker = SLOTracker(clock)
    tracker.add_objective(
        SLOObjective("in", percentile=0.5, threshold=0.1, window=1000.0))
    for i in range(MIN_WINDOW_SAMPLES * 2):
        tracker.record("rd", 9.0, f"a#{i}", "a")   # wrong kind: ignored
        clock.tick()
    assert tracker.breaches == []


# ----------------------------------------------------------------------
# Metrics satellite: configurable buckets, deterministic snapshots
# ----------------------------------------------------------------------
def test_set_buckets_overrides_future_family():
    registry = MetricsRegistry()
    registry.set_buckets("slo_op_latency_seconds", (0.1, 1.0, 10.0))
    hist = registry.histogram("slo_op_latency_seconds", labels=("kind",))
    child = hist.labels(kind="in")
    assert child.buckets == (0.1, 1.0, 10.0)
    child.observe(0.5)
    snap = registry.snapshot()
    buckets = snap["slo_op_latency_seconds"]["samples"][0]["buckets"]
    assert set(buckets) == {"0.1", "1", "10", "+Inf"}


def test_set_buckets_rejects_bad_and_late_overrides():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.set_buckets("h", ())                  # empty
    with pytest.raises(ValueError):
        registry.set_buckets("h", (2.0, 1.0))          # unsorted
    registry.histogram("h")
    with pytest.raises(ValueError):
        registry.set_buckets("h", (1.0, 2.0))          # already materialized


def test_bucket_overrides_constructor_arg():
    registry = MetricsRegistry(bucket_overrides={"h": (1.0, 2.0)})
    child = registry.histogram("h").labels()
    assert child.buckets == (1.0, 2.0)


def test_snapshot_label_order_is_deterministic():
    """Same state, different child-creation order: identical snapshots."""
    snaps = []
    for order in (("a", "b", "c"), ("c", "a", "b")):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", labels=("node",))
        for node in order:
            counter.labels(node=node).inc()
        snaps.append(json.dumps(registry.snapshot(), sort_keys=True))
    assert snaps[0] == snaps[1]
