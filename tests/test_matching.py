"""Unit and property-based tests for the matching relation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tuples import ANY, Actual, Formal, Pattern, Range, Tuple, matches

# ---------------------------------------------------------------------------
# Strategies shared with other property tests
# ---------------------------------------------------------------------------
scalar_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.binary(max_size=20),
)

field_values = st.recursive(
    scalar_values,
    lambda children: st.lists(children, min_size=1, max_size=3).map(Tuple.of),
    max_leaves=5,
)

tuples = st.lists(field_values, min_size=1, max_size=5).map(Tuple.of)


# ---------------------------------------------------------------------------
# Example-based
# ---------------------------------------------------------------------------
def test_exact_match():
    assert matches(Pattern("a", 1), Tuple("a", 1))


def test_arity_mismatch_never_matches():
    assert not matches(Pattern("a"), Tuple("a", 1))
    assert not matches(Pattern("a", 1, 2), Tuple("a", 1))


def test_formal_positions():
    p = Pattern("result", int, str)
    assert matches(p, Tuple("result", 3, "ok"))
    assert not matches(p, Tuple("result", 3.0, "ok"))
    assert not matches(p, Tuple("request", 3, "ok"))


def test_wildcard_matches_any_type():
    p = Pattern("x", ANY)
    for v in (1, 1.5, "s", b"b", True, Tuple("n")):
        assert matches(p, Tuple("x", v))


def test_range_in_pattern():
    p = Pattern("load", Range(0.0, 0.5))
    assert matches(p, Tuple("load", 0.25))
    assert not matches(p, Tuple("load", 0.75))


def test_nested_tuple_actual():
    inner = Tuple("point", 1, 2)
    assert matches(Pattern("wrap", Actual(inner)), Tuple("wrap", inner))
    assert not matches(Pattern("wrap", Actual(inner)), Tuple("wrap", Tuple("point", 1, 3)))


def test_nested_tuple_formal():
    assert matches(Pattern("wrap", Formal(Tuple)), Tuple("wrap", Tuple("anything")))
    assert not matches(Pattern("wrap", Formal(Tuple)), Tuple("wrap", "not-a-tuple"))


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@given(tuples)
def test_fully_actual_pattern_matches_its_tuple(tup):
    assert matches(Pattern.for_tuple(tup), tup)


@given(tuples)
def test_all_wildcard_pattern_matches_same_arity(tup):
    assert matches(Pattern(*([ANY] * tup.arity)), tup)


@given(tuples, tuples)
def test_fully_actual_pattern_matches_only_equal_tuples(a, b):
    pattern = Pattern.for_tuple(a)
    assert matches(pattern, b) == (a == b)


@given(tuples)
def test_formals_from_signature_match(tup):
    type_map = {"bool": bool, "int": int, "float": float, "str": str,
                "bytes": bytes, "Tuple": Tuple}
    pattern = Pattern(*[Formal(type_map[name]) for name in tup.signature])
    assert matches(pattern, tup)


@given(tuples)
def test_arity_change_breaks_match(tup):
    widened = Pattern(*([ANY] * (tup.arity + 1)))
    assert not matches(widened, tup)
