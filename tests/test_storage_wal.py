"""The durable storage backends: WAL framing, torn tails, sqlite, trait.

The torn-write contract under test (docs/PROTOCOL.md section 10): appends
are write-through, so a power cut can only damage the record in flight —
the final one.  Replay must salvage every earlier record bit-for-bit, no
matter where in the final record the damage lands.  The exhaustive loops
below literally try **every byte offset** of the final record, truncating
and bit-flipping; the hypothesis layer varies the record sequence that
precedes the damage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError, TupleError
from repro.sim import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.storage import (
    MemoryBackend,
    MemoryFS,
    SqliteBackend,
    WALBackend,
    attach_backend,
    inspect_wal,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def space(sim):
    return LocalTupleSpace(sim, name="dev")


def wal(fs=None, codec="json", compact_every=0):
    return WALBackend("dev", fs=fs or MemoryFS(), codec=codec,
                      compact_every=compact_every)


def contents(state):
    """RecoveredState -> {durable_id: (tuple, expires_at)} for comparison."""
    return {eid: (tup, exp) for eid, tup, exp in state.entries}


# ---------------------------------------------------------------------------
# The trait: listener plumbing shared by every backend
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("make", [
    MemoryBackend,
    lambda: wal(),
    lambda: wal(codec="binary"),
    lambda: SqliteBackend(":memory:"),
])
def test_backend_mirrors_space_lifecycle(space, make):
    backend = attach_backend(space, make())
    space.out(Tuple("keep", 1))
    space.out(Tuple("take", 2))
    space.out(Tuple("mortal"), expires_at=50.0)
    assert space.inp(Pattern("take", int)) == Tuple("take", 2)
    space.sim.run(until=60.0)          # the mortal tuple expires

    state = backend.recover()
    live = contents(state)
    assert [t for t, _ in live.values()] == [Tuple("keep", 1)]
    assert state.high_water >= max(live)
    assert backend.records_out == 3 and backend.records_remove == 2


def test_backend_skips_infrastructure_and_transient_entries(sim, space):
    backend = attach_backend(space, MemoryBackend())
    space.out(Tuple("__space_info__", "dev"))   # skip-tagged
    waiter = space.in_(Pattern("flash"))
    space.out(Tuple("flash"))                   # consumed at deposit
    assert waiter.satisfied
    space.out(Tuple("real"))
    assert len(backend) == 1
    assert backend.records_out == 1


def test_detach_stops_logging_dead_incarnation(sim, space):
    backend = attach_backend(space, MemoryBackend())
    space.out(Tuple("old"), expires_at=10.0)
    backend.detach()
    fresh = LocalTupleSpace(sim, name="dev")
    backend.rebind(fresh)
    fresh.out(Tuple("new"))
    # The dead space's expiry timer fires after the rebind: it must not
    # reach the log, which now belongs to the fresh incarnation.
    sim.run(until=20.0)
    live = contents(backend.recover())
    assert [t for t, _ in live.values()] == [Tuple("new")]


def test_rebind_does_not_double_log(sim, space):
    backend = attach_backend(space, MemoryBackend())
    space.out(Tuple("a"))
    before = backend.records_out
    backend.rebind(space)               # re-anchor to the same space
    space.out(Tuple("b"))
    assert backend.records_out == before + 1
    assert len(backend) == 2


# ---------------------------------------------------------------------------
# WAL: framing, compaction, recovery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("codec", ["json", "binary"])
def test_wal_roundtrip_survives_reopen(space, codec):
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs, codec=codec))
    space.out(Tuple("a", 1, 2.5, b"\x00\xff"))
    space.out(Tuple("b", "text"), expires_at=99.0)
    space.inp(Pattern("a", int, float, bytes))

    reopened = wal(fs, codec=codec)     # a fresh process over the files
    live = contents(reopened.recover())
    assert live == {2: (Tuple("b", "text"), 99.0)}
    assert reopened.recoveries == 1


def test_wal_rejects_bad_config():
    with pytest.raises(StorageError):
        WALBackend("dev", fs=MemoryFS(), codec="msgpack")
    with pytest.raises(StorageError):
        WALBackend("dev", fs=MemoryFS(), compact_every=-1)


def test_wal_auto_compaction_resets_log(space):
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs, compact_every=4))
    for i in range(10):
        space.out(Tuple("row", i))
    assert backend.compactions >= 2
    assert fs.size(backend.snap_path) > 0
    # Everything survives a reopen regardless of where compaction cut.
    assert len(contents(wal(fs).recover())) == 10


def test_wal_mid_compaction_kill_is_idempotent(space):
    """Snapshot landed, WAL never reset: replay must not double-apply."""
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs))
    space.out(Tuple("a"))
    space.out(Tuple("b"))
    space.inp(Pattern("b"))
    backend.compact(space.sim.now, _crash_after_snapshot=True)
    assert fs.size(backend.wal_path) > 0    # the stale pre-snapshot log

    live = contents(wal(fs).recover())
    assert [t for t, _ in live.values()] == [Tuple("a")]


def test_stale_wal_torn_rm_cannot_resurrect(space):
    """The snapshot-authority gate: kill mid-compaction, then tear the
    consumed entry's `rm` off the stale WAL tail.  Its pre-snapshot `out`
    is still in the log, but the snapshot (which excludes the entry)
    owns every id at or below its high-water mark — no ghost."""
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs))
    space.out(Tuple("a"))
    space.out(Tuple("ghost"))
    space.inp(Pattern("ghost"))                       # rm is the tail
    backend.compact(space.sim.now, _crash_after_snapshot=True)
    torn = backend.tear_tail(8)
    assert torn["op"] == "rm"

    live = contents(wal(fs).recover())
    assert [t for t, _ in live.values()] == [Tuple("a")]


def test_wal_corrupt_snapshot_salvages_wal(space):
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs))
    space.out(Tuple("a"))
    backend.compact(space.sim.now)
    space.out(Tuple("b"))
    fs.flip_bit(backend.snap_path, fs.size(backend.snap_path) // 2)

    reopened = wal(fs)
    live = contents(reopened.recover())
    # The snapshot is gone (external corruption, counted), but the boot
    # still salvages what the post-compaction WAL holds.
    assert reopened.snapshot_corrupt == 1
    assert [t for t, _ in live.values()] == [Tuple("b")]


def test_tear_tail_clamps_to_final_record(space):
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs))
    space.out(Tuple("first"))
    space.out(Tuple("last"))
    torn = backend.tear_tail(10_000)    # way past the final record
    assert torn["op"] == "out" and torn["id"] == 2
    live = contents(wal(fs).recover())
    assert [t for t, _ in live.values()] == [Tuple("first")]


def test_tear_tail_on_empty_wal_returns_none():
    backend = wal()
    assert backend.tear_tail(5) is None


# ---------------------------------------------------------------------------
# Torn-tail tolerance: every byte offset of the final record
# ---------------------------------------------------------------------------
def _build_wal(fs, codec, rows):
    sim = Simulator()
    space = LocalTupleSpace(sim, name="dev")
    backend = attach_backend(space, wal(fs, codec=codec))
    for i in range(rows):
        space.out(Tuple("row", i, "x" * (i % 5)))
    return backend


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_truncation_at_every_byte_offset_of_final_record(codec):
    pristine = MemoryFS()
    backend = _build_wal(pristine, codec, rows=4)
    total = pristine.size(backend.wal_path)
    # Find where the final record starts: rebuild with one fewer row.
    shorter = MemoryFS()
    _build_wal(shorter, codec, rows=3)
    final_start = shorter.size("dev.wal")

    for cut in range(1, total - final_start + 1):
        fs = MemoryFS()
        fs.files["dev.wal"] = bytearray(pristine.read("dev.wal"))
        fs.chop("dev.wal", cut)
        reopened = wal(fs, codec=codec)
        live = contents(reopened.recover())
        # Rows 0..2 were durable before the final append began: intact.
        assert {t for t, _ in live.values()} == {
            Tuple("row", i, "x" * (i % 5)) for i in range(3)}
        if cut < total - final_start:
            # A partial frame remains: counted and truncated away.
            assert reopened.torn_truncations == 1
            assert reopened.torn_bytes == total - final_start - cut
        else:
            # The cut landed exactly on the frame boundary: clean file.
            assert reopened.torn_truncations == 0
        # The truncation repaired the file: a second boot is clean.
        again = wal(fs, codec=codec)
        assert contents(again.recover()) == live
        assert again.torn_truncations == 0


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_bitflip_at_every_byte_offset_of_final_record(codec):
    pristine = MemoryFS()
    _build_wal(pristine, codec, rows=4)
    shorter = MemoryFS()
    _build_wal(shorter, codec, rows=3)
    final_start = shorter.size("dev.wal")
    total = pristine.size("dev.wal")
    survivors = {Tuple("row", i, "x" * (i % 5)) for i in range(3)}

    for offset in range(final_start, total):
        fs = MemoryFS()
        fs.files["dev.wal"] = bytearray(pristine.read("dev.wal"))
        assert fs.flip_bit("dev.wal", offset, bit=offset % 8)
        live = contents(wal(fs, codec=codec).recover())
        # The damaged final record is dropped (CRC or framing catches
        # it); everything before it is untouched.  A flip in the length
        # field may make the frame claim fewer bytes than written — if
        # the shrunken payload happens to CRC-check it would be caught
        # by the CRC covering different bytes, so the final record can
        # never decode to a *wrong* value, only vanish.
        assert survivors.issubset({t for t, _ in live.values()})
        assert len(live) <= 4


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 7)),
                    min_size=1, max_size=12),
       chop=st.integers(1, 64),
       codec=st.sampled_from(["json", "binary"]))
def test_torn_tail_property_random_histories(ops, chop, codec):
    """Whatever the history, a tear loses at most the final record."""
    sim = Simulator()
    space = LocalTupleSpace(sim, name="dev")
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs, codec=codec))
    deposited = []
    for is_out, val in ops:
        if is_out or not deposited:
            space.out(Tuple("v", val))
            deposited.append(val)
        else:
            taken = space.inp(Pattern("v", deposited.pop(0)))
            assert taken is not None
    before = contents(backend.recover())
    torn = backend.tear_tail(chop)
    live = contents(wal(fs, codec=codec).recover())
    if torn is None:
        assert live == before
    else:
        expected = dict(before)
        if torn["op"] == "out":
            expected.pop(torn["id"], None)      # unacknowledged: may vanish
        elif torn["op"] == "rm":
            assert torn["id"] not in before     # it was removed pre-tear
            expected = None                     # resurrection is legal here:
        if expected is not None:                # the *rejoin* purges it
            assert live == expected
        else:
            assert set(before).issubset(set(live))


# ---------------------------------------------------------------------------
# inspect_wal (the `repro wal inspect` engine)
# ---------------------------------------------------------------------------
def test_inspect_wal_reports_records_and_tears(space):
    fs = MemoryFS()
    backend = attach_backend(space, wal(fs))
    space.out(Tuple("a"))
    space.out(Tuple("b"))
    space.inp(Pattern("a"))
    info = inspect_wal("dev", fs=fs)
    assert info["wal_records"] == 3 and not info["torn"]
    assert info["live_entries"] == 1
    assert [r["op"] for r in info["records"]] == ["out", "out", "rm"]

    backend.compact(space.sim.now, _crash_after_snapshot=True)
    fs.chop(backend.wal_path, 3)     # the whole final record is now torn
    info = inspect_wal("dev", fs=fs)
    assert info["torn"] and info["torn_bytes"] > 0
    assert info["snapshot_entries"] == 1
    assert info["live_entries"] == 1    # snapshot authority over stale outs


# ---------------------------------------------------------------------------
# Sqlite backend
# ---------------------------------------------------------------------------
def test_sqlite_roundtrip_on_disk(tmp_path, sim):
    path = str(tmp_path / "space.db")
    space = LocalTupleSpace(sim, name="dev")
    backend = attach_backend(space, SqliteBackend(path))
    space.out(Tuple("keep", 1, b"\x00"))
    space.out(Tuple("take", 2))
    space.inp(Pattern("take", int))
    backend.close()

    reopened = SqliteBackend(path)
    state = reopened.recover()
    assert contents(state) == {1: (Tuple("keep", 1, b"\x00"), None)}
    assert state.high_water == 2        # the removed id still gates the floor
    reopened.close()


def test_sqlite_rebind_rewrites(sim):
    backend = SqliteBackend(":memory:")
    space = LocalTupleSpace(sim, name="dev")
    attach_backend(space, backend)
    space.out(Tuple("a"))
    fresh = LocalTupleSpace(sim, name="dev")
    fresh.out(Tuple("b"))
    backend.detach()
    backend.rebind(fresh)
    live = contents(backend.recover())
    assert [t for t, _ in live.values()] == [Tuple("b")]
    backend.close()


# ---------------------------------------------------------------------------
# Store/space recovery primitives the backends lean on
# ---------------------------------------------------------------------------
def test_store_add_pinned_id_and_collision(space):
    space.store.bump_ids(10)
    entry = space.store.add(Tuple("pinned"), entry_id=7)
    assert entry.entry_id == 7
    with pytest.raises(TupleError):
        space.store.add(Tuple("dup"), entry_id=7)
    # The bumped counter keeps fresh ids clear of everything durable.
    space.out(Tuple("fresh"))
    ids = [e.entry_id for e in space.store]
    assert 7 in ids and max(ids) > 10


def test_restore_entry_quarantine_and_release(space):
    space.restore_entry(Tuple("verified"), entry_id=3)
    space.restore_entry(Tuple("suspect"), quarantine=True, entry_id=4)
    assert space.count(Pattern("verified")) == 1
    assert space.count(Pattern("suspect")) == 0     # held: invisible
    space.release(4)
    assert space.count(Pattern("suspect")) == 1


# ---------------------------------------------------------------------------
# The abstract contract and the real filesystem
# ---------------------------------------------------------------------------
def test_storage_backend_contract_is_abstract(sim):
    from repro.tuples.storage import StorageBackend
    backend = StorageBackend()
    with pytest.raises(NotImplementedError):
        backend.record_out(1, Tuple("x"), None, 0.0)
    with pytest.raises(NotImplementedError):
        backend.record_remove(1, "consumed", 0.0)
    with pytest.raises(NotImplementedError):
        backend.recover()
    with pytest.raises(NotImplementedError):
        backend._rewrite({}, 0.0)
    backend.compact(0.0)                # optional: no-op, must not raise
    backend.close()


def test_wal_over_real_files(tmp_path, space):
    from repro.tuples.storage import OsFS
    base = str(tmp_path / "dev")
    backend = attach_backend(space, WALBackend(base, fs=OsFS()))
    space.out(Tuple("keep", 1))
    space.out(Tuple("gone", 2))
    space.inp(Pattern("gone", int))
    space.out(Tuple("torn"))

    # Write-through means the torn deposit is the final frame on disk.
    torn = backend.tear_tail(5)
    assert torn["op"] == "out"
    backend.close()

    reopened = WALBackend(base, fs=OsFS())
    live = contents(reopened.recover())
    assert [t for t, _ in live.values()] == [Tuple("keep", 1)]
    assert reopened.torn_truncations == 1

    # Compaction folds the log into the snapshot and empties the WAL.
    reopened.compact(0.0)
    assert (tmp_path / "dev.snap").exists()
    assert (tmp_path / "dev.wal").stat().st_size == 0
    again = WALBackend(base, fs=OsFS())
    assert contents(again.recover()) == live


def test_os_fs_replace_failure_leaves_no_litter(tmp_path, monkeypatch):
    from repro.tuples.storage import OsFS
    fs = OsFS()
    path = str(tmp_path / "dev.snap")
    fs.replace(path, b"old")
    assert fs.exists(path) and fs.size(path) == 3

    import repro.tuples.storage.fs as fsmod
    monkeypatch.setattr(fsmod.os, "replace",
                        lambda *a: (_ for _ in ()).throw(OSError("disk")))
    with pytest.raises(OSError):
        fs.replace(path, b"new")
    monkeypatch.undo()
    # The old snapshot survived, and the failed temp file was cleaned up.
    assert fs.read(path) == b"old"
    assert [p.name for p in tmp_path.iterdir()] == ["dev.snap"]
    fs.delete(path)
    fs.delete(path)                     # idempotent on a missing file
    assert fs.read(path) is None and fs.size(path) == 0
