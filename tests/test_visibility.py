"""Unit tests for the visibility graph."""

from repro.net import VisibilityGraph


def test_nodes_start_isolated_and_up():
    g = VisibilityGraph()
    g.add_node("a")
    assert g.is_up("a")
    assert g.neighbors("a") == []


def test_set_visible_is_symmetric():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    assert g.visible("a", "b") and g.visible("b", "a")
    assert g.neighbors("a") == ["b"] and g.neighbors("b") == ["a"]


def test_self_edge_ignored():
    g = VisibilityGraph()
    g.set_visible("a", "a")
    g.add_node("a")
    assert not g.visible("a", "a")


def test_clear_edge():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    g.set_visible("a", "b", False)
    assert not g.visible("a", "b")


def test_connect_clique():
    g = VisibilityGraph()
    g.connect_clique(["a", "b", "c"])
    assert g.visible("a", "b") and g.visible("b", "c") and g.visible("a", "c")


def test_isolate_removes_all_edges():
    g = VisibilityGraph()
    g.connect_clique(["a", "b", "c"])
    g.isolate("b")
    assert g.neighbors("b") == []
    assert g.visible("a", "c")  # untouched


def test_down_node_is_invisible_but_edges_retained():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    g.set_up("b", False)
    assert not g.visible("a", "b")
    assert g.neighbors("a") == []
    g.set_up("b", True)
    assert g.visible("a", "b")  # edge survived the outage


def test_edge_listener_fires_on_transitions_only():
    g = VisibilityGraph()
    events = []
    g.on_edge_change(lambda a, b, v: events.append((a, b, v)))
    g.set_visible("a", "b")
    g.set_visible("a", "b")  # no-op: already visible
    g.set_visible("b", "a", False)
    assert events == [("a", "b", True), ("a", "b", False)]


def test_node_listener_and_edge_echo_on_updown():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    g.set_visible("a", "c")
    node_events, edge_events = [], []
    g.on_node_change(lambda n, up: node_events.append((n, up)))
    g.on_edge_change(lambda a, b, v: edge_events.append((a, b, v)))
    g.set_up("a", False)
    assert node_events == [("a", False)]
    assert ("a", "b", False) in edge_events and ("a", "c", False) in edge_events
    g.set_up("a", True)
    assert ("a", "b", True) in edge_events


def test_updown_edge_echo_skips_down_peers():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    g.set_up("b", False)
    edge_events = []
    g.on_edge_change(lambda a, b, v: edge_events.append((a, b, v)))
    g.set_up("a", False)  # b is down: no a-b edge echo expected
    assert edge_events == []


def test_unsubscribe():
    g = VisibilityGraph()
    events = []
    unsubscribe = g.on_edge_change(lambda a, b, v: events.append(1))
    unsubscribe()
    g.set_visible("a", "b")
    assert events == []


def test_transitions_counter():
    g = VisibilityGraph()
    g.set_visible("a", "b")
    g.set_up("a", False)
    g.set_visible("a", "b")  # no-op: edge already set
    assert g.transitions == 2


def test_nodes_sorted():
    g = VisibilityGraph()
    for name in ("c", "a", "b"):
        g.add_node(name)
    assert g.nodes() == ["a", "b", "c"]
