"""Tests for the communications manager: discovery and the known-peer list."""

import pytest

from repro.core import TiamatConfig
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=13)


def test_discovery_populates_known_list(sim):
    net, inst = build(sim, ["a", "b", "c"])
    event = inst["a"].comms.discover()
    sim.run(until=1.0)
    assert event.triggered
    assert sorted(event.value) == ["b", "c"]
    assert sorted(inst["a"].comms.known) == ["b", "c"]


def test_discovery_reports_only_fresh_responders(sim):
    net, inst = build(sim, ["a", "b", "c"])
    inst["a"].comms.note_alive("b")
    event = inst["a"].comms.discover()
    sim.run(until=1.0)
    assert event.value == ["c"]  # b was already known


def test_discovery_with_no_neighbors(sim):
    net, inst = build(sim, ["a"], clique=False)
    event = inst["a"].comms.discover()
    sim.run(until=1.0)
    assert event.value == []


def test_note_alive_appends_to_bottom(sim):
    net, inst = build(sim, ["a", "b", "c"])
    comms = inst["a"].comms
    comms.note_alive("b")
    comms.note_alive("c")
    comms.note_alive("b")  # duplicate ignored
    assert comms.plan() == ["b", "c"]


def test_note_alive_ignores_self(sim):
    net, inst = build(sim, ["a"])
    inst["a"].comms.note_alive("a")
    assert inst["a"].comms.plan() == []


def test_note_dead_removes(sim):
    net, inst = build(sim, ["a", "b"])
    comms = inst["a"].comms
    comms.note_alive("b")
    comms.note_dead("b")
    assert comms.plan() == []
    assert comms.removals == 1


def test_consistently_visible_peers_rise_to_top(sim):
    """3.1.3: stable instances work their way to the top of the list."""
    net, inst = build(sim, ["origin", "flaky", "stable"])
    comms = inst["origin"].comms
    # Initial discovery order puts flaky first.
    comms.note_alive("flaky")
    comms.note_alive("stable")
    assert comms.plan() == ["flaky", "stable"]
    # flaky disappears; a probe removes it; then it comes back and responds
    # again -> appended at the bottom, stable now on top.
    net.visibility.set_up("flaky", False)
    op = inst["origin"].rdp(Pattern("anything"))
    run_op(sim, op, until=10.0)
    assert comms.plan()[0] == "stable"
    net.visibility.set_up("flaky", True)
    op2 = inst["origin"].rdp(Pattern("anything"))
    run_op(sim, op2, until=20.0)
    assert comms.plan() == ["stable", "flaky"]


def test_mru_strategy_avoids_multicast_when_list_satisfies(sim):
    net, inst = build(sim, ["a", "b"], config=TiamatConfig(comms_strategy="mru"))
    inst["b"].out(Tuple("x", 1))
    # Seed the list via one discovery-backed op.
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    multicasts_before = inst["a"].comms.multicasts
    for _ in range(5):
        op = inst["a"].rdp(Pattern("x", int))
        run_op(sim, op, until=sim.now + 5.0)
        assert op.result == Tuple("x", 1)
    assert inst["a"].comms.multicasts == multicasts_before  # list was enough


def test_multicast_strategy_discovers_every_operation(sim):
    net, inst = build(sim, ["a", "b"],
                      config=TiamatConfig(comms_strategy="multicast"))
    inst["b"].out(Tuple("x", 1))
    for expected in (1, 2, 3):
        run_op(sim, inst["a"].rdp(Pattern("x", int)), until=sim.now + 5.0)
        assert inst["a"].comms.multicasts == expected


def test_mru_falls_back_to_multicast_when_unsatisfied(sim):
    net, inst = build(sim, ["a", "b", "newcomer"], clique=False)
    net.visibility.set_visible("a", "b")
    # Known list contains only b (no match there).
    run_op(sim, inst["a"].rdp(Pattern("x")), until=5.0)
    assert inst["a"].comms.plan() == ["b"]
    # newcomer appears with the tuple; the next probe exhausts the list and
    # multicasts to find it.
    net.visibility.set_visible("a", "newcomer")
    inst["newcomer"].out(Tuple("x"))
    op = inst["a"].rdp(Pattern("x"))
    result = run_op(sim, op, until=15.0)
    assert result == Tuple("x")
    assert op.source == "newcomer"
    assert "newcomer" in inst["a"].comms.plan()


def test_query_reply_marks_peer_alive(sim):
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("x"))
    run_op(sim, inst["a"].rdp(Pattern("x")), until=5.0)
    assert "b" in inst["a"].comms.plan()
    # And symmetric: b learned about a from the query itself.
    assert "a" in inst["b"].comms.plan()
