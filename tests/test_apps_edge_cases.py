"""Edge-case coverage for the sample applications."""

import pytest

from repro.apps import (
    FractalMaster,
    FractalWorker,
    OriginFabric,
    ProxyServer,
    WebClient,
    WebScenario,
)
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import DenyAllPolicy
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=41)


# ---------------------------------------------------------------------------
# Web client / proxy
# ---------------------------------------------------------------------------
def test_client_counts_failure_when_no_proxy_ever(sim):
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    inst = TiamatInstance(sim, net, "client", config=config)
    client = WebClient(sim, inst, request_lease=5.0, response_wait=5.0)
    process = sim.spawn(client.fetch("http://nobody/"))
    sim.run(until=30.0)
    assert process.value is None
    assert client.failed == 1 and client.satisfied == 0


def test_client_lease_refusal_fails_fast(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "client", policy=DenyAllPolicy())
    client = WebClient(sim, inst)
    process = sim.spawn(client.fetch("http://x/"))
    sim.run(until=5.0)
    assert process.value is None
    assert client.failed == 1


def test_proxy_stop_is_clean_midwait(sim):
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    inst = TiamatInstance(sim, net, "proxy", config=config)
    proxy = ProxyServer(sim, inst, OriginFabric(), wait_lease=5.0)
    proxy.start()
    sim.run(until=2.0)
    proxy.stop()
    sim.run(until=60.0)  # the loop drains without error
    assert proxy.handled == 0


def test_proxy_survives_lease_refusals(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "proxy", policy=DenyAllPolicy())
    proxy = ProxyServer(sim, inst, OriginFabric())
    proxy.start()
    sim.run(until=10.0)  # keeps retrying, never crashes
    proxy.stop()
    sim.run(until=20.0)


def test_scenario_counters(sim):
    net = Network(sim)
    scenario = WebScenario(sim, net)
    client = scenario.add_client("c")
    scenario.add_proxy("p")
    scenario.connect_all()
    sim.spawn(client.fetch("http://one/"))
    sim.run(until=60.0)
    assert scenario.total_satisfied() == 1
    assert scenario.total_failed() == 0


def test_request_ids_are_unique_across_clients(sim):
    net = Network(sim)
    scenario = WebScenario(sim, net)
    c1 = scenario.add_client("c1")
    c2 = scenario.add_client("c2")
    scenario.add_proxy("p")
    scenario.connect_all()
    sim.spawn(c1.fetch("http://a/"))
    sim.spawn(c2.fetch("http://b/"))
    sim.run(until=60.0)
    # Both satisfied with the right bodies (no cross-talk between ids).
    assert c1.satisfied == 1 and c2.satisfied == 1


# ---------------------------------------------------------------------------
# Fractal
# ---------------------------------------------------------------------------
def test_master_gives_up_when_no_workers(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "master")
    master = FractalMaster(sim, inst, job="lonely", tiles=4,
                           collect_lease=5.0)
    process = sim.spawn(master.run())
    sim.run(until=60.0)
    assert process.triggered and process.value is None
    assert not master.complete


def test_worker_stop_midstream(sim):
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    m = TiamatInstance(sim, net, "master", config=config)
    w = TiamatInstance(sim, net, "worker", config=config)
    net.visibility.set_visible("master", "worker")
    master = FractalMaster(sim, m, job="j", tiles=4, resolution=8, max_iter=20)
    worker = FractalWorker(sim, w)
    worker.start()
    process = sim.spawn(master.run())
    sim.run(until=600.0)
    assert master.complete
    worker.stop()
    sim.run(until=700.0)
    assert worker.tiles_done == 4


def test_two_jobs_share_one_farm_without_crosstalk(sim):
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    m1 = TiamatInstance(sim, net, "m1", config=config)
    m2 = TiamatInstance(sim, net, "m2", config=config)
    w = TiamatInstance(sim, net, "w", config=config)
    net.visibility.connect_clique(["m1", "m2", "w"])
    master1 = FractalMaster(sim, m1, job="jobA", tiles=3, resolution=8,
                            max_iter=20)
    master2 = FractalMaster(sim, m2, job="jobB", tiles=3, resolution=8,
                            max_iter=30)
    FractalWorker(sim, w).start()
    p1 = sim.spawn(master1.run())
    p2 = sim.spawn(master2.run())
    sim.run(until=600.0)
    assert master1.complete and master2.complete
    # Job identity kept results separate.
    assert set(master1.results) == {0, 1, 2}
    assert set(master2.results) == {0, 1, 2}
    assert p1.value != p2.value  # different max_iter -> different checksums


def test_worker_result_lease_refusal_does_not_crash(sim):
    # A worker whose deposits are refused completes its loop gracefully.
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    m = TiamatInstance(sim, net, "master", config=config)
    w = TiamatInstance(sim, net, "worker", config=config,
                       policy=DenyAllPolicy())
    net.visibility.set_visible("master", "worker")
    master = FractalMaster(sim, m, job="j", tiles=2, resolution=8,
                           max_iter=10, collect_lease=5.0)
    worker = FractalWorker(sim, w)
    worker.start()
    process = sim.spawn(master.run())
    sim.run(until=120.0)
    # The worker cannot even lease its `in` ops, so the master times out.
    assert process.triggered
    worker.stop()
