"""Edge cases for the threaded runtime and persistence properties."""

import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ThreadSafeTupleSpace
from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode
from repro.sim import Simulator
from repro.tuples import (
    LocalTupleSpace,
    Pattern,
    Tuple,
    restore_space,
    snapshot_space,
)
from tests.test_matching import tuples as tuples_strategy


# ---------------------------------------------------------------------------
# Threaded runtime edges
# ---------------------------------------------------------------------------
def test_threaded_eval_bad_result_deposits_nothing():
    registry = ThreadedNodeRegistry()
    node = ThreadedTiamatNode(registry, "n")
    # Good eval deposits its tuple...
    thread = node.eval(lambda: Tuple("ok"))
    thread.join(timeout=5.0)
    assert node.rdp(Pattern("ok")) == Tuple("ok")
    # ...a failing eval dies on its own thread and deposits nothing.
    import threading as _threading

    captured = []
    original_hook = _threading.excepthook
    _threading.excepthook = lambda args: captured.append(args.exc_type)
    try:
        bad = node.eval(lambda: "not-a-tuple")
        bad.join(timeout=5.0)
    finally:
        _threading.excepthook = original_hook
    assert captured == [TypeError]
    assert node.space.count() == 1  # only the good result


def test_threaded_space_count_with_pattern():
    space = ThreadSafeTupleSpace()
    space.out(Tuple("a", 1))
    space.out(Tuple("a", 2))
    space.out(Tuple("b", 1))
    assert space.count(Pattern("a", int)) == 2
    assert space.count() == 3


def test_registry_visible_nodes_sorted_and_dynamic():
    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    c = ThreadedTiamatNode(registry, "c")
    b = ThreadedTiamatNode(registry, "b")
    registry.set_visible("a", "c")
    registry.set_visible("a", "b")
    assert [n.name for n in registry.visible_nodes("a")] == ["b", "c"]
    registry.set_visible("a", "b", False)
    assert [n.name for n in registry.visible_nodes("a")] == ["c"]
    assert registry.visible_nodes("stranger") == []


def test_threaded_rd_does_not_consume_remote():
    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    b = ThreadedTiamatNode(registry, "b")
    registry.set_visible("a", "b")
    a.out(Tuple("keep"))
    assert b.rd(Pattern("keep"), timeout=1.0) == Tuple("keep")
    assert a.space.count(Pattern("keep")) == 1


def test_threaded_unbounded_rd_blocks_until_signal():
    space = ThreadSafeTupleSpace()
    results = []

    def reader():
        results.append(space.rd(Pattern("sig")))  # no timeout: waits

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not results
    space.out(Tuple("sig"))
    thread.join(timeout=5.0)
    assert results == [Tuple("sig")]


# ---------------------------------------------------------------------------
# Persistence properties
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(tuples_strategy, max_size=10))
def test_snapshot_restore_roundtrip_property(tuples):
    sim = Simulator()
    source = LocalTupleSpace(sim, name="src")
    for tup in tuples:
        source.out(tup)
    snapshot = snapshot_space(source)
    target = LocalTupleSpace(sim, name="dst")
    restored = restore_space(target, snapshot)
    assert restored == len(tuples)
    assert sorted(target.snapshot(), key=repr) == sorted(tuples, key=repr)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(tuples_strategy,
                          st.one_of(st.none(),
                                    st.floats(min_value=1.0, max_value=100.0))),
                max_size=8))
def test_snapshot_preserves_lease_structure(items):
    sim = Simulator()
    source = LocalTupleSpace(sim, name="src")
    for tup, remaining in items:
        expires_at = None if remaining is None else sim.now + remaining
        source.out(tup, expires_at=expires_at)
    snapshot = snapshot_space(source)
    bounded = sum(1 for _, r in items if r is not None)
    unbounded = sum(1 for _, r in items if r is None)
    assert sum(1 for e in snapshot["entries"] if e["remaining"] is not None) == bounded
    assert sum(1 for e in snapshot["entries"] if e["remaining"] is None) == unbounded
