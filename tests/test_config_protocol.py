"""Tests for configuration validation and protocol constants."""

import pytest

from repro.core import TiamatConfig
from repro.core import protocol
from repro.leasing import LeaseTerms, OperationKind


# ---------------------------------------------------------------------------
# TiamatConfig
# ---------------------------------------------------------------------------
def test_config_defaults():
    config = TiamatConfig()
    assert config.propagate_mode == "start"  # the paper's prototype
    assert config.comms_strategy == "mru"
    assert config.peer_timeout > 0
    assert config.discover_window > 0
    assert config.claim_timeout > 0


def test_config_rejects_bad_propagate_mode():
    with pytest.raises(ValueError):
        TiamatConfig(propagate_mode="sometimes")


def test_config_rejects_bad_comms_strategy():
    with pytest.raises(ValueError):
        TiamatConfig(comms_strategy="carrier-pigeon")


def test_config_default_terms_cover_all_operations():
    config = TiamatConfig()
    for kind in OperationKind:
        terms = config.default_terms(kind)
        assert isinstance(terms, LeaseTerms)
        assert terms.duration is not None  # no unbounded defaults


def test_config_blocking_defaults_have_remote_budget():
    config = TiamatConfig()
    for kind in (OperationKind.IN, OperationKind.RD,
                 OperationKind.INP, OperationKind.RDP):
        assert config.default_terms(kind).max_remotes is not None


def test_config_deposit_defaults_longer_than_probes():
    config = TiamatConfig()
    assert (config.default_terms(OperationKind.OUT).duration
            > config.default_terms(OperationKind.RDP).duration)


def test_operation_kind_classification():
    assert OperationKind.OUT.is_deposit and OperationKind.EVAL.is_deposit
    assert not OperationKind.IN.is_deposit
    assert OperationKind.IN.is_blocking and OperationKind.RD.is_blocking
    assert not OperationKind.INP.is_blocking
    assert not OperationKind.RDP.is_blocking
    assert not OperationKind.OUT.is_blocking


# ---------------------------------------------------------------------------
# Protocol constants
# ---------------------------------------------------------------------------
def test_all_kinds_is_complete_and_unique():
    kinds = [
        protocol.DISCOVER, protocol.DISCOVER_ACK,
        protocol.QUERY, protocol.QUERY_REPLY, protocol.QUERY_REFUSED,
        protocol.CANCEL, protocol.CLAIM_ACCEPT, protocol.CLAIM_REJECT,
        protocol.REMOTE_OUT, protocol.REMOTE_OUT_ACK, protocol.RELAY_OUT,
        protocol.REL_ACK,
        protocol.SYNC_REQUEST, protocol.SYNC_RESPONSE,
        protocol.FABRIC_MAP, protocol.FABRIC_OUT, protocol.FABRIC_REPL,
        protocol.FABRIC_INVAL, protocol.FABRIC_MIGRATE,
        protocol.FABRIC_MIGRATE_ACK,
    ]
    assert len(kinds) == len(set(kinds))
    assert protocol.ALL_KINDS == frozenset(kinds)
    assert protocol.FABRIC_KINDS < protocol.ALL_KINDS


def test_kind_strings_are_stable():
    # The wire format is part of the public surface: renaming a kind is a
    # protocol break, so pin the strings.
    assert protocol.QUERY == "query"
    assert protocol.QUERY_REPLY == "query_reply"
    assert protocol.CLAIM_ACCEPT == "claim_accept"
    assert protocol.CLAIM_REJECT == "claim_reject"
    assert protocol.DISCOVER == "discover"
    assert protocol.REMOTE_OUT == "remote_out"
    assert protocol.SYNC_REQUEST == "sync_request"
    assert protocol.SYNC_RESPONSE == "sync_response"
    assert protocol.FABRIC_MAP == "fabric_map"
    assert protocol.FABRIC_OUT == "fabric_out"
    assert protocol.FABRIC_REPL == "fabric_repl"
    assert protocol.FABRIC_INVAL == "fabric_inval"
    assert protocol.FABRIC_MIGRATE == "fabric_migrate"
    assert protocol.FABRIC_MIGRATE_ACK == "fabric_migrate_ack"
