"""Tests for the Limbo DTS baseline: replication, ownership, anomalies."""

import pytest

from repro.baselines import build_limbo_system
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


@pytest.fixture()
def system():
    sim = Simulator(seed=4)
    net = Network(sim)
    nodes, oracle = build_limbo_system(sim, net, ["a", "b", "c"])
    net.visibility.connect_clique(["a", "b", "c"])
    return sim, net, nodes, oracle


def test_out_replicates_to_group(system):
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    for node in nodes.values():
        assert node.space.count(Pattern("x", int)) == 1


def test_rd_is_purely_local(system):
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    before = net.stats.total_messages
    op = nodes["b"].rdp(Pattern("x", int))
    assert op.result == Tuple("x", 1)
    assert net.stats.total_messages == before  # replica read: no traffic


def test_owner_take_removes_everywhere(system):
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    op = nodes["a"].inp(Pattern("x", int))
    assert op.result == Tuple("x", 1)
    sim.run(until=4.0)
    for node in nodes.values():
        assert node.space.count(Pattern("x", int)) == 0


def test_non_owner_take_requires_transfer(system):
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    op = nodes["b"].inp(Pattern("x", int))
    sim.run(until=5.0)
    assert op.result == Tuple("x", 1)
    for node in nodes.values():
        assert node.space.count(Pattern("x", int)) == 0


def test_non_owner_take_fails_when_owner_invisible(system):
    """Ownership breaks the identity/space decoupling (section 4.3)."""
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    net.visibility.set_up("a", False)
    op = nodes["b"].inp(Pattern("x", int))
    sim.run(until=10.0)
    assert op.result is None
    assert nodes["b"].transfer_failures == 1
    # The tuple is stuck in b's (and c's) replica: an orphan.
    assert nodes["b"].orphaned_tuples({"a"}) == 1


def test_disconnected_replica_still_reads_removed_tuple(system):
    """The paper's stale-read anomaly: removal not seen while disconnected."""
    sim, net, nodes, oracle = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    # c disconnects, then a (the owner) removes the tuple.
    net.visibility.isolate("c")
    op = nodes["a"].inp(Pattern("x", int))
    sim.run(until=4.0)
    assert op.result == Tuple("x", 1)
    # c still sees it: a read that traditional Linda semantics forbid.
    stale = nodes["c"].rdp(Pattern("x", int))
    assert stale.result == Tuple("x", 1)
    assert nodes["c"].stale_reads == 1


def test_reconnect_sync_fetches_missed_inserts(system):
    sim, net, nodes, _ = system
    net.visibility.isolate("c")
    nodes["a"].out(Tuple("while-away", 1))
    sim.run(until=2.0)
    assert nodes["c"].space.count(Pattern("while-away", int)) == 0
    net.visibility.set_visible("c", "a")
    sim.run(until=5.0)
    assert nodes["c"].space.count(Pattern("while-away", int)) == 1


def test_reconnect_sync_applies_missed_removals(system):
    sim, net, nodes, _ = system
    nodes["a"].out(Tuple("x", 1))
    sim.run(until=2.0)
    net.visibility.isolate("c")
    nodes["a"].inp(Pattern("x", int))
    sim.run(until=4.0)
    assert nodes["c"].space.count(Pattern("x", int)) == 1  # stale
    net.visibility.set_visible("c", "b")
    sim.run(until=8.0)
    assert nodes["c"].space.count(Pattern("x", int)) == 0  # repaired


def test_disconnected_out_propagates_after_reconnect(system):
    """Disconnected clients can out as normal; peers learn on reconnect."""
    sim, net, nodes, _ = system
    net.visibility.isolate("c")
    nodes["c"].out(Tuple("offline-note"))
    sim.run(until=2.0)
    assert nodes["a"].space.count(Pattern("offline-note")) == 0
    net.visibility.set_visible("c", "a")
    sim.run(until=5.0)
    assert nodes["a"].space.count(Pattern("offline-note")) == 1


def test_blocking_in_waits_for_replicated_tuple(system):
    sim, net, nodes, _ = system
    op = nodes["b"].in_(Pattern("later"), timeout=20.0)
    sim.schedule(3.0, nodes["b"].out, Tuple("later"))
    sim.run(until=10.0)
    assert op.result == Tuple("later")


def test_replication_storage_burden(system):
    """Every participant pays full-replica storage (section 4.3)."""
    sim, net, nodes, _ = system
    for i in range(20):
        nodes["a"].out(Tuple("bulk", i))
    sim.run(until=5.0)
    for node in nodes.values():
        assert node.stored_tuples() == 20
