"""Integration tests for the leased service-discovery application."""

import pytest

from repro.apps import ServiceClient, ServiceProvider, advert_pattern
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator


def build_world(sim, names):
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    return net, instances


@pytest.fixture()
def sim():
    return Simulator(seed=61)


def test_discover_finds_advertised_service(sim):
    net, inst = build_world(sim, ["provider", "client"])
    provider = ServiceProvider(sim, inst["provider"], "echo", lambda s: s)
    provider.start()
    client = ServiceClient(sim, inst["client"])
    process = sim.spawn(client.discover("echo"))
    sim.run(until=10.0)
    assert process.value == "provider"
    provider.stop()


def test_discover_unknown_type_returns_none(sim):
    net, inst = build_world(sim, ["provider", "client"])
    ServiceProvider(sim, inst["provider"], "echo", lambda s: s).start()
    client = ServiceClient(sim, inst["client"])
    process = sim.spawn(client.discover("translator"))
    sim.run(until=10.0)
    assert process.value is None


def test_call_roundtrip(sim):
    net, inst = build_world(sim, ["provider", "client"])
    provider = ServiceProvider(sim, inst["provider"], "upper",
                               lambda s: s.upper())
    provider.start()
    client = ServiceClient(sim, inst["client"])
    process = sim.spawn(client.call("upper", "hello"))
    sim.run(until=30.0)
    assert process.value == "HELLO"
    assert provider.served == 1
    assert client.completed == 1


def test_advert_expires_after_provider_death(sim):
    """Soft state: no stale registration survives a dead provider."""
    net, inst = build_world(sim, ["provider", "client"])
    provider = ServiceProvider(sim, inst["provider"], "echo", lambda s: s,
                               advert_lease=5.0, refresh_every=2.0)
    provider.start()
    sim.run(until=4.0)
    assert inst["provider"].space.count(advert_pattern("echo")) >= 1
    provider.stop()  # crashes: stops refreshing
    sim.run(until=20.0)
    assert inst["provider"].space.count(advert_pattern("echo")) == 0
    client = ServiceClient(sim, inst["client"])
    process = sim.spawn(client.discover("echo"))
    sim.run(until=30.0)
    assert process.value is None  # discovery correctly finds nothing


def test_advert_refresh_keeps_service_visible(sim):
    net, inst = build_world(sim, ["provider", "client"])
    provider = ServiceProvider(sim, inst["provider"], "echo", lambda s: s,
                               advert_lease=5.0, refresh_every=2.0)
    provider.start()
    client = ServiceClient(sim, inst["client"])
    # Much later than one advert lease: refreshes kept it alive.
    sim.run(until=60.0)
    process = sim.spawn(client.discover("echo"))
    sim.run(until=70.0)
    assert process.value == "provider"
    provider.stop()


def test_provider_replacement_invisible_to_client(sim):
    """Like the web proxies: providers swap without the client noticing."""
    net, inst = build_world(sim, ["p1", "p2", "client"])
    first = ServiceProvider(sim, inst["p1"], "calc", lambda s: str(len(s)))
    first.start()
    client = ServiceClient(sim, inst["client"])
    results = []

    def caller():
        for argument in ("one", "three", "seven"):
            result = yield from client.call("calc", argument)
            results.append(result)
            yield sim.timeout(10.0)

    sim.spawn(caller())

    def swap():
        first.stop()
        net.visibility.set_up("p1", False)
        ServiceProvider(sim, inst["p2"], "calc", lambda s: str(len(s))).start()

    sim.schedule(12.0, swap)
    sim.run(until=120.0)
    assert results == ["3", "5", "5"]
    assert client.completed == 3


def test_two_service_types_coexist(sim):
    net, inst = build_world(sim, ["p1", "p2", "client"])
    ServiceProvider(sim, inst["p1"], "upper", lambda s: s.upper()).start()
    ServiceProvider(sim, inst["p2"], "reverse", lambda s: s[::-1]).start()
    client = ServiceClient(sim, inst["client"])
    up = sim.spawn(client.call("upper", "abc"))
    rev = sim.spawn(client.call("reverse", "abc"))
    sim.run(until=30.0)
    assert up.value == "ABC"
    assert rev.value == "cba"


def test_available_types_listing(sim):
    net, inst = build_world(sim, ["p1", "p2", "client"])
    ServiceProvider(sim, inst["p1"], "upper", str.upper).start()
    ServiceProvider(sim, inst["p2"], "reverse", lambda s: s[::-1]).start()
    client = ServiceClient(sim, inst["client"])
    process = sim.spawn(client.available_types(["upper", "reverse", "ai"]))
    sim.run(until=30.0)
    assert process.value == ["reverse", "upper"]


def test_call_without_any_provider_times_out(sim):
    net, inst = build_world(sim, ["client"])
    client = ServiceClient(sim, inst["client"], call_timeout=5.0)
    process = sim.spawn(client.call("void", "x"))
    sim.run(until=30.0)
    assert process.value is None
    assert client.calls == 1 and client.completed == 0
