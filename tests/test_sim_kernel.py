"""Unit tests for the discrete-event kernel (clock, queue, timers)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=10.0).now == 10.0


def test_schedule_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_fifo_order_at_same_instant():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_interleaved_times_run_in_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_zero_delay_runs_after_already_queued_now():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, seen.append, 1)
    sim.schedule(0.0, seen.append, 2)
    sim.run()
    assert seen == [1, 2]


def test_callback_can_schedule_more_work():
    sim = Simulator()
    seen = []

    def later():
        seen.append(sim.now)
        if sim.now < 3:
            sim.schedule(1.0, later)

    sim.schedule(1.0, later)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_timer_cancel_prevents_callback():
    sim = Simulator()
    seen = []
    timer = sim.schedule(1.0, seen.append, "x")
    timer.cancel()
    sim.run()
    assert seen == []
    assert not timer.active


def test_timer_active_lifecycle():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    assert timer.active
    sim.run()
    assert timer.fired and not timer.active


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0  # clock advanced exactly to the horizon
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=2)
    assert seen == [0, 1]


def test_step_processes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(2.0, seen.append, 2)
    assert sim.step()
    assert seen == [1]
    assert sim.step()
    assert not sim.step()


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append("a"), sim.stop()))
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_schedule_at_in_past_clamps_to_now():
    sim = Simulator()
    seen = []

    def cb():
        sim.schedule_at(0.5, seen.append, sim.now)  # already past

    sim.schedule(2.0, cb)
    sim.run()
    assert seen == [2.0]


def test_pending_and_peek():
    sim = Simulator()
    assert sim.peek() is None
    t1 = sim.schedule(3.0, lambda: None)
    sim.schedule(7.0, lambda: None)
    assert sim.pending == 2
    assert sim.peek() == 3.0
    t1.cancel()
    assert sim.peek() == 7.0
    assert sim.pending == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(1.0, bad)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4
