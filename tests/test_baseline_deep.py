"""Deeper baseline protocol coverage: waits, queues, and partial failures."""


from repro.baselines import (
    build_corelime_system,
    build_lime_system,
    build_limbo_system,
    build_peers_system,
)
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


# ---------------------------------------------------------------------------
# Limbo
# ---------------------------------------------------------------------------
def test_limbo_blocking_take_of_foreign_tuple_after_wait():
    """A blocking in() waits for replication, then transfers ownership."""
    sim = Simulator(seed=91)
    net = Network(sim)
    nodes, _ = build_limbo_system(sim, net, ["owner", "taker"])
    net.visibility.set_visible("owner", "taker")
    op = nodes["taker"].in_(Pattern("late", int), timeout=20.0)
    sim.schedule(3.0, nodes["owner"].out, Tuple("late", 5))
    sim.run(until=30.0)
    assert op.result == Tuple("late", 5)
    for node in nodes.values():
        assert node.space.count(Pattern("late", int)) == 0


def test_limbo_transfer_changes_owner_for_future_ops():
    sim = Simulator(seed=92)
    net = Network(sim)
    nodes, _ = build_limbo_system(sim, net, ["a", "b", "c"])
    net.visibility.connect_clique(["a", "b", "c"])
    nodes["a"].out(Tuple("deed", 1))
    nodes["a"].out(Tuple("deed", 2))
    sim.run(until=2.0)
    # b takes deed 1 via transfer; the OTHER deed stays owned by a.
    op = nodes["b"].inp(Pattern("deed", 1))
    sim.run(until=5.0)
    assert op.result == Tuple("deed", 1)
    # a can still remove its remaining tuple without any transfer.
    before = net.stats.total_messages
    op2 = nodes["a"].inp(Pattern("deed", 2))
    assert op2.result == Tuple("deed", 2)
    # owner-removal needs no transfer roundtrip (only the remove multicast).
    assert net.stats.total_messages - before <= 1


def test_limbo_duplicate_insert_suppressed():
    """Sync data arriving twice must not duplicate replica entries."""
    sim = Simulator(seed=93)
    net = Network(sim)
    nodes, _ = build_limbo_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    nodes["a"].out(Tuple("once"))
    sim.run(until=2.0)
    # Re-trigger a sync by flapping the edge.
    net.visibility.set_visible("a", "b", False)
    net.visibility.set_visible("a", "b", True)
    sim.run(until=5.0)
    assert nodes["b"].space.count(Pattern("once")) == 1


def test_limbo_removed_tuple_not_resurrected_by_sync():
    sim = Simulator(seed=94)
    net = Network(sim)
    nodes, _ = build_limbo_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    nodes["a"].out(Tuple("gone"))
    sim.run(until=2.0)
    nodes["a"].inp(Pattern("gone"))
    sim.run(until=4.0)
    net.visibility.set_visible("a", "b", False)
    net.visibility.set_visible("a", "b", True)
    sim.run(until=8.0)
    assert nodes["a"].space.count(Pattern("gone")) == 0
    assert nodes["b"].space.count(Pattern("gone")) == 0


# ---------------------------------------------------------------------------
# LIME
# ---------------------------------------------------------------------------
def test_lime_ops_queued_during_disengage_run_after():
    sim = Simulator(seed=95)
    net = Network(sim)
    fed, hosts = build_lime_system(sim, net, ["h0", "h1", "h2"])
    net.visibility.connect_clique(["h0", "h1", "h2"])
    for h in hosts.values():
        h.engage()
    sim.run(until=10.0)
    hosts["h0"].out(Tuple("x"))
    sim.run(until=11.0)
    hosts["h2"].disengage()
    op = hosts["h1"].rdp(Pattern("x"))  # queued behind the barrier
    assert not op.done
    sim.run(until=20.0)
    assert op.result == Tuple("x")


def test_lime_reengagement_after_disengage():
    sim = Simulator(seed=96)
    net = Network(sim)
    fed, hosts = build_lime_system(sim, net, ["h0", "h1"], max_hosts=6)
    net.visibility.set_visible("h0", "h1")
    hosts["h0"].engage()
    hosts["h1"].engage()
    sim.run(until=5.0)
    hosts["h1"].disengage()
    sim.run(until=10.0)
    handle = hosts["h1"].engage()
    sim.run(until=15.0)
    assert handle.result is not None
    assert fed.engaged_count == 2


def test_lime_disengaged_host_keeps_private_space():
    sim = Simulator(seed=97)
    net = Network(sim)
    fed, hosts = build_lime_system(sim, net, ["h0", "h1"])
    net.visibility.set_visible("h0", "h1")
    hosts["h0"].out(Tuple("pre-engagement"))  # lands in local space
    hosts["h0"].engage()
    sim.run(until=5.0)
    # The private tuple did not migrate into the federation.
    op = hosts["h1"].rdp(Pattern("pre-engagement"))
    sim.run(until=6.0)
    assert op.result is None
    hosts["h0"].disengage()
    sim.run(until=10.0)
    op2 = hosts["h0"].rdp(Pattern("pre-engagement"))
    sim.run(until=11.0)
    assert op2.result == Tuple("pre-engagement")


# ---------------------------------------------------------------------------
# PeerSpaces
# ---------------------------------------------------------------------------
def test_peers_reply_lost_when_reverse_path_breaks():
    """Reverse-path routing fails if an intermediate hop disappears."""
    sim = Simulator(seed=98)
    net = Network(sim)
    nodes = build_peers_system(sim, net, ["origin", "mid", "holder"])
    net.visibility.set_visible("origin", "mid")
    net.visibility.set_visible("mid", "holder")
    nodes["holder"].out(Tuple("far"))

    # Cut the mid hop the moment the query passes through it.
    original = net._handlers["holder"]

    def cut_then_handle(msg):
        original(msg)
        net.visibility.set_up("mid", False)

    net._handlers["holder"] = cut_then_handle
    op = nodes["origin"].rdp(Pattern("far"))
    sim.run(until=30.0)
    assert op.done and op.result is None  # search lease expired


def test_peers_duplicate_query_suppression():
    """In a dense mesh each node processes a flooded query only once."""
    sim = Simulator(seed=99)
    net = Network(sim)
    names = [f"p{i}" for i in range(5)]
    nodes = build_peers_system(sim, net, names, default_ttl=5)
    net.visibility.connect_clique(names)
    op = nodes["p0"].rdp(Pattern("nothing"))
    sim.run(until=10.0)
    assert op.done
    # Each non-origin node forwarded at most once despite many copies.
    for name in names[1:]:
        assert nodes[name].queries_forwarded <= 1


def test_peers_concurrent_destructive_searches_unique_winners():
    sim = Simulator(seed=100)
    net = Network(sim)
    names = [f"p{i}" for i in range(4)]
    nodes = build_peers_system(sim, net, names)
    net.visibility.connect_clique(names)
    nodes["p3"].out(Tuple("prize"))
    op1 = nodes["p0"].inp(Pattern("prize"))
    op2 = nodes["p1"].inp(Pattern("prize"))
    sim.run(until=20.0)
    winners = [op for op in (op1, op2) if op.result is not None]
    assert len(winners) == 1
    assert sum(n.stored_tuples() for n in nodes.values()) == 0


# ---------------------------------------------------------------------------
# CoreLime
# ---------------------------------------------------------------------------
def test_corelime_agent_times_out_waiting_remotely():
    sim = Simulator(seed=101)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    agent = hosts["a"].send_agent("b", "rd", Pattern("never"), timeout=3.0)
    sim.run(until=30.0)
    assert agent.done and agent.result is None


def test_corelime_agent_return_lost_when_home_departs():
    sim = Simulator(seed=102)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    hosts["b"].out(Tuple("x"))
    agent = hosts["a"].send_agent("b", "rdp", Pattern("x"), timeout=5.0)
    net.visibility.set_up("a", False)  # home vanishes before the return leg
    sim.run(until=30.0)
    net.visibility.set_up("a", True)
    sim.run(until=40.0)
    assert agent.done and agent.result is None
    assert hosts["a"].agents_lost == 1
