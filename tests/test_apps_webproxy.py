"""Integration tests for the web client / proxy application (section 3.2)."""


from repro.apps import OriginFabric, WebScenario
from repro.net import Network
from repro.sim import Simulator


def make_scenario(seed=21, clients=1, proxies=1, fetch_time=0.05):
    sim = Simulator(seed=seed)
    net = Network(sim)
    scenario = WebScenario(sim, net, fabric=OriginFabric(fetch_time=fetch_time))
    for i in range(clients):
        scenario.add_client(f"client{i}")
    for i in range(proxies):
        scenario.add_proxy(f"proxy{i}")
    scenario.connect_all()
    return sim, net, scenario


def test_single_request_roundtrip():
    sim, net, scenario = make_scenario()
    client = scenario.clients["client0"]
    process = sim.spawn(client.fetch("http://example.org/"))
    sim.run(until=30.0)
    assert process.triggered
    assert "example.org" in process.value
    assert client.satisfied == 1
    assert scenario.proxies["proxy0"].handled == 1


def test_client_never_learns_proxy_identity():
    """Identity decoupling: the response tuple carries no server identity."""
    sim, net, scenario = make_scenario()
    client = scenario.clients["client0"]
    process = sim.spawn(client.fetch("http://a/"))
    sim.run(until=30.0)
    body = process.value
    assert body is not None
    assert "proxy" not in body


def test_multiple_clients_share_proxies():
    sim, net, scenario = make_scenario(clients=3, proxies=2)
    for name, client in scenario.clients.items():
        sim.spawn(client.browse([f"http://{name}/1", f"http://{name}/2"]))
    sim.run(until=60.0)
    assert scenario.total_satisfied() == 6
    assert scenario.total_failed() == 0
    handled = sum(p.handled for p in scenario.proxies.values())
    assert handled == 6


def test_proxy_added_under_load_is_invisible_to_clients():
    """Proxies can be dynamically added without the clients' knowledge."""
    # Slow fetches saturate the lone proxy, so queued requests exist for
    # the late proxy to pick up.
    sim, net, scenario = make_scenario(clients=2, proxies=1, fetch_time=3.0)
    urls = [f"http://site/{i}" for i in range(5)]
    for client in scenario.clients.values():
        sim.spawn(client.browse(urls, think_time=1.0))
    sim.schedule(5.0, lambda: (scenario.add_proxy("proxy-late"),
                               scenario.connect_all()))
    sim.run(until=120.0)
    assert scenario.total_satisfied() == 10
    assert scenario.proxies["proxy-late"].handled > 0


def test_failed_proxy_replaced_without_client_perturbation():
    sim, net, scenario = make_scenario(clients=1, proxies=1)
    client = scenario.clients["client0"]
    urls = [f"http://site/{i}" for i in range(6)]
    sim.spawn(client.browse(urls, think_time=2.0))

    def kill_and_replace():
        scenario.proxies["proxy0"].stop()
        net.visibility.set_up("proxy0", False)
        scenario.add_proxy("proxy-replacement")
        scenario.connect_all()

    sim.schedule(5.0, kill_and_replace)
    sim.run(until=200.0)
    assert client.satisfied == 6
    assert client.failed == 0
    assert scenario.proxies["proxy-replacement"].handled > 0


def test_disconnected_client_served_after_reconnect():
    """Requests made with no server visible are served once one appears."""
    sim, net, scenario = make_scenario(clients=1, proxies=1)
    client = scenario.clients["client0"]
    net.visibility.isolate("client0")  # between networks
    process = sim.spawn(client.fetch("http://queued/"))
    sim.run(until=3.0)
    assert not process.triggered  # request parked in the local space
    net.visibility.set_visible("client0", "proxy0")
    sim.run(until=60.0)
    assert process.triggered and process.value is not None
    assert client.satisfied == 1


def test_disconnected_request_lost_when_lease_expires():
    """The flip side: an expired request lease means no service (2.5)."""
    sim, net, scenario = make_scenario(clients=1, proxies=1)
    client = scenario.clients["client0"]
    client.request_lease = 5.0
    client.response_wait = 8.0
    net.visibility.isolate("client0")
    process = sim.spawn(client.fetch("http://too-late/"))
    # Reconnect only after the request tuple's lease has expired.
    sim.schedule(6.0, net.visibility.set_visible, "client0", "proxy0", True)
    sim.run(until=60.0)
    assert process.triggered and process.value is None
    assert client.failed == 1


def test_fabric_is_deterministic():
    fabric = OriginFabric()
    assert fabric.page_for("http://x/") == fabric.page_for("http://x/")
    assert fabric.fetches == 2
