"""Tests for the real-thread runtime (concurrency, blocking, visibility).

Synchronization discipline: no bare ``time.sleep`` to "let a thread get
going".  Tests that need a reader to be *blocked* before acting wait on
the space's waiter counters (:func:`wait_until`), which is both faster
and deterministic under scheduler jitter.  ``pytest.mark.timeout`` caps
the whole module as a hang guard (enforced when pytest-timeout is
installed — CI — and inert locally).
"""

import threading
import time

import pytest

from repro.runtime import ThreadSafeTupleSpace
from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode
from repro.tuples import Formal, Pattern, Tuple

pytestmark = pytest.mark.timeout(60)


def wait_until(predicate, timeout=5.0, interval=0.001, what="condition"):
    """Poll ``predicate`` until true; fail loudly instead of hanging."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"{what} not reached within {timeout}s")
        time.sleep(interval)


# ---------------------------------------------------------------------------
# ThreadSafeTupleSpace
# ---------------------------------------------------------------------------
def test_out_rdp_inp_roundtrip():
    space = ThreadSafeTupleSpace()
    space.out(Tuple("x", 1))
    assert space.rdp(Pattern("x", int)) == Tuple("x", 1)
    assert space.inp(Pattern("x", int)) == Tuple("x", 1)
    assert space.inp(Pattern("x", int)) is None


def test_blocking_rd_wakes_on_deposit():
    space = ThreadSafeTupleSpace()
    results = []

    def reader():
        results.append(space.rd(Pattern("ping"), timeout=5.0))

    thread = threading.Thread(target=reader)
    thread.start()
    # Condition-based sync: only deposit once the reader is parked, so
    # the wake-on-deposit path is exercised every run, not just usually.
    wait_until(lambda: space.waiting == 1, what="reader parked")
    space.out(Tuple("ping"))
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [Tuple("ping")]


def test_blocking_in_times_out():
    space = ThreadSafeTupleSpace()
    start = time.monotonic()
    assert space.in_(Pattern("never"), timeout=0.1) is None
    assert time.monotonic() - start >= 0.09


def test_exactly_once_under_contention():
    """Many threads race to take N tuples: each tuple taken exactly once."""
    space = ThreadSafeTupleSpace()
    n = 50
    for i in range(n):
        space.out(Tuple("job", i))
    taken: list = []
    lock = threading.Lock()

    def worker():
        while True:
            tup = space.inp(Pattern("job", Formal(int)))
            if tup is None:
                return
            with lock:
                taken.append(tup[1])

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert sorted(taken) == list(range(n))
    assert space.count() == 0


def test_lease_expiry_wall_clock():
    space = ThreadSafeTupleSpace()
    space.out(Tuple("mortal"), lease_duration=0.05)
    assert space.rdp(Pattern("mortal")) == Tuple("mortal")
    # Bounded poll instead of a fixed oversleep: pass as soon as the
    # lease has actually lapsed, fail loudly if it never does.
    wait_until(lambda: space.rdp(Pattern("mortal")) is None,
               what="lease expiry")
    assert space.count() == 0


def test_snapshot_ordering():
    space = ThreadSafeTupleSpace()
    for i in range(3):
        space.out(Tuple("seq", i))
    assert space.snapshot() == [Tuple("seq", 0), Tuple("seq", 1), Tuple("seq", 2)]


# ---------------------------------------------------------------------------
# ThreadedTiamatNode
# ---------------------------------------------------------------------------
def make_pair(visible=True):
    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    b = ThreadedTiamatNode(registry, "b")
    if visible:
        registry.set_visible("a", "b")
    return registry, a, b


def test_logical_space_reaches_visible_peer():
    registry, a, b = make_pair()
    a.out(Tuple("shared", 1))
    assert b.rdp(Pattern("shared", int)) == Tuple("shared", 1)
    assert b.inp(Pattern("shared", int)) == Tuple("shared", 1)
    assert a.space.count(Pattern("shared", int)) == 0


def test_isolated_nodes_see_only_local():
    registry, a, b = make_pair(visible=False)
    a.out(Tuple("private"))
    assert b.rdp(Pattern("private")) is None
    assert a.rdp(Pattern("private")) == Tuple("private")


def test_blocking_across_nodes_with_real_threads():
    registry, a, b = make_pair()
    results = []

    def consumer():
        results.append(b.in_(Pattern("work"), timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    # The node's blocking loop parks on its local space between peer
    # probes; one recorded wait entry proves the consumer is in the loop.
    wait_until(lambda: b.space.wait_entries >= 1, what="consumer blocking")
    a.out(Tuple("work"))
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [Tuple("work")]


def test_visibility_change_mid_block_is_opportunistic():
    """A node that becomes visible mid-operation is used (model semantics)."""
    registry, a, b = make_pair(visible=False)
    a.out(Tuple("late-visible"))
    results = []

    def consumer():
        results.append(b.rd(Pattern("late-visible"), timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    # Wait for the consumer to be mid-block (it has already re-sampled
    # visibility at least once and found nothing), then flip the edge.
    wait_until(lambda: b.space.wait_entries >= 1, what="consumer blocking")
    registry.set_visible("a", "b")
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [Tuple("late-visible")]


def test_exactly_once_across_nodes_under_contention():
    registry = ThreadedNodeRegistry()
    nodes = [ThreadedTiamatNode(registry, f"n{i}") for i in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            registry.set_visible(f"n{i}", f"n{j}")
    n = 40
    for i in range(n):
        nodes[i % 4].out(Tuple("job", i))
    taken: list = []
    lock = threading.Lock()

    def worker(node):
        while True:
            tup = node.inp(Pattern("job", Formal(int)))
            if tup is None:
                return
            with lock:
                taken.append(tup[1])

    threads = [threading.Thread(target=worker, args=(node,)) for node in nodes]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert sorted(taken) == list(range(n))


def test_threaded_eval_deposits_result():
    registry, a, b = make_pair()
    thread = a.eval(lambda x: Tuple("square", x * x), 7)
    thread.join(timeout=5.0)
    assert b.rdp(Pattern("square", int)) == Tuple("square", 49)


def test_blocking_timeout_returns_none():
    registry, a, b = make_pair()
    start = time.monotonic()
    assert b.in_(Pattern("never"), timeout=0.1) is None
    assert time.monotonic() - start >= 0.09
