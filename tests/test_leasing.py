"""Unit tests for lease terms, leases, requesters, resources, and policies."""

import pytest

from repro.errors import LeaseError
from repro.leasing import (
    AcceptAnythingRequester,
    AdaptivePolicy,
    ConservativePolicy,
    DenyAllPolicy,
    GenerousPolicy,
    Lease,
    LeaseState,
    LeaseTerms,
    ResourceFactory,
    SimpleLeaseRequester,
)
from repro.leasing.policy import UsageSnapshot


# ---------------------------------------------------------------------------
# LeaseTerms
# ---------------------------------------------------------------------------
def test_terms_validation():
    with pytest.raises(LeaseError):
        LeaseTerms(duration=-1)
    with pytest.raises(LeaseError):
        LeaseTerms(max_remotes=-1)
    with pytest.raises(LeaseError):
        LeaseTerms(storage_bytes=-1)


def test_terms_satisfies():
    assert LeaseTerms(10, 5, 100).satisfies(LeaseTerms(5, 5, 50))
    assert not LeaseTerms(10, 5, 100).satisfies(LeaseTerms(20))
    assert LeaseTerms().satisfies(LeaseTerms(1000, 1000, 1000))  # unbounded
    assert LeaseTerms(10).satisfies(LeaseTerms())  # no minimum dimension


def test_terms_capped():
    capped = LeaseTerms(100, None, 500).capped(duration=10, max_remotes=3)
    assert capped == LeaseTerms(10, 3, 500)
    assert LeaseTerms(5).capped(duration=10).duration == 5


def test_terms_equality():
    assert LeaseTerms(1, 2, 3) == LeaseTerms(1, 2, 3)
    assert LeaseTerms(1) != LeaseTerms(2)


# ---------------------------------------------------------------------------
# Lease object
# ---------------------------------------------------------------------------
def test_lease_expiry_time():
    lease = Lease(None, LeaseTerms(duration=10), granted_at=5.0, operation="out")
    assert lease.expires_at == 15.0
    assert lease.remaining_time(10.0) == 5.0
    assert lease.remaining_time(20.0) == 0.0


def test_lease_unbounded_time():
    lease = Lease(None, LeaseTerms(), granted_at=0.0, operation="out")
    assert lease.expires_at is None
    assert lease.remaining_time(1e9) is None


def test_lease_remote_budget():
    lease = Lease(None, LeaseTerms(max_remotes=2), granted_at=0.0, operation="in")
    assert lease.use_remote() and lease.use_remote()
    assert not lease.use_remote()
    assert lease.remotes_remaining == 0
    assert lease.remotes_used == 2


def test_lease_unbounded_remotes():
    lease = Lease(None, LeaseTerms(), granted_at=0.0, operation="in")
    for _ in range(100):
        assert lease.use_remote()
    assert lease.remotes_remaining is None


def test_lease_release_fires_on_end_once():
    lease = Lease(None, LeaseTerms(duration=10), granted_at=0.0, operation="out")
    ends = []
    lease.on_end(lambda l, s: ends.append(s))
    lease.release()
    lease.release()  # idempotent
    assert ends == [LeaseState.RELEASED]
    assert not lease.active


def test_ended_lease_refuses_remote_use():
    lease = Lease(None, LeaseTerms(max_remotes=5), granted_at=0.0, operation="in")
    lease.release()
    assert not lease.use_remote()


# ---------------------------------------------------------------------------
# Requesters
# ---------------------------------------------------------------------------
def test_simple_requester_accepts_above_minimum():
    requester = SimpleLeaseRequester(LeaseTerms(100), minimum=LeaseTerms(10))
    assert requester.desired() == LeaseTerms(100)
    assert requester.consider(LeaseTerms(50))
    assert not requester.consider(LeaseTerms(5))


def test_simple_requester_without_minimum_accepts_all():
    requester = SimpleLeaseRequester(LeaseTerms(100))
    assert requester.consider(LeaseTerms(0.001))


def test_accept_anything_requester():
    requester = AcceptAnythingRequester()
    assert requester.desired() == LeaseTerms()
    assert requester.consider(LeaseTerms(0)) is True


# ---------------------------------------------------------------------------
# Resource factories
# ---------------------------------------------------------------------------
def test_factory_capacity_and_denial():
    pool = ResourceFactory("threads", capacity=2)
    t1, t2 = pool.acquire(), pool.acquire()
    assert t1 and t2
    assert pool.acquire() is None
    assert pool.denials == 1
    t1.release()
    assert pool.acquire() is not None
    assert pool.peak == 2


def test_factory_unbounded():
    pool = ResourceFactory("sockets")
    tokens = [pool.acquire() for _ in range(100)]
    assert all(tokens)
    assert pool.available is None
    assert pool.utilisation == 0.0


def test_token_release_idempotent():
    pool = ResourceFactory("threads", capacity=1)
    token = pool.acquire()
    token.release()
    token.release()
    assert pool.in_use == 0


def test_factory_utilisation():
    pool = ResourceFactory("threads", capacity=4)
    pool.acquire()
    assert pool.utilisation == 0.25
    assert pool.available == 3


def test_factory_negative_capacity_rejected():
    with pytest.raises(LeaseError):
        ResourceFactory("x", capacity=-1)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------
def _idle():
    return UsageSnapshot()


def test_generous_policy_grants_requests():
    policy = GenerousPolicy(max_duration=100)
    offer = policy.offer(LeaseTerms(50, 10, 1000), "out", _idle())
    assert offer == LeaseTerms(50, 10, 1000)


def test_generous_policy_caps_unbounded_time():
    offer = GenerousPolicy(max_duration=100).offer(LeaseTerms(), "in", _idle())
    assert offer.duration == 100


def test_conservative_policy_caps_dimensions():
    policy = ConservativePolicy(max_duration=10, max_remotes=2, max_storage_bytes=100)
    offer = policy.offer(LeaseTerms(1000, 50, 80), "out", _idle())
    assert offer.duration == 10 and offer.max_remotes == 2 and offer.storage_bytes == 80


def test_conservative_policy_refuses_oversized_storage():
    policy = ConservativePolicy(max_storage_bytes=100)
    assert policy.offer(LeaseTerms(storage_bytes=500), "out", _idle()) is None


def test_conservative_policy_refuses_when_capacity_full():
    policy = ConservativePolicy(max_storage_bytes=10_000)
    usage = UsageSnapshot(storage_used=950, storage_capacity=1000)
    assert policy.offer(LeaseTerms(storage_bytes=100), "out", usage) is None


def test_adaptive_policy_scales_with_pressure():
    policy = AdaptivePolicy(base_duration=100, base_remotes=10)
    relaxed = policy.offer(LeaseTerms(), "in", UsageSnapshot())
    pressured = policy.offer(
        LeaseTerms(), "in",
        UsageSnapshot(storage_used=80, storage_capacity=100),
    )
    assert pressured.duration < relaxed.duration
    assert pressured.max_remotes < relaxed.max_remotes


def test_adaptive_policy_refuses_storage_when_critical():
    policy = AdaptivePolicy(refuse_threshold=0.9)
    critical = UsageSnapshot(storage_used=95, storage_capacity=100)
    assert policy.offer(LeaseTerms(storage_bytes=10), "out", critical) is None
    # Non-storage operations still get (short) leases.
    assert policy.offer(LeaseTerms(), "rd", critical) is not None


def test_deny_all_policy():
    assert DenyAllPolicy().offer(LeaseTerms(), "out", _idle()) is None
