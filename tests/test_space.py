"""Unit tests for the local tuple space (blocking ops, expiry, 2-phase)."""

import pytest

from repro.errors import TupleError
from repro.sim import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple


@pytest.fixture()
def sim():
    return Simulator(seed=11)


@pytest.fixture()
def space(sim):
    return LocalTupleSpace(sim, name="test")


def test_out_then_rdp_copies(space):
    space.out(Tuple("a", 1))
    assert space.rdp(Pattern("a", int)) == Tuple("a", 1)
    assert space.count() == 1  # rdp does not remove


def test_out_then_inp_removes(space):
    space.out(Tuple("a", 1))
    assert space.inp(Pattern("a", int)) == Tuple("a", 1)
    assert space.count() == 0
    assert space.inp(Pattern("a", int)) is None


def test_rdp_inp_return_none_when_empty(space):
    assert space.rdp(Pattern("a")) is None
    assert space.inp(Pattern("a")) is None


def test_blocking_rd_satisfied_immediately_if_present(space):
    space.out(Tuple("a", 1))
    waiter = space.rd(Pattern("a", int))
    assert waiter.satisfied and waiter.event.value == Tuple("a", 1)
    assert space.count() == 1


def test_blocking_in_satisfied_immediately_if_present(space):
    space.out(Tuple("a", 1))
    waiter = space.in_(Pattern("a", int))
    assert waiter.satisfied
    assert space.count() == 0


def test_blocking_rd_waits_for_future_out(sim, space):
    waiter = space.rd(Pattern("later", int))
    assert not waiter.satisfied
    sim.schedule(5.0, space.out, Tuple("later", 9))
    sim.run()
    assert waiter.satisfied and waiter.event.value == Tuple("later", 9)
    assert space.count() == 1  # rd left it in place


def test_blocking_in_consumes_future_out(sim, space):
    waiter = space.in_(Pattern("later", int))
    sim.schedule(5.0, space.out, Tuple("later", 9))
    sim.run()
    assert waiter.satisfied
    assert space.count() == 0


def test_one_tuple_satisfies_many_rd_but_one_in(sim, space):
    rd1 = space.rd(Pattern("x"))
    rd2 = space.rd(Pattern("x"))
    in1 = space.in_(Pattern("x"))
    in2 = space.in_(Pattern("x"))
    space.out(Tuple("x"))
    sim.run()
    assert rd1.satisfied and rd2.satisfied
    assert in1.satisfied and not in2.satisfied  # FIFO: first `in` wins
    assert space.count() == 0


def test_waiter_fifo_order(sim, space):
    first = space.in_(Pattern("x"))
    second = space.in_(Pattern("x"))
    space.out(Tuple("x"))
    assert first.satisfied and not second.satisfied
    space.out(Tuple("x"))
    assert second.satisfied


def test_waiter_cancel(sim, space):
    waiter = space.in_(Pattern("x"))
    waiter.cancel()
    space.out(Tuple("x"))
    sim.run()
    assert not waiter.satisfied
    assert space.count() == 1  # nothing consumed it
    assert space.waiter_count == 0


def test_cancel_after_satisfied_is_noop(space):
    space.out(Tuple("x"))
    waiter = space.rd(Pattern("x"))
    waiter.cancel()
    assert waiter.satisfied


def test_expiry_removes_tuple(sim, space):
    space.out(Tuple("mortal"), expires_at=10.0)
    sim.run(until=9.0)
    assert space.count() == 1
    sim.run(until=11.0)
    assert space.count() == 0
    assert space.expirations == 1


def test_no_expiry_without_deadline(sim, space):
    space.out(Tuple("immortal"))
    sim.run(until=1000.0)
    assert space.count() == 1


def test_consumed_before_expiry_no_double_removal(sim, space):
    space.out(Tuple("x"), expires_at=10.0)
    assert space.inp(Pattern("x")) is not None
    sim.run(until=20.0)
    assert space.expirations == 0


def test_hold_match_hides_and_confirm_removes(sim, space):
    space.out(Tuple("x", 1))
    entry = space.hold_match(Pattern("x", int))
    assert entry is not None
    assert space.rdp(Pattern("x", int)) is None  # hidden while held
    space.confirm(entry.entry_id)
    assert space.count() == 0


def test_release_restores_and_satisfies_waiters(sim, space):
    space.out(Tuple("x", 1))
    entry = space.hold_match(Pattern("x", int))
    waiter = space.in_(Pattern("x", int))
    assert not waiter.satisfied  # held tuple invisible
    space.release(entry.entry_id)
    assert waiter.satisfied
    assert space.count() == 0  # the waiter consumed it on release


def test_release_after_expiry_reclaims(sim, space):
    space.out(Tuple("x"), expires_at=5.0)
    entry = space.hold_match(Pattern("x"))
    sim.run(until=10.0)
    assert space.count() == 0 or space.store.get(entry.entry_id) is not None
    result = space.release(entry.entry_id)
    assert result is None  # reclaimed, not restored
    assert space.rdp(Pattern("x")) is None
    assert space.expirations == 1


def test_release_unknown_entry_raises(space):
    with pytest.raises(TupleError):
        space.release(424242)


def test_expiry_while_held_defers_to_release(sim, space):
    space.out(Tuple("x"), expires_at=5.0)
    entry = space.hold_match(Pattern("x"))
    sim.run(until=6.0)
    # Entry still resident (held), but invisible.
    assert space.store.get(entry.entry_id) is not None
    assert space.rdp(Pattern("x")) is None


def test_nondeterministic_selection_uses_stream(sim):
    space = LocalTupleSpace(sim, name="nd")
    for i in range(10):
        space.out(Tuple("x", i))
    picks = {space.rdp(Pattern("x", int))[1] for _ in range(50)}
    assert len(picks) > 1


def test_listeners_fire(sim, space):
    outs, removed = [], []
    space.on_out(lambda e: outs.append(e.tuple))
    space.on_removed(lambda e, reason: removed.append((e.tuple, reason)))
    space.out(Tuple("a"))
    space.inp(Pattern("a"))
    space.out(Tuple("b"), expires_at=1.0)
    sim.run(until=2.0)
    assert outs == [Tuple("a"), Tuple("b")]
    assert (Tuple("a"), "consumed") in removed
    assert (Tuple("b"), "expired") in removed


def test_snapshot_and_count_pattern(space):
    space.out(Tuple("a", 1))
    space.out(Tuple("a", 2))
    space.out(Tuple("b", 1))
    assert space.snapshot() == [Tuple("a", 1), Tuple("a", 2), Tuple("b", 1)]
    assert space.count(Pattern("a", int)) == 2
    assert space.count() == 3


def test_out_to_waiter_counts_as_deposit(sim, space):
    space.in_(Pattern("x"))
    space.out(Tuple("x"))
    assert space.deposits == 1
    assert space.consumed == 1


def test_stored_bytes(space):
    assert space.stored_bytes() == 0
    space.out(Tuple("data", "x" * 50))
    assert space.stored_bytes() > 50
