"""Tests for the serving side: claims, timeouts, cancels, and races."""

import pytest

from repro.core import TiamatConfig, TiamatInstance
from repro.core import protocol
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple, encode_pattern

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=17)


def send_query(sim, net, origin_name, target, op, pattern, op_id="fake#1",
               deadline=30.0):
    """Inject a raw QUERY frame as if ``origin_name`` had sent it."""
    net.unicast(origin_name, target, {
        "kind": protocol.QUERY, "op_id": op_id, "op": op,
        "pattern": encode_pattern(pattern), "deadline": deadline,
    })


def mute_node(net, name):
    """Attach a raw node that never reacts (a dead or byzantine origin)."""
    inbox = []
    net.attach(name, inbox.append)
    return inbox


def test_claim_timeout_puts_tuple_back(sim):
    """If the origin vanishes after an offer, the hold is released."""
    config = TiamatConfig(claim_timeout=2.0)
    net, inst = build(sim, ["server"], config=config, clique=False)
    mute_node(net, "ghost")
    net.visibility.set_visible("server", "ghost")
    inst["server"].out(Tuple("prize"))
    # ghost sends a destructive query and never claims the offer.
    send_query(sim, net, "ghost", "server", "in", Pattern("prize"))
    sim.run(until=0.5)
    assert inst["server"].space.rdp(Pattern("prize")) is None  # held
    sim.run(until=5.0)
    # Claim timeout elapsed: tuple back in the space, serving closed.
    assert inst["server"].space.rdp(Pattern("prize")) == Tuple("prize")
    assert inst["server"].server.offers_put_back == 1
    assert inst["server"].server.active_servings == 0


def test_cancel_releases_held_tuple(sim):
    net, inst = build(sim, ["server", "origin"])
    inst["server"].out(Tuple("prize"))
    send_query(sim, net, "origin", "server", "in", Pattern("prize"))
    sim.run(until=0.5)
    net.unicast("origin", "server", {"kind": protocol.CANCEL, "op_id": "fake#1"})
    sim.run(until=1.0)
    assert inst["server"].space.rdp(Pattern("prize")) == Tuple("prize")
    assert inst["server"].server.active_servings == 0


def test_cancel_for_unknown_op_is_ignored(sim):
    net, inst = build(sim, ["server", "origin"])
    net.unicast("origin", "server", {"kind": protocol.CANCEL,
                                     "op_id": "never-existed"})
    sim.run(until=1.0)
    assert inst["server"].server.active_servings == 0


def test_claim_for_wrong_entry_is_ignored(sim):
    net, inst = build(sim, ["server"], clique=False)
    mute_node(net, "origin")
    net.visibility.set_visible("server", "origin")
    inst["server"].out(Tuple("prize"))
    send_query(sim, net, "origin", "server", "in", Pattern("prize"))
    sim.run(until=0.5)
    net.unicast("origin", "server", {"kind": protocol.CLAIM_ACCEPT,
                                     "op_id": "fake#1", "entry_id": 424242})
    sim.run(until=1.0)
    # Wrong entry id: the hold stands until the claim timeout.
    assert inst["server"].server.active_servings == 1


def test_blocking_serving_rewatches_after_local_consumption(sim):
    """A match consumed locally before the hold re-arms the remote watch."""
    net, inst = build(sim, ["server", "origin"])
    op = inst["origin"].in_(Pattern("contested"),
                            requester=SimpleLeaseRequester(LeaseTerms(20.0, 8)))
    sim.run(until=1.0)
    # Local application grabs the tuple in the same instant it appears;
    # because local space waiters are FIFO and the serving watch is already
    # registered, emulate by depositing then immediately taking locally.
    inst["server"].out(Tuple("contested"))
    # The serving's watch fires; it holds and offers to origin -> origin
    # gets it.  Then a second tuple arrives for the local consumer.
    result = run_op(sim, op, until=10.0)
    assert result == Tuple("contested")


def test_serving_lease_expiry_withdraws_watch(sim):
    config = TiamatConfig(serve_max_duration=3.0)
    net, inst = build(sim, ["server", "origin"], config=config)
    # A long origin lease, but the server only grants itself 3s of effort.
    op = inst["origin"].in_(Pattern("never"),
                            requester=SimpleLeaseRequester(LeaseTerms(60.0, 8)))
    sim.run(until=1.0)
    assert inst["server"].server.active_servings == 1
    sim.run(until=6.0)
    assert inst["server"].server.active_servings == 0
    # The origin op is still open (its own lease is 60s).
    assert not op.done


def test_query_refused_counts_and_replies(sim):
    from repro.leasing import DenyAllPolicy

    net = Network(sim)
    server = TiamatInstance(sim, net, "server", policy=DenyAllPolicy())
    origin = TiamatInstance(sim, net, "origin")
    net.visibility.set_visible("server", "origin")
    origin.out = origin.out  # noqa: using real API below
    op = origin.rdp(Pattern("x"))
    sim.run(until=5.0)
    assert op.done and op.result is None
    assert server.server.refused >= 1


def test_offer_statistics(sim):
    net, inst = build(sim, ["a", "b", "origin"])
    inst["a"].out(Tuple("item", 1))
    inst["b"].out(Tuple("item", 2))
    op = inst["origin"].in_(Pattern("item", int))
    run_op(sim, op, until=10.0)
    sim.run(until=20.0)
    offers = inst["a"].server.offers_made + inst["b"].server.offers_made
    won = inst["a"].server.offers_won + inst["b"].server.offers_won
    put_back = (inst["a"].server.offers_put_back
                + inst["b"].server.offers_put_back)
    assert offers == 2 and won == 1 and put_back == 1


def test_late_reply_to_finished_op_gets_rejected(sim):
    """An offer landing after the op record is purged is rejected cleanly."""
    config = TiamatConfig(claim_timeout=0.2, peer_timeout=0.2)
    net, inst = build(sim, ["server", "origin"], config=config)
    op = inst["origin"].in_(Pattern("slowpoke"),
                            requester=SimpleLeaseRequester(LeaseTerms(1.0, 8)))
    sim.run(until=5.0)  # op expired and was purged from the registry
    assert op.done and op.result is None
    inst["server"].out(Tuple("slowpoke"))
    # Fake a stale offer for the purged op id.
    net.unicast("server", "origin", {
        "kind": protocol.QUERY_REPLY, "op_id": op.op_id, "found": True,
        "tuple": ["t", [["s", "slowpoke"]]], "entry_id": 999,
    })
    sim.run(until=10.0)
    # Origin sent a CLAIM_REJECT; server ignores it (no such serving).
    assert inst["origin"].ops_unsatisfied >= 1


def test_rd_serving_sends_copy_and_closes(sim):
    net, inst = build(sim, ["server", "origin"])
    inst["server"].out(Tuple("doc", 1))
    op = inst["origin"].rd(Pattern("doc", int))
    assert run_op(sim, op, until=5.0) == Tuple("doc", 1)
    sim.run(until=10.0)
    assert inst["server"].server.active_servings == 0
    assert inst["server"].space.count(Pattern("doc", int)) == 1  # copy only


def test_thread_pool_exhaustion_refuses_serving(sim):
    """Serving work is allocated through the thread factory (3.1.1)."""
    from repro.core import TiamatInstance
    from repro.tuples import Tuple as T

    net = Network(sim)
    server = TiamatInstance(sim, net, "server", thread_capacity=2)
    origins = [TiamatInstance(sim, net, f"o{i}") for i in range(3)]
    for origin in origins:
        net.visibility.set_visible("server", origin.name)
    # Three concurrent blocking queries: only two worker threads exist.
    ops = [origin.in_(Pattern("scarce"),
                      requester=SimpleLeaseRequester(LeaseTerms(10.0, 4)))
           for origin in origins]
    sim.run(until=2.0)
    assert server.server.active_servings == 2
    assert server.server.refused == 1
    assert server.leases.threads.in_use == 2
    sim.run(until=30.0)
    # After the leases expire, every thread goes back to the pool.
    assert server.leases.threads.in_use == 0


def test_thread_tokens_released_after_probe(sim):
    from repro.core import TiamatInstance
    from repro.tuples import Tuple as T

    net = Network(sim)
    server = TiamatInstance(sim, net, "server", thread_capacity=1)
    origin = TiamatInstance(sim, net, "origin")
    net.visibility.set_visible("server", "origin")
    server.out(T("x", 1))
    for _ in range(3):  # sequential probes reuse the single thread
        op = origin.rdp(Pattern("x", int))
        run_op(sim, op, until=sim.now + 5.0)
        assert op.result is not None
    assert server.leases.threads.in_use == 0
