"""Unit tests for the lease manager (negotiation, accounting, revocation)."""

import pytest

from repro.errors import LeaseRefusedError, LeaseRejectedByRequesterError
from repro.leasing import (
    AcceptAnythingRequester,
    ConservativePolicy,
    DenyAllPolicy,
    GenerousPolicy,
    LeaseManager,
    LeaseState,
    LeaseTerms,
    OperationKind,
    SimpleLeaseRequester,
)
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=2)


def test_negotiate_grants_lease(sim):
    manager = LeaseManager(sim)
    lease = manager.negotiate(SimpleLeaseRequester(LeaseTerms(10)), OperationKind.OUT)
    assert lease.active and lease.terms.duration == 10
    assert manager.grants == 1
    assert manager.active_count == 1


def test_policy_refusal_raises_and_counts(sim):
    manager = LeaseManager(sim, policy=DenyAllPolicy())
    with pytest.raises(LeaseRefusedError):
        manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT)
    assert manager.refusals == 1 and manager.grants == 0


def test_requester_rejection_raises_and_counts(sim):
    manager = LeaseManager(sim, policy=ConservativePolicy(max_duration=5))
    demanding = SimpleLeaseRequester(LeaseTerms(1000), minimum=LeaseTerms(500))
    with pytest.raises(LeaseRejectedByRequesterError):
        manager.negotiate(demanding, OperationKind.RD)
    assert manager.requester_rejections == 1 and manager.active_count == 0


def test_storage_needed_folded_into_request(sim):
    manager = LeaseManager(sim)
    lease = manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT,
                              storage_needed=500)
    assert lease.terms.storage_bytes is not None and lease.terms.storage_bytes >= 500
    assert manager.storage_used == 500


def test_storage_capacity_enforced(sim):
    manager = LeaseManager(sim, storage_capacity=1000)
    manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT, storage_needed=800)
    with pytest.raises(LeaseRefusedError):
        manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT, storage_needed=300)
    assert manager.storage_used == 800


def test_storage_freed_on_lease_end(sim):
    manager = LeaseManager(sim, storage_capacity=1000)
    lease = manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT,
                              storage_needed=800)
    lease.release()
    assert manager.storage_used == 0
    manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT, storage_needed=900)


def test_non_deposit_ops_do_not_commit_storage(sim):
    manager = LeaseManager(sim, storage_capacity=100)
    manager.negotiate(AcceptAnythingRequester(), OperationKind.IN)
    assert manager.storage_used == 0


def test_lease_expires_on_schedule(sim):
    manager = LeaseManager(sim)
    lease = manager.negotiate(SimpleLeaseRequester(LeaseTerms(duration=10)),
                              OperationKind.OUT, storage_needed=100)
    states = []
    lease.on_end(lambda l, s: states.append(s))
    sim.run(until=9.0)
    assert lease.active
    sim.run(until=11.0)
    assert states == [LeaseState.EXPIRED]
    assert manager.expirations == 1
    assert manager.storage_used == 0


def test_released_lease_does_not_also_expire(sim):
    manager = LeaseManager(sim)
    lease = manager.negotiate(SimpleLeaseRequester(LeaseTerms(duration=10)),
                              OperationKind.OUT)
    states = []
    lease.on_end(lambda l, s: states.append(s))
    lease.release()
    sim.run(until=20.0)
    assert states == [LeaseState.RELEASED]
    assert manager.expirations == 0


def test_revoke(sim):
    manager = LeaseManager(sim)
    lease = manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT,
                              storage_needed=100)
    states = []
    lease.on_end(lambda l, s: states.append(s))
    manager.revoke(lease, reason="test")
    assert states == [LeaseState.REVOKED]
    assert manager.revocations == 1
    assert manager.storage_used == 0
    manager.revoke(lease)  # idempotent
    assert manager.revocations == 1


def test_revoke_storage_pressure_reclaims_oldest_first(sim):
    manager = LeaseManager(sim, storage_capacity=10_000)
    leases = [
        manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT,
                          storage_needed=1000)
        for _ in range(5)
    ]
    revoked = manager.revoke_storage_pressure(target_bytes=2500)
    assert [l.lease_id for l in revoked] == [leases[0].lease_id, leases[1].lease_id,
                                             leases[2].lease_id]
    assert manager.storage_used == 2000


def test_usage_snapshot_reflects_state(sim):
    manager = LeaseManager(sim, storage_capacity=1000, thread_capacity=2)
    manager.negotiate(AcceptAnythingRequester(), OperationKind.OUT, storage_needed=500)
    manager.threads.acquire()
    usage = manager.usage()
    assert usage.storage_used == 500
    assert usage.storage_pressure == 0.5
    assert usage.thread_utilisation == 0.5
    assert usage.active_leases == 1


def test_generous_default_policy(sim):
    manager = LeaseManager(sim)
    assert isinstance(manager.policy, GenerousPolicy)
