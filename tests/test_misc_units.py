"""Small-unit coverage: stats, messages, errors, instance edge paths."""


from repro.core import SpaceHandle, TiamatInstance
from repro.errors import (
    LeaseError,
    LeaseExpiredError,
    LeaseRefusedError,
    NetworkError,
    OperationError,
    ProcessInterrupt,
    ReproError,
    SimulationError,
    TupleError,
)
from repro.net import Network
from repro.net.message import Message
from repro.net.stats import NetworkStats, NodeStats
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


# ---------------------------------------------------------------------------
# Error hierarchy
# ---------------------------------------------------------------------------
def test_error_hierarchy():
    assert issubclass(LeaseError, ReproError)
    assert issubclass(LeaseRefusedError, LeaseError)
    assert issubclass(LeaseExpiredError, LeaseError)
    assert issubclass(TupleError, ReproError)
    assert issubclass(NetworkError, ReproError)
    assert issubclass(OperationError, ReproError)
    assert issubclass(SimulationError, ReproError)


def test_process_interrupt_carries_cause():
    interrupt = ProcessInterrupt("battery died")
    assert interrupt.cause == "battery died"
    assert ProcessInterrupt().cause is None


# ---------------------------------------------------------------------------
# Message / stats
# ---------------------------------------------------------------------------
def test_message_kind_and_multicast_flag():
    msg = Message("a", None, {"kind": "discover"}, sent_at=1.0)
    assert msg.kind == "discover" and msg.is_multicast
    msg2 = Message("a", "b", {"no-kind": 1}, sent_at=2.0)
    assert msg2.kind == "?" and not msg2.is_multicast
    assert msg2.size > 0


def test_node_stats_as_dict_and_sent():
    stats = NodeStats()
    stats.sent_unicast = 3
    stats.sent_multicast = 2
    assert stats.sent == 5
    d = stats.as_dict()
    assert d["sent_unicast"] == 3 and d["sent_multicast"] == 2


def test_network_stats_reset():
    stats = NetworkStats()
    stats.record_send("a", 100, multicast=False, kind="q")
    stats.record_receive("b", 100)
    stats.record_drop("a", invisible=True)
    assert stats.total_messages == 1 and stats.total_dropped == 1
    stats.reset()
    assert stats.total_messages == 0
    assert stats.nodes == {}


# ---------------------------------------------------------------------------
# Instance edge paths
# ---------------------------------------------------------------------------
def test_remote_out_duration_is_capped_by_target_default():
    sim = Simulator(seed=51)
    net, inst = build(sim, ["a", "b"])
    event = inst["a"].out_at(SpaceHandle("b"), Tuple("short-lived"),
                             duration=5.0)
    sim.run(until=2.0)
    assert event.value is True
    assert inst["b"].space.count(Pattern("short-lived")) == 1
    sim.run(until=10.0)
    # The 5s duration requested by the origin was honoured at the target.
    assert inst["b"].space.count(Pattern("short-lived")) == 0


def test_relay_does_not_loop_back_through_visited():
    """RELAY_OUT's visited set prevents ping-pong between two relays."""
    sim = Simulator(seed=52)
    net, inst = build(sim, ["src", "r1", "r2"], clique=False)
    net.visibility.set_visible("src", "r1")
    net.visibility.set_visible("r1", "r2")
    # dst does not exist: the tuple must die by ttl/visited, not loop.
    from repro.core import UnavailablePolicy

    how = inst["src"].out_back("ghost-dst", Tuple("r"),
                               policy=UnavailablePolicy.ROUTE)
    assert how == "routed"
    sim.run(until=30.0)
    total_forwards = sum(inst[n].relays_forwarded for n in ("r1", "r2"))
    total_drops = sum(inst[n].relays_dropped for n in ("r1", "r2"))
    assert total_drops >= 1
    assert total_forwards <= 2  # no ping-pong amplification


def test_unknown_message_kind_is_ignored():
    sim = Simulator(seed=53)
    net, inst = build(sim, ["a", "b"])
    net.unicast("a", "b", {"kind": "from-the-future", "x": 1})
    sim.run(until=5.0)  # no exception, instance still works
    inst["b"].out(Tuple("fine"))
    op = inst["b"].rdp(Pattern("fine"))
    assert run_op(sim, op, until=10.0) is not None


def test_eval_with_zero_compute_time():
    sim = Simulator(seed=54)
    net, inst = build(sim, ["a"])
    task = inst["a"].eval(lambda: Tuple("instant"))
    sim.run(until=1.0)
    assert task.result == Tuple("instant")


def test_out_at_handle_equality_semantics():
    assert SpaceHandle("x") == SpaceHandle("x", persistent=True)
    assert SpaceHandle("x") != SpaceHandle("y")
    assert len({SpaceHandle("x"), SpaceHandle("x")}) == 1


def test_instance_repr_and_handle():
    sim = Simulator(seed=55)
    net = Network(sim)
    inst = TiamatInstance(sim, net, "named")
    assert inst.handle().instance_name == "named"
    assert "named" in repr(inst)
