"""Tests for simulation synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Gate, SimResource, SimStore, Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=71)


# ---------------------------------------------------------------------------
# SimResource
# ---------------------------------------------------------------------------
def test_resource_caps_concurrency(sim):
    resource = SimResource(sim, capacity=2)
    active = []
    peak = [0]

    def worker(i):
        token = yield resource.acquire()
        active.append(i)
        peak[0] = max(peak[0], len(active))
        yield sim.timeout(5.0)
        active.remove(i)
        resource.release(token)

    for i in range(6):
        sim.spawn(worker(i))
    sim.run()
    assert peak[0] == 2
    assert sim.now == 15.0  # 6 workers, 2 at a time, 5s each


def test_resource_fifo_fairness(sim):
    resource = SimResource(sim, capacity=1)
    order = []

    def worker(i):
        token = yield resource.acquire()
        order.append(i)
        yield sim.timeout(1.0)
        resource.release(token)

    for i in range(5):
        sim.spawn(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_validation(sim):
    with pytest.raises(SimulationError):
        SimResource(sim, capacity=0)
    resource = SimResource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_queued_count(sim):
    resource = SimResource(sim, capacity=1)
    resource.acquire()
    resource.acquire()
    resource.acquire()
    assert resource.queued == 2


# ---------------------------------------------------------------------------
# SimStore
# ---------------------------------------------------------------------------
def test_store_put_then_get(sim):
    store = SimStore(sim)
    store.put("a")
    store.put("b")
    got = []

    def getter():
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.spawn(getter())
    sim.run()
    assert got == ["a", "b"]
    assert len(store) == 0


def test_store_get_blocks_until_put(sim):
    store = SimStore(sim)
    got = []

    def getter():
        got.append((yield store.get()))

    sim.spawn(getter())
    sim.schedule(5.0, store.put, "late")
    sim.run()
    assert got == ["late"]
    assert sim.now == 5.0


def test_store_getters_fifo(sim):
    store = SimStore(sim)
    got = []

    def getter(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        sim.spawn(getter(i))
    sim.schedule(1.0, store.put, "x")
    sim.schedule(2.0, store.put, "y")
    sim.schedule(3.0, store.put, "z")
    sim.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


# ---------------------------------------------------------------------------
# Gate
# ---------------------------------------------------------------------------
def test_gate_releases_all_waiters(sim):
    gate = Gate(sim)
    released = []

    def waiter(i):
        yield gate.wait()
        released.append(i)

    for i in range(4):
        sim.spawn(waiter(i))
    sim.schedule(3.0, gate.open)
    sim.run()
    assert sorted(released) == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_open_gate_passes_immediately(sim):
    gate = Gate(sim, open_=True)
    passed = []

    def waiter():
        yield gate.wait()
        passed.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert passed == [0.0]


def test_gate_close_rearms(sim):
    gate = Gate(sim)
    log = []

    def phases():
        yield gate.wait()
        log.append(("first", sim.now))
        gate.close()
        yield gate.wait()
        log.append(("second", sim.now))

    sim.spawn(phases())
    sim.schedule(1.0, gate.open)
    sim.schedule(5.0, gate.open)
    sim.run()
    assert log == [("first", 1.0), ("second", 5.0)]
