"""Property + conformance tests for the multi-agent blackboard workload.

Three Hypothesis properties pin the coordination laws of
:mod:`repro.apps.agents`:

* **decomposer** — for random DAGs, :func:`topological_order` is a
  permutation placing every dependency before its dependent, and
  :func:`decompose` only emits orders that satisfy it;
* **exactly-once** — across random crash/revive schedules, no task ever
  records a second completion (the token gate is a safety property), and
  with a quiet tail every task still completes (lease-expiry re-offers
  are a liveness property);
* **consensus agreement** — under adversarial vote interleavings (random
  seeds, rosters and churn), all ``agents.decide`` events for one ballot
  agree on one choice from the ballot's option list.

Plus the portable-engine conformance check: the same tuple vocabulary
driven through ``repro.connect`` completes on all three runtimes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.agents import (
    AgentSwarm,
    SwarmConfig,
    TaskSpec,
    decompose,
    jain_fairness,
    run_handles_session,
    topological_order,
)
from repro.check import probes
from repro.net import Network, VisibilityGraph
from repro.sim import Simulator

# ---------------------------------------------------------------------------
# Decomposer: topological order over random DAGs
# ---------------------------------------------------------------------------


@st.composite
def random_dags(draw):
    """A random forward-edge DAG: each task may depend on earlier tids."""
    n = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for tid in range(n):
        deps = ()
        if tid:
            deps = tuple(sorted(draw(st.sets(
                st.integers(min_value=0, max_value=tid - 1), max_size=3))))
        specs.append(TaskSpec(tid, f"t{tid}", deps))
    # Present them shuffled so order is earned, not inherited.
    return draw(st.permutations(specs))


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_random_dags(specs):
    order = topological_order(specs)
    assert sorted(order) == sorted(spec.tid for spec in specs)
    position = {tid: i for i, tid in enumerate(order)}
    for spec in specs:
        for dep in spec.deps:
            assert position[dep] < position[spec.tid], (dep, spec)


@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=3),
       st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_decompose_emits_topological_order(fanout, depth, rng):
    specs = decompose("root", fanout=fanout, depth=depth, rng=rng)
    assert len(specs) == fanout * depth + 1  # layers + the join task
    seen = set()
    for spec in specs:
        assert all(dep in seen for dep in spec.deps), spec
        seen.add(spec.tid)
    # The join depends on the whole last layer: completing everything else
    # unblocks exactly one task.
    join = specs[-1]
    assert len(join.deps) == fanout or fanout == 1


def test_topological_order_rejects_cycles_and_unknowns():
    with pytest.raises(ValueError):
        topological_order([TaskSpec(0, "a", (1,)), TaskSpec(1, "b", (0,))])
    with pytest.raises(ValueError):
        topological_order([TaskSpec(0, "a", (7,))])


def test_jain_fairness_bounds():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([3, 3, 3]) == pytest.approx(1.0)
    assert jain_fairness([1, 0, 0]) == pytest.approx(1.0 / 3.0)


# ---------------------------------------------------------------------------
# Exactly-once completion across random crash schedules
# ---------------------------------------------------------------------------


def _build_swarm(seed, agents=("w0", "w1", "w2")):
    sim = Simulator(seed=seed)
    vis = VisibilityGraph()
    net = Network(sim, visibility=vis)
    swarm = AgentSwarm(sim, net, vis, agents=agents,
                       config=SwarmConfig(claim_ttl=0.9, reoffer_grace=0.6,
                                          reoffer_poll=0.2, poll=0.05,
                                          work_mean=0.15, op_lease=0.5))
    return sim, swarm


crash_schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),       # victim index
              st.floats(min_value=0.05, max_value=4.0),    # crash at
              st.floats(min_value=0.2, max_value=1.5)),    # downtime
    max_size=4)


@given(st.integers(min_value=0, max_value=10_000), crash_schedules)
@settings(max_examples=15, deadline=None)
def test_exactly_once_completion_under_crashes(seed, crashes):
    sim, swarm = _build_swarm(seed)
    swarm.submit_root("job", fanout=3, depth=1)  # 3 + join = 4 tasks
    names = swarm.agent_names
    for victim, crash_at, downtime in crashes:
        name = names[victim]
        sim.schedule_at(crash_at,
                        lambda name=name: (name in swarm.registry
                                           and swarm.crash_agent(name)))
        sim.schedule_at(crash_at + downtime,
                        lambda name=name: swarm.revive_agent(name))
    swarm.start()
    sim.run(until=25.0)  # quiet tail: all crashes healed by t=6
    swarm.stop()

    # Safety: the completion-token gate forbids duplicates outright.
    assert swarm.stats.duplicates == 0, swarm.stats.done_records
    # Liveness: lease expiry re-offered everything the crashes dropped.
    assert sorted(swarm.completed) == [0, 1, 2, 3], (
        swarm.completed, swarm.stats)


def test_auto_churn_cycles_agents_and_stays_safe():
    """Exponential crash/revive cycling (the T12 churn model): agents
    actually die and come back, and the token gate holds throughout."""
    sim, swarm = _build_swarm(seed=5)
    swarm.submit_root("job", fanout=3, depth=1)
    swarm.auto_churn(mean_uptime=2.0, mean_downtime=0.4)
    swarm.start()
    sim.run(until=30.0)
    swarm.stop()
    assert swarm.stats.crashes > 0
    assert swarm.stats.duplicates == 0, swarm.stats.done_records
    assert swarm.completed, swarm.stats


# ---------------------------------------------------------------------------
# Consensus agreement under adversarial vote interleavings
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=3, max_value=5),
       st.lists(st.floats(min_value=0.0, max_value=2.0),
                min_size=1, max_size=2),
       crash_schedules)
@settings(max_examples=15, deadline=None)
def test_consensus_agreement_adversarial(seed, n_agents, ballot_times,
                                         crashes):
    agents = tuple(f"w{i}" for i in range(n_agents))
    sim, swarm = _build_swarm(seed, agents=agents)
    options = ["alpha", "beta", "gamma"]
    for qid, at in enumerate(ballot_times):
        sim.schedule_at(at, lambda qid=qid: swarm.ask_vote(qid, options))
    for victim, crash_at, downtime in crashes:
        name = agents[victim % n_agents]
        sim.schedule_at(crash_at,
                        lambda name=name: (name in swarm.registry
                                           and swarm.crash_agent(name)))
        sim.schedule_at(crash_at + downtime,
                        lambda name=name: swarm.revive_agent(name))

    decides: list = []
    probes.install(lambda event, fields:
                   decides.append(dict(fields))
                   if event == "agents.decide" else None)
    try:
        swarm.start()
        sim.run(until=20.0)
        swarm.stop()
    finally:
        probes.uninstall()

    # Agreement: every decide event for one ballot names the same choice,
    # and it is one of the ballot's options.
    by_qid: dict = {}
    for fields in decides:
        by_qid.setdefault(fields["question"], set()).add(fields["choice"])
    for qid, choices in by_qid.items():
        assert len(choices) == 1, (qid, choices)
        assert choices <= set(options)
    # Termination: with the quiet tail, every opened ballot decided.
    for qid in range(len(ballot_times)):
        state = swarm.decisions[qid]
        assert state["choice"] is not None, (qid, state)
        assert state["decided_at"] >= state["asked_at"]


# ---------------------------------------------------------------------------
# Portable engine: the same vocabulary through repro.connect
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("runtime", ["sim", "threads", "aio"])
def test_handles_session_runtimes(runtime):
    result = run_handles_session(runtime, agents=3, tasks=6)
    assert result.complete, result
    assert result.duplicates == 0
    assert result.decision in ("alpha", "beta")
    assert sum(result.completed_by.values()) == result.completed
