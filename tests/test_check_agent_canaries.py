"""Agent-workload mutation canaries: the coordination oracles are not
vacuous.

Mirrors ``tests/test_check_canaries.py`` for the two planted bugs in the
multi-agent blackboard (:mod:`repro.apps.agents`):

* ``double_claim`` — agents "claim" with a non-destructive directed read
  of the same offer instead of the exactly-once ``inp``, so two agents
  hold one task at once; caught by the ``claim_exclusivity`` oracle.
* ``split_vote`` — every agent skips the rd-quorum and the decision
  token and decides its ballot unilaterally, so conflicting decisions
  for one question are recorded; caught by the ``quorum_safety`` oracle.

Each must be (a) detected by exploring the ``agent_swarm`` template,
(b) shrunk to a short replayable prefix (≤ 50 kernel events), and
(c) reproducible from the serialized :class:`CheckReport` alone.
"""

import pytest

from repro.check.explorer import run_schedule
from repro.check.shrink import CheckReport, shrink_violation

#: canary name -> oracle expected to catch it
CANARIES = {
    "double_claim": "claim_exclusivity",
    "split_vote": "quorum_safety",
}

SHRUNK_EVENT_BUDGET = 50


def _first_violation(max_seeds=10):
    for seed in range(max_seeds):
        outcome = run_schedule("agent_swarm", seed)
        if not outcome.clean:
            return outcome
    return None


@pytest.mark.parametrize("canary,oracle", sorted(CANARIES.items()))
def test_agent_canary_detected_and_shrunk(monkeypatch, canary, oracle):
    monkeypatch.setenv("REPRO_CHECK_CANARY", canary)
    outcome = _first_violation()
    assert outcome is not None, f"canary {canary!r} went undetected"
    assert outcome.first_violation.oracle == oracle

    report = shrink_violation(outcome)
    assert report.min_events <= SHRUNK_EVENT_BUDGET, (
        f"shrunk trace too long: {report.min_events} events")
    assert report.violation is not None
    assert report.violation["oracle"] == oracle

    # Replayable from the serialized report alone.
    revived = CheckReport.from_json(report.to_json())
    replay = revived.replay()
    assert not replay.clean
    assert replay.first_violation.oracle == oracle
    assert replay.schedule_hash == report.schedule_hash

    # The rendered report is a useful artefact.
    rendered = report.render()
    assert oracle in rendered
    assert str(report.seed) in rendered


@pytest.mark.parametrize("canary", sorted(CANARIES))
def test_agent_canary_off_is_clean(monkeypatch, canary):
    """The planted bugs are entirely env-gated: unset, nothing fires."""
    monkeypatch.delenv("REPRO_CHECK_CANARY", raising=False)
    outcome = run_schedule("agent_swarm", 0)
    assert outcome.clean


def test_agent_canary_is_read_at_construction(monkeypatch):
    """Setting the env var after construction changes nothing."""
    from repro.apps.agents import AgentSwarm
    from repro.net import Network, VisibilityGraph
    from repro.sim import Simulator

    def build():
        sim = Simulator(seed=0)
        vis = VisibilityGraph()
        return AgentSwarm(sim, Network(sim, visibility=vis), vis)

    monkeypatch.delenv("REPRO_CHECK_CANARY", raising=False)
    swarm = build()
    monkeypatch.setenv("REPRO_CHECK_CANARY", "double_claim")
    assert swarm._canary_double_claim is False
    assert build()._canary_double_claim is True
