"""Fuzzing the wire codec: hostile inputs must fail cleanly.

A Tiamat instance decodes patterns and tuples that arrive from arbitrary
remote peers; a malformed frame must raise :class:`SerializationError`
(which the dispatcher can contain), never an arbitrary exception and never
a silently-wrong value.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError, SerializationError
from repro.tuples import decode_pattern, decode_tuple, encode_tuple

# Arbitrary JSON-like structures, the shape of anything a peer could send.
json_like = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-(2**40), max_value=2**40),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=10)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=3)),
    max_leaves=10,
)


@given(json_like)
def test_decode_tuple_never_crashes_unexpectedly(data):
    try:
        tup = decode_tuple(data)
    except SerializationError:
        return  # the contract for malformed input
    # If it decoded, it must re-encode to a stable representation.
    assert decode_tuple(encode_tuple(tup)) == tup


@given(json_like)
def test_decode_pattern_never_crashes_unexpectedly(data):
    try:
        decode_pattern(data)
    except SerializationError:
        return
    except ReproError:
        return  # e.g. an empty-pattern rejection: still a typed error


@given(st.lists(st.one_of(st.text(max_size=3), st.integers()), max_size=5))
def test_decode_tuple_rejects_wrong_tags(fields):
    """Lists whose head is not a known tag must be rejected."""
    try:
        decode_tuple(["zz"] + fields)
    except SerializationError:
        return
    raise AssertionError("unknown tag was accepted")
