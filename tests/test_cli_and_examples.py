"""Smoke tests: the CLI subcommands and every example script run clean."""

import pathlib
import runpy
import sys

import pytest

from repro.cli import build_parser, main

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "bob consumed" in out


def test_cli_demo(capsys):
    assert main(["--seed", "3", "demo", "--nodes", "4",
                 "--duration", "20"]) == 0
    out = capsys.readouterr().out
    assert "success rate" in out


def test_cli_compare(capsys):
    assert main(["compare", "--systems", "tiamat,peers", "--nodes", "4",
                 "--duration", "20"]) == 0
    out = capsys.readouterr().out
    assert "tiamat" in out and "peers" in out


def test_cli_compare_rejects_unknown_system(capsys):
    assert main(["compare", "--systems", "nonsense"]) == 2


def test_cli_trace(capsys):
    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "query_reply" in out
    assert "claim_accept" in out


def test_cli_chaos(capsys):
    assert main(["--seed", "1", "chaos", "--items", "6"]) == 0
    out = capsys.readouterr().out
    assert "power cycle: crashes=1 restarts=1" in out
    assert "drops:" in out
    assert "reliability[client]" in out
    assert "rel_ack" in out  # the sublayer is visible in the trace


def test_cli_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ---------------------------------------------------------------------------
# Examples (run as scripts; they must complete without exceptions)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("script", [
    "quickstart.py",
    "web_proxy_demo.py",
    "fractal_farm.py",
    "pervasive_campus.py",
    "threaded_workers.py",
    "persistence_powercycle.py",
    "service_discovery.py",
])
def test_example_runs_clean(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
