"""The hot-path optimisations must be observationally passive.

Three opt-in fast paths exist: the binary wire codec, frame batching, and
piggybacked reliability acks.  Each changes *how* frames travel, never
*what* operations conclude — this module proves it in the PR-2 passivity
style (run the same seeded workload under both configurations, compare
operation outcomes value by value) and pins down the mechanics:

* batching preserves per-destination FIFO order and coalesces same-tick
  frames into one physical envelope;
* a corrupted batch envelope drops every logical frame it carried;
* piggybacked acks stop retransmissions exactly like dedicated acks;
* the store's scan cache serves hits only while the store is untouched
  (any add/remove/hold/release invalidates) and its counters reconcile;
* ``candidates`` iterates lazily without materialising the bucket.
"""

from __future__ import annotations

from repro.core import TiamatConfig, TiamatInstance
from repro.errors import CodecMismatchError
from repro.net import Network
from repro.net.message import BATCH, Message
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple
from repro.tuples.store import TupleStore


# ---------------------------------------------------------------------------
# Passivity: fast wire paths change no operation outcome
# ---------------------------------------------------------------------------
def _run_workload(fast: bool, seed: int = 11):
    """A mixed destructive/read workload; returns (outcomes, wire stats)."""
    sim = Simulator(seed=seed)
    net = Network(sim, codec="binary" if fast else None, batching=fast)
    config = TiamatConfig(ack_piggyback=fast,
                          wire_codec="binary" if fast else "json")
    names = ["a", "b", "c"]
    inst = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    sim.run(until=1.0)

    for i in range(12):
        inst["b"].out(Tuple("item", i))
        inst["c"].out(Tuple("note", i, float(i)))

    outcomes = []

    def driver():
        for i in range(12):
            op = inst["a"].in_(Pattern("item", int))
            result = yield op.event
            outcomes.append(("in", None if result is None else result.fields,
                             op.source))
            rop = inst["a"].rdp(Pattern("note", i, float))
            rresult = yield rop.event
            outcomes.append(("rdp",
                             None if rresult is None else rresult.fields,
                             rop.source))

    sim.spawn(driver())
    sim.run(until=200.0)
    rel_stats = {n: inst[n].reliability.stats() for n in names}
    return outcomes, {
        "now": sim.now,
        "messages": net.stats.total_messages,
        "bytes": net.stats.total_bytes,
        "rel": rel_stats,
        "tuples_left": {n: inst[n].space.count() for n in names},
    }


def test_fast_wire_paths_are_outcome_passive():
    base_outcomes, base_stats = _run_workload(fast=False)
    fast_outcomes, fast_stats = _run_workload(fast=True)
    # Bit-identical operation outcomes: same values, same sources, same order.
    assert base_outcomes == fast_outcomes
    assert len(base_outcomes) == 24
    assert all(r is not None for _, r, _ in base_outcomes)
    # Same residual state...
    assert base_stats["tuples_left"] == fast_stats["tuples_left"]
    # ...for strictly less wire: piggybacked acks replace dedicated frames.
    assert fast_stats["messages"] < base_stats["messages"]
    assert fast_stats["bytes"] < base_stats["bytes"]
    saved = sum(s["acks_piggybacked"] for s in fast_stats["rel"].values())
    assert saved > 0
    assert all(s["acks_piggybacked"] == 0 for s in base_stats["rel"].values())


def test_wire_codec_config_must_match_network():
    import pytest

    sim = Simulator(seed=0)
    net = Network(sim)                       # JSON-priced network
    with pytest.raises(ValueError, match="wire_codec"):
        TiamatInstance(sim, net, "x", config=TiamatConfig(wire_codec="binary"))
    # The check is symmetric (the old default-config leniency is gone): a
    # json config on a binary network is the same deployment error, and
    # every runtime raises the one shared CodecMismatchError.
    bnet = Network(Simulator(seed=0), codec="binary")
    with pytest.raises(CodecMismatchError, match="wire_codec"):
        TiamatInstance(bnet.sim, bnet, "z", config=TiamatConfig())
    # Matching codecs on both sides are fine.
    TiamatInstance(bnet.sim, bnet, "y", config=TiamatConfig(wire_codec="binary"))


def test_reliability_counters_balance_under_piggyback():
    _, stats = _run_workload(fast=True)
    for node_stats in stats["rel"].values():
        # Every reliable frame got acknowledged; nothing expired or pends.
        assert node_stats["acked"] == node_stats["sent"]
        assert node_stats["expired"] == 0
        assert node_stats["pending"] == 0


# ---------------------------------------------------------------------------
# Batching mechanics
# ---------------------------------------------------------------------------
def _batch_net(seed: int = 3):
    sim = Simulator(seed=seed)
    net = Network(sim, batching=True)
    return sim, net


def test_batching_coalesces_same_tick_frames():
    sim, net = _batch_net()
    got = []
    net.attach("dst", lambda m: got.append(m.payload["i"]))
    iface = net.attach("src", lambda m: None)
    net.visibility.set_visible("src", "dst", True)
    sim.run(until=0.1)
    for i in range(6):
        iface.unicast("dst", {"kind": "x", "i": i})
    sim.run(until=1.0)
    assert got == list(range(6))            # FIFO preserved
    assert net.batch_envelopes == 1         # one physical frame...
    assert net.batched_frames == 6          # ...carrying six logical ones
    assert net.stats.total_messages == 1


def test_batching_separates_destinations_and_ticks():
    sim, net = _batch_net()
    got = {"d1": [], "d2": []}
    net.attach("d1", lambda m: got["d1"].append(m.payload["i"]))
    net.attach("d2", lambda m: got["d2"].append(m.payload["i"]))
    iface = net.attach("src", lambda m: None)
    for d in ("d1", "d2"):
        net.visibility.set_visible("src", d, True)
    sim.run(until=0.1)

    def tick(offset, base):
        iface.unicast("d1", {"kind": "x", "i": base})
        iface.unicast("d1", {"kind": "x", "i": base + 1})
        iface.unicast("d2", {"kind": "x", "i": base + 2})

    sim.schedule(0.0, tick, 0, 0)
    sim.schedule(0.5, tick, 1, 10)
    sim.run(until=2.0)
    assert got["d1"] == [0, 1, 10, 11]
    assert got["d2"] == [2, 12]
    # d1 got two 2-frame envelopes; d2's singletons fly unwrapped.
    assert net.batch_envelopes == 2
    assert net.batched_frames == 4


def test_single_frame_ticks_are_not_enveloped():
    sim, net = _batch_net()
    kinds = []
    net.attach("dst", lambda m: kinds.append(m.kind))
    iface = net.attach("src", lambda m: None)
    net.visibility.set_visible("src", "dst", True)
    sim.run(until=0.1)
    iface.unicast("dst", {"kind": "solo"})
    sim.run(until=1.0)
    assert kinds == ["solo"]
    assert net.batch_envelopes == 0


def test_corrupt_envelope_drops_all_logical_frames():
    sim, net = _batch_net()
    delivered = []
    dropped = []
    net.attach("dst", lambda m: delivered.append(m.payload.get("i")))
    iface = net.attach("src", lambda m: None)
    net.visibility.set_visible("src", "dst", True)
    net.on_drop(lambda m, reason: dropped.append((m.payload.get("i"), reason)))
    original_dispatch = net._dispatch

    def corrupting_dispatch(message, notify=True):
        if message.is_batch:
            message.corrupt()
        return original_dispatch(message, notify=notify)

    net._dispatch = corrupting_dispatch
    sim.run(until=0.1)
    iface.unicast("dst", {"kind": "x", "i": 0})
    iface.unicast("dst", {"kind": "x", "i": 1})
    sim.run(until=1.0)
    assert delivered == []
    assert [reason for _, reason in dropped] == ["corrupt"]


def test_sub_frames_are_priced_individually():
    sim = Simulator(seed=0)
    net = Network(sim, codec="binary")
    envelope = Message("a", "b", {"kind": BATCH, "frames": [
        {"kind": "x", "i": 1}, {"kind": "y", "i": 2}]},
        sent_at=0.0, codec=net.codec)
    sub = Message.sub_frame(envelope, {"kind": "x", "i": 1})
    assert sub.size == net.codec.encoded_size({"kind": "x", "i": 1})
    assert sub.size < envelope.size
    assert sub.verify()  # checksum-exempt: the envelope was verified


# ---------------------------------------------------------------------------
# Scan cache + lazy candidates
# ---------------------------------------------------------------------------
def test_scan_cache_hit_returns_equal_results():
    store = TupleStore()
    for i in range(50):
        store.add(Tuple("job", i))
    p = Pattern("job", int)
    first = store.find_all(p)
    second = store.find_all(p)
    assert [e.entry_id for e in first] == [e.entry_id for e in second]
    assert store.scan_cache_hits == 1
    assert store.scan_cache_misses == 1


def test_scan_cache_invalidation_on_every_mutation():
    store = TupleStore()
    e0 = store.add(Tuple("job", 0))
    p = Pattern("job", int)

    def misses_after(mutate):
        store.find_all(p)           # ensure the cache is populated
        mutate()
        before = store.scan_cache_misses
        store.find_all(p)           # must re-scan, not hit
        return store.scan_cache_misses - before

    assert misses_after(lambda: store.add(Tuple("job", 1))) == 1
    assert misses_after(lambda: store.hold(e0.entry_id)) == 1
    assert misses_after(lambda: store.release(e0.entry_id)) == 1
    assert misses_after(lambda: store.remove(e0.entry_id)) == 1
    # Held entries never leak out of a cached result.
    e1 = store.find(p)
    store.hold(e1.entry_id)
    assert all(x.entry_id != e1.entry_id for x in store.find_all(p))


def test_scan_counters_reconcile():
    store = TupleStore()
    for i in range(20):
        store.add(Tuple("t", i))
    p = Pattern("t", int)
    for _ in range(5):
        store.find(p)
    assert store.scans == store.scan_cache_hits + store.scan_cache_misses == 5
    # Hits examine nothing; the one miss examined the full bucket.
    assert store.entries_scanned == 20


def test_scan_cache_capped():
    store = TupleStore()
    store.add(Tuple("x", 1))
    for i in range(TupleStore.SCAN_CACHE_MAX * 2):
        store.find(Pattern("x", i))
    assert len(store._scan_cache) <= TupleStore.SCAN_CACHE_MAX


def test_mutating_cached_result_does_not_corrupt_cache():
    store = TupleStore()
    for i in range(10):
        store.add(Tuple("j", i))
    p = Pattern("j", int)
    first = store.find_all(p)
    first.reverse()                      # caller mangles its copy
    again = store.find_all(p)            # cache hit
    assert [e.entry_id for e in again] == sorted(e.entry_id for e in again)
    assert store.find(p).entry_id == again[0].entry_id


def test_candidates_iterates_lazily():
    store = TupleStore()
    for i in range(1000):
        store.add(Tuple("big", i))
    gen = store.candidates(Pattern("big", int))
    first = next(gen)
    assert first.tuple[1] == 0
    # Laziness: nothing was materialised; closing mid-way is free and the
    # scan counters are untouched until a full _scan runs.
    gen.close()
    assert store.scans == 0
    # snapshot=True tolerates mutation-during-iteration.
    seen = 0
    for entry in store.candidates(Pattern("big", int), snapshot=True):
        store.remove(entry.entry_id)
        seen += 1
    assert seen == 1000
    assert len(store) == 0


def test_scan_observer_sees_zero_on_hits():
    store = TupleStore()
    lengths = []
    store.scan_observer = lengths.append
    for i in range(7):
        store.add(Tuple("w", i))
    p = Pattern("w", int)
    store.find(p)
    store.find(p)
    assert lengths == [7, 0]
