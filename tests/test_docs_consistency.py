"""Documentation hygiene: docs, code, and suites stay in sync."""

import importlib
import pathlib
import pkgutil

import repro

ROOT = pathlib.Path(__file__).parent.parent


def iter_modules():
    """Every importable module in the repro package."""
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules()
               if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_export_exists():
    for module in iter_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists " \
                                          f"missing name {name!r}"


def test_readme_lists_every_benchmark():
    readme = (ROOT / "README.md").read_text()
    bench_files = sorted(p.stem for p in (ROOT / "benchmarks").glob("test_*.py"))
    missing = [b for b in bench_files if b not in readme]
    assert not missing, f"benches absent from README: {missing}"


def test_design_covers_every_benchmark():
    design = (ROOT / "DESIGN.md").read_text()
    bench_files = sorted(p.name for p in (ROOT / "benchmarks").glob("test_*.py"))
    missing = [b for b in bench_files if b not in design]
    assert not missing, f"benches absent from DESIGN.md index: {missing}"


def test_readme_lists_every_example():
    readme = (ROOT / "README.md").read_text()
    examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
    missing = [e for e in examples if e not in readme]
    assert not missing, f"examples absent from README: {missing}"


def test_experiments_covers_every_reproduction_bench():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    bench_files = sorted(
        p.stem for p in (ROOT / "benchmarks").glob("test_*.py")
        if p.stem != "test_micro_ops"  # explicitly not a paper figure
    )
    missing = [b for b in bench_files if b not in experiments]
    assert not missing, f"benches absent from EXPERIMENTS.md: {missing}"


def test_required_documents_exist():
    for path in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/PROTOCOL.md", "docs/SIMULATION.md", "docs/API.md"):
        assert (ROOT / path).exists(), f"missing {path}"
