"""Tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry (families, labels, histograms, callbacks,
exposition formats), the causal tracer (span trees across instances,
retransmit/drop attribution, chrome export), kernel profiling, and —
crucially — observational passivity: telemetry must not perturb the
simulation it watches.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import TiamatConfig, TiamatInstance
from repro.errors import LeaseError
from repro.leasing import DenyAllPolicy, LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    Observability,
    Tracer,
)
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
def test_counter_inc_and_labels():
    reg = MetricsRegistry()
    fam = reg.counter("frames_total", "frames", labels=("node",))
    fam.labels(node="a").inc()
    fam.labels(node="a").inc(2)
    fam.labels(node="b").inc()
    snap = reg.snapshot()["frames_total"]
    assert snap["kind"] == "counter"
    by_node = {s["labels"]["node"]: s["value"] for s in snap["samples"]}
    assert by_node == {"a": 3, "b": 1}


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    gauge = reg.gauge("pending")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    [sample] = reg.snapshot()["pending"]["samples"]
    assert sample["value"] == 4


def test_histogram_buckets_cumulative_and_inf():
    reg = MetricsRegistry()
    hist = reg.histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    [sample] = reg.snapshot()["latency"]["samples"]
    assert sample["count"] == 4
    assert sample["sum"] == pytest.approx(55.55)
    # Cumulative counts, +Inf last and equal to the total count.
    assert sample["buckets"]["0.1"] == 1
    assert sample["buckets"]["1"] == 2      # integral bounds render bare
    assert sample["buckets"]["10"] == 3
    assert sample["buckets"]["+Inf"] == 4


def test_callback_families_and_key_dedup():
    reg = MetricsRegistry()
    state = {"x": 1}
    reg.callback("resident", lambda: [((), state["x"])], key="comp")
    # Re-registering under the same key replaces, not duplicates.
    reg.callback("resident", lambda: [((), state["x"] * 10)], key="comp")
    state["x"] = 7
    [sample] = reg.snapshot()["resident"]["samples"]
    assert sample["value"] == 70  # live read through the *latest* callback


def test_family_redeclaration_rules():
    reg = MetricsRegistry()
    first = reg.counter("ops", labels=("node",))
    assert reg.counter("ops", labels=("node",)) is first
    with pytest.raises(ValueError):
        reg.gauge("ops", labels=("node",))
    with pytest.raises(ValueError):
        reg.counter("ops", labels=("other",))


def test_render_prometheus_format():
    reg = MetricsRegistry()
    reg.counter("hits_total", "how many", labels=("node",)).labels(
        node='we"ird\n\\').inc()
    reg.histogram("wait", buckets=(1.0,)).observe(0.5)
    text = reg.render_prometheus()
    assert "# HELP hits_total how many" in text
    assert "# TYPE hits_total counter" in text
    # Label values are escaped per the exposition format.
    assert 'node="we\\"ird\\n\\\\"' in text
    assert 'wait_bucket{le="1"} 1' in text
    assert 'wait_bucket{le="+Inf"} 1' in text
    assert "wait_sum 0.5" in text
    assert "wait_count 1" in text
    assert text.endswith("\n")


def test_snapshot_is_json_serialisable():
    reg = MetricsRegistry()
    reg.counter("a", labels=("x",)).labels(x=1).inc()
    reg.histogram("b", buckets=DEFAULT_COUNT_BUCKETS).observe(3)
    round_tripped = json.loads(json.dumps(reg.snapshot()))
    assert round_tripped["a"]["samples"][0]["labels"] == {"x": "1"}


def test_thread_safe_registry_under_contention():
    reg = MetricsRegistry(thread_safe=True)
    counter = reg.counter("n", labels=("t",))

    def worker(tag):
        child = counter.labels(t=tag)
        for _ in range(1000):
            child.inc()

    threads = [threading.Thread(target=worker, args=(str(i % 2),))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(s["value"] for s in reg.snapshot()["n"]["samples"])
    assert total == 4000


# ---------------------------------------------------------------------------
# Kernel integration: sim.obs, stack instrumentation, profiling
# ---------------------------------------------------------------------------
def test_sim_obs_registry_collects_stack_metrics():
    sim = Simulator(seed=11)
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("item", 1))
    run_op(sim, inst["a"].in_(Pattern("item", int)), until=20.0)
    snap = sim.obs.registry.snapshot()
    # Kernel counters advanced with the run.
    [events] = snap["sim_events_processed_total"]["samples"]
    assert events["value"] > 0
    [now] = snap["sim_virtual_time_seconds"]["samples"]
    assert now["value"] == sim.now
    # Network accounting matches the live stats object (samples are
    # labelled (node, cast), so sum across all of them).
    sent = sum(s["value"]
               for s in snap["net_frames_sent_total"]["samples"])
    assert sent == net.stats.total_messages
    # Core op accounting saw the remote satisfaction.
    ops = {(s["labels"]["node"], s["labels"]["state"]): s["value"]
           for s in snap["core_ops_total"]["samples"]}
    assert ops[("a", "started")] == 1
    assert ops[("a", "satisfied_remote")] == 1
    # Space-level counters exist for both instances.
    resident = {s["labels"]["space"]: s["value"]
                for s in snap["tuples_resident"]["samples"]}
    assert set(resident) >= {"a", "b"}


def test_lease_refusal_counted():
    sim = Simulator(seed=12)
    net = Network(sim)
    deny = TiamatInstance(sim, net, "deny", policy=DenyAllPolicy())
    with pytest.raises(LeaseError):
        deny.rdp(Pattern("x"))
    snap = sim.obs.registry.snapshot()
    events = {(s["labels"]["node"], s["labels"]["event"]): s["value"]
              for s in snap["lease_events_total"]["samples"]}
    assert events[("deny", "refusal")] >= 1


def test_kernel_profiling_populates_handler_profile():
    sim = Simulator(seed=13)
    assert not sim.profiling
    sim.enable_profiling()
    net, inst = build(sim, ["a"])
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    assert sim.handler_profile, "profiling recorded no handlers"
    for label, (calls, seconds) in sim.handler_profile.items():
        assert calls > 0 and seconds >= 0.0
    snap = sim.obs.registry.snapshot()
    profiled = sum(s["value"]
                   for s in snap["sim_handler_calls_total"]["samples"])
    assert profiled == sum(c for c, _ in sim.handler_profile.values())
    sim.disable_profiling()
    assert not sim.profiling


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def test_tracer_local_op_span():
    sim = Simulator(seed=21)
    net, inst = build(sim, ["a"])
    tracer = sim.obs.start_trace(net)
    inst["a"].out(Tuple("x", 1))
    op = inst["a"].rdp(Pattern("x", int))
    run_op(sim, op, until=5.0)
    events = [e.event for e in tracer.events_for(op.op_id)]
    assert events[0] == "op_start"
    assert events[-1] == "op_end"
    tree = tracer.span_tree(op.op_id)
    assert tree["origin"] == "a"
    assert tree["outcome"] == "satisfied"
    assert tree["peers"] == []


def _chaos_run(seed, traced=True):
    """A distributed destructive-in workload under 5% i.i.d. loss."""
    sim = Simulator(seed=seed)
    net = Network(sim, loss_rate=0.05)
    server = TiamatInstance(sim, net, "server",
                            config=TiamatConfig(claim_timeout=3.0))
    client = TiamatInstance(sim, net, "client",
                            config=TiamatConfig(claim_timeout=3.0))
    net.visibility.set_visible("server", "client")
    tracer = sim.obs.start_trace(net) if traced else None
    for i in range(10):
        server.out(Tuple("item", i),
                   requester=SimpleLeaseRequester(LeaseTerms(duration=500.0)))
    ops = []
    consumed = []

    def scenario():
        for i in range(10):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=15.0, max_remotes=8)))
            ops.append(op)
            result = yield op.event
            if result is not None:
                consumed.append(i)

    sim.spawn(scenario())
    sim.run(until=400.0)
    return sim, net, tracer, ops, consumed


def test_tracer_distributed_in_under_loss():
    """Acceptance: a lossy distributed in() is traceable end-to-end."""
    sim, net, tracer, ops, consumed = _chaos_run(seed=2024)
    assert len(consumed) >= 8  # reliability keeps the workload productive
    # At least one op's span tree spans both instances AND shows the
    # adversity (a retransmit or a dropped frame) that the sublayer hid.
    full = [op.op_id for op in ops
            if len(tracer.instances_for(op.op_id)) >= 2
            and (tracer.retransmits_for(op.op_id)
                 or tracer.drops_for(op.op_id))]
    assert full, "no traced op recorded both peers and adversity"
    op_id = full[0]
    tree = tracer.span_tree(op_id)
    assert tree["origin"] == "client"
    assert any(p["peer"] == "server" for p in tree["peers"])
    # The waterfall renders every captured event for the op.
    text = tracer.waterfall(op_id)
    assert f"op {op_id}" in text
    assert "server" in text


def test_tracer_chrome_export_round_trips():
    sim, net, tracer, ops, consumed = _chaos_run(seed=2024)
    raw = tracer.chrome_trace(ops[0].op_id)
    doc = json.loads(raw)
    events = doc["traceEvents"]
    assert any(e["ph"] == "X" for e in events)        # spans
    assert any(e["ph"] == "i" for e in events)        # instants
    assert any(e["ph"] == "M" for e in events)        # metadata
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "client" in names
    # The full-capture export parses too and covers every op.
    full = json.loads(tracer.chrome_trace())
    pids = {e["pid"] for e in full["traceEvents"]}
    assert len(pids) == len(tracer.op_ids())


def test_tracer_detach_stops_capture():
    sim = Simulator(seed=23)
    net, inst = build(sim, ["a", "b"])
    tracer = sim.obs.start_trace(net)
    inst["b"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rd(Pattern("x", int)), until=10.0)
    seen = len(tracer)
    assert seen > 0
    assert sim.obs.stop_trace() is tracer
    assert sim.obs.tracer is None
    run_op(sim, inst["a"].rd(Pattern("x", int)), until=20.0)
    assert len(tracer) == seen


def test_tracer_max_events_truncates():
    sim = Simulator(seed=24)
    tracer = Tracer(clock=lambda: sim.now, max_events=3)
    for i in range(5):
        tracer.note(f"op#{i}", "a", "tick")
    assert len(tracer) == 3
    assert tracer.truncated == 2


# ---------------------------------------------------------------------------
# Passivity: telemetry must not perturb the simulation
# ---------------------------------------------------------------------------
def test_observation_is_passive():
    """Same seed, with and without tracer+profiling: identical outcome."""
    results = []
    for traced in (False, True):
        sim, net, tracer, ops, consumed = _chaos_run(seed=77, traced=traced)
        if traced:
            sim.enable_profiling()
        results.append((sim.now, net.stats.total_messages,
                        net.stats.total_dropped, tuple(consumed)))
    assert results[0] == results[1]


def test_observability_hub_standalone():
    """The hub works off any clock, independent of a Simulator."""
    obs = Observability(clock=lambda: 42.0, thread_safe=True)
    obs.registry.counter("x").inc()
    tracer = obs.start_trace()
    tracer.note("op#1", "n", "hello")
    assert tracer.events[0].time == 42.0
    assert obs.stop_trace() is tracer
