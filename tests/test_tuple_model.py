"""Unit tests for tuples, patterns, and field specs."""

import pytest

from repro.errors import MalformedPatternError, MalformedTupleError
from repro.tuples import ANY, Actual, Formal, Pattern, Range, Tuple


# ---------------------------------------------------------------------------
# Tuple construction
# ---------------------------------------------------------------------------
def test_tuple_fields_and_arity():
    t = Tuple("req", 42, 2.5)
    assert t.fields == ("req", 42, 2.5)
    assert t.arity == len(t) == 3
    assert t[0] == "req" and list(t) == ["req", 42, 2.5]


def test_tuple_signature():
    assert Tuple("a", 1, 1.0, b"x", True).signature == ("str", "int", "float", "bytes", "bool")


def test_nested_tuple_allowed():
    inner = Tuple("point", 1, 2)
    outer = Tuple("wrap", inner)
    assert outer[1] == inner
    assert outer.signature == ("str", "Tuple")


def test_empty_tuple_rejected():
    with pytest.raises(MalformedTupleError):
        Tuple()


def test_unsupported_field_type_rejected():
    with pytest.raises(MalformedTupleError):
        Tuple("x", [1, 2, 3])
    with pytest.raises(MalformedTupleError):
        Tuple("x", None)
    with pytest.raises(MalformedTupleError):
        Tuple("x", {"k": "v"})


def test_tuple_equality_and_hash():
    assert Tuple("a", 1) == Tuple("a", 1)
    assert Tuple("a", 1) != Tuple("a", 2)
    assert hash(Tuple("a", 1)) == hash(Tuple("a", 1))
    assert len({Tuple("a", 1), Tuple("a", 1), Tuple("b", 2)}) == 2


def test_tuple_of_iterable():
    assert Tuple.of(["x", 7]) == Tuple("x", 7)


def test_tuple_repr_roundtrips_visually():
    assert repr(Tuple("a", 1)) == "Tuple('a', 1)"


# ---------------------------------------------------------------------------
# Field specs
# ---------------------------------------------------------------------------
def test_actual_admits_equal_value_only():
    assert Actual(5).admits(5)
    assert not Actual(5).admits(6)
    assert not Actual("5").admits(5)


def test_actual_is_type_strict():
    assert not Actual(1).admits(True)   # bool is not int here
    assert not Actual(True).admits(1)
    assert not Actual(1.0).admits(1)
    assert not Actual(1).admits(1.0)


def test_formal_admits_exact_type():
    assert Formal(int).admits(7)
    assert not Formal(int).admits(7.0)
    assert not Formal(int).admits(True)
    assert Formal(bool).admits(False)
    assert Formal(str).admits("s")
    assert Formal(bytes).admits(b"s")
    assert Formal(Tuple).admits(Tuple("x"))


def test_formal_rejects_unknown_types():
    with pytest.raises(MalformedPatternError):
        Formal(list)
    with pytest.raises(MalformedPatternError):
        Formal(dict)


def test_any_admits_everything():
    for value in (True, 0, 1.5, "s", b"b", Tuple("t")):
        assert ANY.admits(value)


def test_range_bounds():
    r = Range(1, 5)
    assert r.admits(1) and r.admits(5) and r.admits(3.2)
    assert not r.admits(0) and not r.admits(6)
    assert not r.admits("3")
    assert not r.admits(True)  # bools are not numbers for matching purposes


def test_range_open_ended():
    assert Range(lo=10).admits(1_000_000)
    assert not Range(lo=10).admits(9)
    assert Range(hi=10).admits(-5)
    assert not Range(hi=10).admits(11)


def test_range_validation():
    with pytest.raises(MalformedPatternError):
        Range()
    with pytest.raises(MalformedPatternError):
        Range(5, 1)


def test_spec_equality():
    assert Actual(1) == Actual(1)
    assert Actual(1) != Actual(True)
    assert Formal(int) == Formal(int) != Formal(float)
    assert Range(1, 2) == Range(1, 2) != Range(1, 3)


# ---------------------------------------------------------------------------
# Pattern construction sugar
# ---------------------------------------------------------------------------
def test_pattern_sugar_coercion():
    p = Pattern("req", int, ANY, Range(0, 1))
    assert isinstance(p.specs[0], Actual)
    assert isinstance(p.specs[1], Formal)
    assert p.specs[2] is ANY
    assert isinstance(p.specs[3], Range)
    assert p.arity == 4


def test_pattern_rejects_bare_callable():
    with pytest.raises(MalformedPatternError):
        Pattern("x", lambda v: v > 0)


def test_empty_pattern_rejected():
    with pytest.raises(MalformedPatternError):
        Pattern()


def test_pattern_for_tuple_is_fully_actual():
    t = Tuple("a", 1)
    p = Pattern.for_tuple(t)
    assert all(isinstance(s, Actual) for s in p.specs)


def test_pattern_first_actual():
    assert Pattern(int, "tag", str).first_actual() == (1, "tag")
    assert Pattern(int, str).first_actual() is None


def test_pattern_equality_and_hash():
    assert Pattern("a", int) == Pattern("a", int)
    assert Pattern("a", int) != Pattern("a", float)
    assert hash(Pattern("a", int)) == hash(Pattern("a", int))
