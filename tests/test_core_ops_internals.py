"""Tests for origin-side operation internals: budgets, refunds, cancels."""

import pytest

from repro.core import TiamatConfig
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=23)


def test_failed_send_refunds_remote_budget(sim):
    """Contacting an invisible peer is not a 'remote instance contacted'."""
    net, inst = build(sim, ["origin", "up", "down"], clique=False)
    net.visibility.set_visible("origin", "up")
    # Seed the known list with a peer that then disappears entirely.
    inst["origin"].comms.note_alive("down")
    inst["origin"].comms.note_alive("up")
    inst["up"].out(Tuple("x"))
    op = inst["origin"].rdp(
        Pattern("x"),
        requester=SimpleLeaseRequester(LeaseTerms(duration=10.0, max_remotes=1)))
    result = run_op(sim, op, until=15.0)
    # Budget of 1: the dead peer must not consume it.
    assert result == Tuple("x")
    assert op.contacted == ["up"]
    assert op.lease.remotes_used == 1


def test_dead_peer_removed_from_known_list(sim):
    net, inst = build(sim, ["origin", "dead"], clique=False)
    inst["origin"].comms.note_alive("dead")
    op = inst["origin"].rdp(Pattern("x"))
    run_op(sim, op, until=10.0)
    assert "dead" not in inst["origin"].comms.plan()


def test_operation_cancel(sim):
    net, inst = build(sim, ["origin", "peer"])
    op = inst["origin"].in_(Pattern("never"))
    sim.run(until=1.0)
    op.cancel()
    assert op.done and op.result is None
    assert not op.lease.active
    sim.run(until=5.0)
    assert inst["peer"].server.active_servings == 0


def test_finalize_releases_lease_exactly_once(sim):
    net, inst = build(sim, ["a"])
    inst["a"].out(Tuple("x"))
    op = inst["a"].rdp(Pattern("x"))
    run_op(sim, op, until=5.0)
    from repro.leasing import LeaseState

    assert op.lease.state is LeaseState.RELEASED
    op.cancel()  # idempotent: already done
    assert op.lease.state is LeaseState.RELEASED


def test_probe_sequential_contact_stops_at_first_hit(sim):
    """Peers after the satisfying one in the list are never contacted."""
    names = ["origin", "p0", "p1", "p2", "p3"]
    net, inst = build(sim, names)
    comms = inst["origin"].comms
    for p in ("p0", "p1", "p2", "p3"):
        comms.note_alive(p)
    inst["p1"].out(Tuple("goal"))
    op = inst["origin"].rdp(Pattern("goal"))
    assert run_op(sim, op, until=10.0) == Tuple("goal")
    assert op.contacted == ["p0", "p1"]


def test_blocking_op_contacts_all_known_peers(sim):
    names = ["origin", "p0", "p1", "p2"]
    net, inst = build(sim, names)
    comms = inst["origin"].comms
    for p in ("p0", "p1", "p2"):
        comms.note_alive(p)
    op = inst["origin"].in_(Pattern("eventually"),
                            requester=SimpleLeaseRequester(LeaseTerms(5.0, 8)))
    sim.run(until=1.0)
    assert sorted(op.contacted) == ["p0", "p1", "p2"]
    sim.run(until=10.0)


def test_blocking_op_respects_remote_budget(sim):
    names = ["origin"] + [f"p{i}" for i in range(6)]
    net, inst = build(sim, names)
    for i in range(6):
        inst["origin"].comms.note_alive(f"p{i}")
    op = inst["origin"].in_(Pattern("never"),
                            requester=SimpleLeaseRequester(LeaseTerms(3.0, 2)))
    sim.run(until=1.0)
    assert len(op.contacted) == 2
    sim.run(until=10.0)


def test_continuous_mode_budget_still_enforced(sim):
    config = TiamatConfig(propagate_mode="continuous")
    net, inst = build(sim, ["origin", "a", "b", "c"], config=config,
                      clique=False)
    op = inst["origin"].in_(Pattern("never"),
                            requester=SimpleLeaseRequester(LeaseTerms(20.0, 1)))
    sim.run(until=1.0)
    for peer, t in (("a", 2.0), ("b", 3.0), ("c", 4.0)):
        sim.schedule_at(t, net.visibility.set_visible, "origin", peer, True)
    sim.run(until=10.0)
    assert len(op.contacted) == 1  # budget of one remote contact
    sim.run(until=30.0)


def test_two_competing_ins_from_same_node(sim):
    net, inst = build(sim, ["origin", "holder"])
    inst["holder"].out(Tuple("single"))
    op1 = inst["origin"].in_(Pattern("single"),
                             requester=SimpleLeaseRequester(LeaseTerms(5.0, 4)))
    op2 = inst["origin"].in_(Pattern("single"),
                             requester=SimpleLeaseRequester(LeaseTerms(5.0, 4)))
    sim.run(until=20.0)
    winners = [op for op in (op1, op2) if op.result is not None]
    assert len(winners) == 1
    assert inst["holder"].space.count(Pattern("single")) == 0


def test_out_lease_revocation_reclaims_tuple(sim):
    net, inst = build(sim, ["a"])
    entry = inst["a"].out(Tuple("revocable"))
    lease = entry.meta["lease"]
    assert inst["a"].space.count(Pattern("revocable")) == 1
    inst["a"].leases.revoke(lease, reason="pressure")
    assert inst["a"].space.count(Pattern("revocable")) == 0


def test_consumed_tuple_releases_out_lease_early(sim):
    net, inst = build(sim, ["a"])
    entry = inst["a"].out(Tuple("quick"))
    lease = entry.meta["lease"]
    op = inst["a"].inp(Pattern("quick"))
    run_op(sim, op, until=5.0)
    from repro.leasing import LeaseState

    assert lease.state is LeaseState.RELEASED
    assert inst["a"].leases.storage_used == 0


def test_ops_registry_is_purged(sim):
    net, inst = build(sim, ["a"])
    inst["a"].out(Tuple("x"))
    op = inst["a"].rdp(Pattern("x"))
    run_op(sim, op, until=5.0)
    sim.run(until=60.0)
    assert op.op_id not in inst["a"]._ops


def test_stats_classification(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("local"))
    inst["b"].out(Tuple("remote"))
    run_op(sim, inst["a"].rdp(Pattern("local")), until=5.0)
    run_op(sim, inst["a"].rdp(Pattern("remote")), until=10.0)
    op = inst["a"].rdp(Pattern("missing"))
    run_op(sim, op, until=20.0)
    assert inst["a"].ops_satisfied_local == 1
    assert inst["a"].ops_satisfied_remote == 1
    assert inst["a"].ops_unsatisfied == 1
    assert inst["a"].ops_started == 3


def test_shutdown_detaches_instance(sim):
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("x"))
    inst["b"].shutdown()
    op = inst["a"].rdp(Pattern("x"))
    assert run_op(sim, op, until=10.0) is None
