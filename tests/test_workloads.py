"""Tests for the synthetic request/response workload and system builders."""

import pytest

from repro.apps import RequestResponseWorkload
from repro.bench import SYSTEMS, build_system, clique_names


def test_clique_names():
    assert clique_names(3) == ["n0", "n1", "n2"]
    assert clique_names(2, prefix="x") == ["x0", "x1"]


def test_build_system_unknown_rejected():
    with pytest.raises(ValueError):
        build_system("nonsense", 3)


@pytest.mark.parametrize("system", SYSTEMS)
def test_every_system_runs_the_workload(system):
    sim, network, nodes = build_system(system, 4, seed=9)
    sim.run(until=5.0)  # let LIME engagements / discovery settle
    workload = RequestResponseWorkload(sim, nodes, sim.rng("wl"),
                                       period=2.0, op_timeout=8.0)
    workload.start(duration=40.0)
    sim.run(until=80.0)
    stats = workload.stats
    assert stats.produced > 0
    assert stats.consume_attempts > 0
    # Every fully connected, churn-free system should satisfy a decent
    # fraction of consumes (items are eventually addressed to everyone).
    assert stats.success_rate > 0.3, (
        f"{system}: success_rate={stats.success_rate:.2f} "
        f"({stats.consumed}/{stats.consume_attempts})"
    )


def test_workload_counts_timeouts():
    sim, network, nodes = build_system("tiamat", 2, seed=1)
    # Disconnect everyone: all cross-node consumes must time out.
    network.visibility.isolate("n0")
    network.visibility.isolate("n1")
    workload = RequestResponseWorkload(sim, nodes, sim.rng("wl"),
                                       period=2.0, op_timeout=3.0)
    workload.start(duration=20.0)
    sim.run(until=60.0)
    assert workload.stats.timeouts > 0
    # Some self-addressed items may still be consumed locally... but items
    # are always addressed to *other* nodes, so nothing can succeed.
    assert workload.stats.consumed == 0
