"""Unit tests for named random streams (reproducibility guarantees)."""

from repro.sim import RngStream, Simulator


def test_same_seed_same_sequence():
    a, b = RngStream(42), RngStream(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a, b = RngStream(1), RngStream(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_children_are_independent_of_parent_draws():
    parent1 = RngStream(7)
    child_before = parent1.child("net")
    seq_before = [child_before.random() for _ in range(5)]

    parent2 = RngStream(7)
    for _ in range(100):  # extra parent draws must not shift the child stream
        parent2.random()
    child_after = parent2.child("net")
    seq_after = [child_after.random() for _ in range(5)]
    assert seq_before == seq_after


def test_sibling_streams_differ():
    parent = RngStream(7)
    a, b = parent.child("mobility"), parent.child("loss")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_simulator_rng_is_cached_by_name():
    sim = Simulator(seed=3)
    assert sim.rng("x") is sim.rng("x")
    assert sim.rng("x") is not sim.rng("y")


def test_simulator_rng_reproducible_across_instances():
    draws1 = [Simulator(seed=5).rng("w").random() for _ in range(1)]
    draws2 = [Simulator(seed=5).rng("w").random() for _ in range(1)]
    assert draws1 == draws2


def test_draw_methods_cover_ranges():
    rng = RngStream(9)
    assert 0 <= rng.randint(0, 10) <= 10
    assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0
    assert rng.choice(["a"]) == "a"
    assert sorted(rng.sample(range(10), 3))[0] >= 0
    assert rng.expovariate(2.0) >= 0.0
    items = list(range(10))
    rng.shuffle(items)
    assert sorted(items) == list(range(10))
