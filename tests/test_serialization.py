"""Unit and round-trip property tests for the wire codec."""

import pytest
from hypothesis import given

from repro.errors import SerializationError
from repro.tuples import (
    ANY,
    Actual,
    Formal,
    Pattern,
    Range,
    Tuple,
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
    encoded_size,
    matches,
)
from tests.test_matching import tuples as tuples_strategy


def test_tuple_roundtrip_simple():
    t = Tuple("req", 42, 2.5, b"\x00\xff", True)
    assert decode_tuple(encode_tuple(t)) == t


def test_tuple_roundtrip_nested():
    t = Tuple("wrap", Tuple("inner", Tuple("deep", 1)))
    assert decode_tuple(encode_tuple(t)) == t


def test_bool_int_distinction_survives_roundtrip():
    t1, t2 = Tuple("x", 1), Tuple("x", True)
    d1, d2 = decode_tuple(encode_tuple(t1)), decode_tuple(encode_tuple(t2))
    assert type(d1[1]) is int and type(d2[1]) is bool


def test_pattern_roundtrip_all_spec_kinds():
    p = Pattern(Actual("tag"), Formal(int), ANY, Range(0.0, 1.0), Formal(Tuple))
    assert decode_pattern(encode_pattern(p)) == p


def test_pattern_roundtrip_open_range():
    p = Pattern("x", Range(lo=5))
    assert decode_pattern(encode_pattern(p)) == p


def test_decode_rejects_garbage():
    with pytest.raises(SerializationError):
        decode_tuple(["?", 1])
    with pytest.raises(SerializationError):
        decode_tuple("not-a-list")
    with pytest.raises(SerializationError):
        decode_tuple(["s", "a-bare-field-not-a-tuple"])
    with pytest.raises(SerializationError):
        decode_pattern(["p"])
    with pytest.raises(SerializationError):
        decode_pattern(["p", [["F", "list"]]])
    with pytest.raises(SerializationError):
        decode_pattern(["p", [["?"]]])


def test_encoded_size_counts_bytes():
    small = encoded_size(Tuple("x"))
    large = encoded_size(Tuple("x", "y" * 1000))
    assert 0 < small < large
    assert large > 1000


def test_encoded_size_of_pattern_and_raw_payload():
    assert encoded_size(Pattern("x", int)) > 0
    assert encoded_size({"op": "query"}) > 0
    with pytest.raises(SerializationError):
        encoded_size({"bad": object()})


@given(tuples_strategy)
def test_tuple_roundtrip_property(tup):
    decoded = decode_tuple(encode_tuple(tup))
    assert decoded == tup
    assert decoded.signature == tup.signature


@given(tuples_strategy)
def test_roundtrip_preserves_matching(tup):
    """A decoded tuple must match exactly the patterns the original matched."""
    decoded = decode_tuple(encode_tuple(tup))
    pattern = Pattern.for_tuple(tup)
    wire_pattern = decode_pattern(encode_pattern(pattern))
    assert matches(wire_pattern, decoded)
