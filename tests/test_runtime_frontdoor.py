"""``repro.connect``: one front door, three runtimes, one contract.

The v1.2 API redesign routes every runtime behind
``repro.connect(runtime=...)``; these tests pin the dispatch table, the
shared Protocol contract, and the deprecation shims that keep the old
entry points importable (and warning) through the transition.
"""

import warnings

import pytest

import repro
from repro.core.config import TiamatConfig
from repro.runtime.api import (
    AioRuntime,
    SimRuntime,
    ThreadsRuntime,
    TiamatNodeHandle,
    TiamatRuntime,
    connect,
)
from repro.tuples.model import Pattern, Tuple

pytestmark = pytest.mark.timeout(120)

RUNTIME_KINDS = ["sim", "threads", "aio"]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def test_connect_is_exported_at_top_level():
    assert repro.connect is connect
    assert "connect" in repro.__all__
    assert "TiamatRuntime" in repro.__all__
    assert "TiamatNodeHandle" in repro.__all__


@pytest.mark.parametrize("kind,cls", [
    ("sim", SimRuntime), ("threads", ThreadsRuntime), ("aio", AioRuntime)])
def test_connect_dispatches_by_kind(kind, cls):
    with connect(runtime=kind) as rt:
        assert isinstance(rt, cls)
        assert rt.kind == kind
        assert isinstance(rt, TiamatRuntime)


def test_connect_defaults_to_sim():
    with connect() as rt:
        assert rt.kind == "sim"


def test_unknown_runtime_is_rejected():
    with pytest.raises(ValueError, match="unknown runtime"):
        connect(runtime="carrier-pigeon")


def test_connect_threads_config_flows_through():
    config = TiamatConfig(wire_codec="json")
    with connect(runtime="aio", config=config) as rt:
        assert rt.registry.codec.name == "json"


# ----------------------------------------------------------------------
# One behavioural contract across all three runtimes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", RUNTIME_KINDS)
def test_common_contract_out_read_take(kind):
    with connect(runtime=kind) as rt:
        a = rt.node("a")
        b = rt.node("b")
        rt.set_visible("a", "b")
        assert isinstance(a, TiamatNodeHandle)
        b.out(Tuple("shared", 1))
        a.out(Tuple("mine", 2))
        # local and remote reads through the identical facade
        assert a.rdp(Pattern("mine", int)) == Tuple("mine", 2)
        assert a.rdp(Pattern("shared", int)) == Tuple("shared", 1)
        assert a.inp(Pattern("shared", int)) == Tuple("shared", 1)
        assert a.rdp(Pattern("shared", int)) is None
        assert a.inp(Pattern("absent", str)) is None


@pytest.mark.parametrize("kind", RUNTIME_KINDS)
def test_common_contract_blocking_timeout(kind):
    with connect(runtime=kind) as rt:
        a = rt.node("a")
        assert a.rd(Pattern("never", int), timeout=0.2) is None
        assert a.in_(Pattern("never", int), timeout=0.2) is None


@pytest.mark.parametrize("kind", RUNTIME_KINDS)
def test_common_contract_eval_deposits(kind):
    with connect(runtime=kind) as rt:
        a = rt.node("a")
        a.eval(lambda: Tuple("made", 7))
        # eval's return shape is runtime-specific (see API.md); the
        # contract is the deposited result, observable via blocking read
        assert a.rd(Pattern("made", int), timeout=10.0) == Tuple("made", 7)


def test_runtime_protocols_are_runtime_checkable():
    with connect(runtime="sim") as rt:
        assert isinstance(rt, TiamatRuntime)
        assert isinstance(rt.node("n"), TiamatNodeHandle)
        assert not isinstance(object(), TiamatRuntime)


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
def test_create_instance_warns_but_works():
    from repro.net.network import Network
    from repro.net.visibility import VisibilityGraph
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=0)
    network = Network(sim, visibility=VisibilityGraph())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        instance = repro.create_instance(sim, network, "legacy")
    assert any(issubclass(w.category, DeprecationWarning) and
               "repro.connect" in str(w.message) for w in caught)
    assert instance.name == "legacy"


def test_runtime_package_reexports_warn():
    import repro.runtime as runtime_pkg
    for legacy in ("ThreadedTiamatNode", "ThreadedNodeRegistry"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obj = getattr(runtime_pkg, legacy)
        assert obj is not None
        assert any(issubclass(w.category, DeprecationWarning) and
                   "repro.runtime.node" in str(w.message) for w in caught)


def test_legacy_names_still_fully_functional():
    """The shim hands back the real classes — old code keeps running."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.runtime import ThreadedNodeRegistry, ThreadedTiamatNode
    registry = ThreadedNodeRegistry()
    node = ThreadedTiamatNode(registry, "legacy")
    node.out(Tuple("old", 1))
    assert node.inp(Pattern("old", int)) == Tuple("old", 1)


def test_runtime_package_rejects_unknown_attribute():
    import repro.runtime as runtime_pkg
    with pytest.raises(AttributeError):
        runtime_pkg.NoSuchThing
