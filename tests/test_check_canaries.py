"""Mutation canaries: prove the checker's oracles are not vacuous.

Each of the three intentionally planted bugs (``REPRO_CHECK_CANARY``)
must be (a) detected by schedule exploration, (b) shrunk to a short
replayable event prefix (≤ 50 kernel events), and (c) reproducible from
the emitted :class:`~repro.check.shrink.CheckReport` alone.
"""

import pytest

from repro.check.explorer import Explorer, run_schedule
from repro.check.shrink import CheckReport, shrink_violation

#: canary name -> oracle expected to catch it
CANARIES = {
    "ghost": "ghost_read",
    "double_take": "exactly_once",
    "lease_leak": "lease_conservation",
}

SHRUNK_EVENT_BUDGET = 50


def _first_violation(max_seeds=10):
    for seed in range(max_seeds):
        outcome = run_schedule("contended_take", seed)
        if not outcome.clean:
            return outcome
    return None


@pytest.mark.parametrize("canary,oracle", sorted(CANARIES.items()))
def test_canary_detected_and_shrunk(monkeypatch, canary, oracle):
    monkeypatch.setenv("REPRO_CHECK_CANARY", canary)
    outcome = _first_violation()
    assert outcome is not None, f"canary {canary!r} went undetected"
    assert outcome.first_violation.oracle == oracle

    report = shrink_violation(outcome)
    assert report.min_events <= SHRUNK_EVENT_BUDGET, (
        f"shrunk trace too long: {report.min_events} events")
    assert report.violation is not None
    assert report.violation["oracle"] == oracle

    # Replayable from the serialized report alone.
    revived = CheckReport.from_json(report.to_json())
    replay = revived.replay()
    assert not replay.clean
    assert replay.first_violation.oracle == oracle
    assert replay.schedule_hash == report.schedule_hash

    # The rendered report is a useful artefact.
    rendered = report.render()
    assert oracle in rendered
    assert str(report.seed) in rendered


@pytest.mark.parametrize("canary", sorted(CANARIES))
def test_canary_off_is_clean(monkeypatch, canary):
    """The planted bugs are entirely env-gated: unset, nothing fires."""
    monkeypatch.delenv("REPRO_CHECK_CANARY", raising=False)
    outcome = run_schedule("contended_take", 0)
    assert outcome.clean


def test_explorer_reports_canary(monkeypatch):
    """End-to-end: the explorer itself detects, shrinks, and reports."""
    monkeypatch.setenv("REPRO_CHECK_CANARY", "double_take")
    result = Explorer(templates=["contended_take"]).run(schedules=5)
    assert not result.clean
    report = result.reports[0]
    assert report.violation["oracle"] == "exactly_once"
    assert report.min_events <= SHRUNK_EVENT_BUDGET
    assert "VIOLATION" in result.summary()


def test_canary_is_read_at_construction(monkeypatch):
    """Setting the env var after construction changes nothing."""
    from repro.tuples.store import TupleStore

    monkeypatch.delenv("REPRO_CHECK_CANARY", raising=False)
    store = TupleStore()
    monkeypatch.setenv("REPRO_CHECK_CANARY", "ghost")
    assert store._canary_ghost is False
    assert TupleStore()._canary_ghost is True
