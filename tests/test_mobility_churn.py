"""Unit tests for mobility models, range-visibility driver, and churn."""

import pytest

from repro.net import (
    ChurnInjector,
    Position,
    RandomWaypointMobility,
    RangeVisibilityDriver,
    StaticPlacement,
    VisibilityGraph,
    WaypointTrace,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Position & static placement
# ---------------------------------------------------------------------------
def test_position_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


def test_static_placement_grid():
    placement = StaticPlacement.grid(["a", "b", "c", "d"], spacing=10.0)
    assert placement.position_of("a") == Position(0, 0)
    assert placement.position_of("b") == Position(10, 0)
    assert placement.position_of("c") == Position(0, 10)
    assert sorted(placement.nodes()) == ["a", "b", "c", "d"]


def test_static_placement_never_moves():
    placement = StaticPlacement({"a": Position(1, 2)})
    placement.advance(100.0)
    assert placement.position_of("a") == Position(1, 2)


# ---------------------------------------------------------------------------
# Random waypoint
# ---------------------------------------------------------------------------
def test_random_waypoint_stays_in_area():
    sim = Simulator(seed=1)
    model = RandomWaypointMobility(sim.rng("mob"), width=100, height=50,
                                   speed_min=1, speed_max=5, pause=1.0)
    for i in range(5):
        model.add_node(f"n{i}")
    for _ in range(200):
        model.advance(1.0)
        for node in model.nodes():
            pos = model.position_of(node)
            assert 0 <= pos.x <= 100 and 0 <= pos.y <= 50


def test_random_waypoint_actually_moves():
    sim = Simulator(seed=2)
    model = RandomWaypointMobility(sim.rng("mob"), width=100, height=100, pause=0.1)
    model.add_node("n")
    start = model.position_of("n")
    model.advance(30.0)
    assert model.position_of("n").distance_to(start) > 0


def test_random_waypoint_is_reproducible():
    def trajectory(seed):
        sim = Simulator(seed=seed)
        model = RandomWaypointMobility(sim.rng("mob"), 100, 100)
        model.add_node("n")
        points = []
        for _ in range(10):
            model.advance(2.0)
            p = model.position_of("n")
            points.append((p.x, p.y))
        return points

    assert trajectory(7) == trajectory(7)
    assert trajectory(7) != trajectory(8)


# ---------------------------------------------------------------------------
# Waypoint traces
# ---------------------------------------------------------------------------
def test_trace_interpolates():
    trace = WaypointTrace()
    trace.add_keyframe("n", 0.0, 0, 0)
    trace.add_keyframe("n", 10.0, 100, 0)
    trace.advance(5.0)
    assert trace.position_of("n") == Position(50, 0)


def test_trace_holds_outside_keyframes():
    trace = WaypointTrace()
    trace.add_keyframe("n", 5.0, 10, 10)
    trace.add_keyframe("n", 6.0, 20, 20)
    assert trace.position_of("n") == Position(10, 10)  # before first
    trace.advance(100.0)
    assert trace.position_of("n") == Position(20, 20)  # after last


def test_trace_rejects_unordered_keyframes():
    trace = WaypointTrace()
    trace.add_keyframe("n", 5.0, 0, 0)
    with pytest.raises(ValueError):
        trace.add_keyframe("n", 1.0, 0, 0)


def test_trace_unknown_node():
    assert WaypointTrace().position_of("ghost") is None


# ---------------------------------------------------------------------------
# Range visibility driver
# ---------------------------------------------------------------------------
def test_driver_initial_sync():
    sim = Simulator()
    graph = VisibilityGraph()
    placement = StaticPlacement({"a": Position(0, 0), "b": Position(5, 0),
                                 "c": Position(100, 0)})
    driver = RangeVisibilityDriver(sim, graph, placement, radio_range=10.0)
    driver.start()
    assert graph.visible("a", "b")
    assert not graph.visible("a", "c")


def test_driver_tracks_movement():
    sim = Simulator()
    graph = VisibilityGraph()
    trace = WaypointTrace()
    trace.add_keyframe("a", 0.0, 0, 0)
    trace.add_keyframe("a", 100.0, 0, 0)  # a stays put
    trace.add_keyframe("b", 0.0, 50, 0)
    trace.add_keyframe("b", 10.0, 0, 0)   # b walks to a
    trace.add_keyframe("b", 20.0, 50, 0)  # and away again
    driver = RangeVisibilityDriver(sim, graph, trace, radio_range=10.0, tick=1.0)
    driver.start()
    assert not graph.visible("a", "b")
    sim.run(until=10.0)
    assert graph.visible("a", "b")
    sim.run(until=20.0)
    assert not graph.visible("a", "b")
    driver.stop()


def test_driver_fires_edge_listeners_once_per_transition():
    sim = Simulator()
    graph = VisibilityGraph()
    transitions = []
    graph.on_edge_change(lambda a, b, v: transitions.append(v))
    trace = WaypointTrace()
    trace.add_keyframe("a", 0.0, 0, 0)
    trace.add_keyframe("b", 0.0, 5, 0)
    trace.add_keyframe("b", 50.0, 5, 0)
    driver = RangeVisibilityDriver(sim, graph, trace, radio_range=10.0, tick=1.0)
    driver.start()
    sim.run(until=30.0)
    assert transitions == [True]  # in range the whole time: one transition


# ---------------------------------------------------------------------------
# Churn
# ---------------------------------------------------------------------------
def test_scripted_kill_and_revive():
    sim = Simulator()
    graph = VisibilityGraph()
    graph.set_visible("a", "b")
    churn = ChurnInjector(sim, graph)
    churn.kill_at("a", 5.0)
    churn.revive_at("a", 10.0)
    sim.run(until=6.0)
    assert not graph.is_up("a")
    sim.run(until=11.0)
    assert graph.is_up("a")
    assert churn.downs == 1 and churn.ups == 1


def test_immediate_kill():
    sim = Simulator()
    graph = VisibilityGraph()
    graph.add_node("a")
    ChurnInjector(sim, graph).kill("a")
    assert not graph.is_up("a")


def test_auto_churn_cycles():
    sim = Simulator(seed=3)
    graph = VisibilityGraph()
    graph.add_node("a")
    churn = ChurnInjector(sim, graph)
    churn.auto_churn("a", mean_uptime=5.0, mean_downtime=5.0)
    sim.run(until=500.0)
    assert churn.downs > 5 and churn.ups > 5
    assert abs(churn.downs - churn.ups) <= 1


def test_auto_churn_validation():
    sim = Simulator()
    churn = ChurnInjector(sim, VisibilityGraph())
    with pytest.raises(ValueError):
        churn.auto_churn("a", mean_uptime=0, mean_downtime=5)


def test_stop_auto_churn():
    sim = Simulator(seed=3)
    graph = VisibilityGraph()
    graph.add_node("a")
    churn = ChurnInjector(sim, graph)
    churn.auto_churn("a", mean_uptime=5.0, mean_downtime=5.0)
    sim.run(until=50.0)
    churn.stop_auto_churn("a")
    flips = churn.downs + churn.ups
    sim.run(until=500.0)
    assert churn.downs + churn.ups == flips
