"""The model checker's oracle layer: unit shadows + exploration smoke."""

import pytest

from repro.check import probes
from repro.check.explorer import (
    TEMPLATES,
    Explorer,
    Perturbations,
    run_schedule,
)
from repro.check.oracles import (
    ExactlyOnceOracle,
    GhostReadOracle,
    InvariantMonitor,
    LeaseConservationOracle,
    RefusalVocabularyOracle,
    ReliabilityNoDupOracle,
    Violation,
)
from repro.tuples import Tuple


# ----------------------------------------------------------------------
# Probe plumbing
# ----------------------------------------------------------------------
def test_probe_sink_install_is_exclusive():
    events = []
    probes.install(lambda event, fields: events.append(event))
    try:
        with pytest.raises(RuntimeError):
            probes.install(lambda event, fields: None)
        probes.emit("x", a=1)
        assert events == ["x"]
    finally:
        probes.uninstall()
    probes.uninstall()  # idempotent
    probes.emit("y")    # no sink: silently dropped
    assert events == ["x"]


def test_canary_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_CANARY", raising=False)
    assert not probes.canary(probes.CANARY_GHOST)
    monkeypatch.setenv("REPRO_CHECK_CANARY", "ghost")
    assert probes.canary(probes.CANARY_GHOST)
    assert not probes.canary(probes.CANARY_DOUBLE_TAKE)


def test_probes_are_observationally_passive():
    """With and without a sink, a seeded run is bit-identical.

    This is the checker's licence to exist: probe sites cost one module
    attribute load when unmonitored and never perturb behaviour when
    monitored.
    """
    for template in sorted(TEMPLATES):
        monitored = run_schedule(template, 11)
        unmonitored = run_schedule(template, 11, monitored=False)
        assert monitored.schedule_hash == unmonitored.schedule_hash
        assert monitored.events == unmonitored.events
        assert monitored.probe_events > 0  # the sink actually saw traffic


# ----------------------------------------------------------------------
# Oracle shadows, driven synthetically
# ----------------------------------------------------------------------
def _monitor(oracle):
    return InvariantMonitor(sim=None, oracles=[oracle],
                            stop_on_violation=False)


def test_exactly_once_oracle_flags_double_consume():
    monitor = _monitor(ExactlyOnceOracle())
    tup = Tuple("job", 1)
    monitor("space.deposit", {"space": "a", "tup": tup})
    monitor("space.consume", {"space": "a", "tup": tup})
    assert not monitor.violations
    monitor("space.consume", {"space": "b", "tup": tup})
    assert len(monitor.violations) == 1
    assert monitor.violations[0].oracle == "exactly_once"


def test_exactly_once_oracle_allows_duplicate_values():
    monitor = _monitor(ExactlyOnceOracle())
    tup = Tuple("job", 1)
    for _ in range(2):  # a genuine multiset: two identical deposits
        monitor("space.deposit", {"space": "a", "tup": tup})
    for _ in range(2):
        monitor("space.consume", {"space": "a", "tup": tup})
    assert not monitor.violations


def test_ghost_read_oracle_flags_match_after_remove():
    monitor = _monitor(GhostReadOracle())
    monitor("store.add", {"store": 1, "entry": 7})
    monitor("store.match", {"store": 1, "entry": 7})
    monitor("store.remove", {"store": 1, "entry": 7})
    assert not monitor.violations
    monitor("store.match", {"store": 1, "entry": 7})
    assert len(monitor.violations) == 1
    assert monitor.violations[0].oracle == "ghost_read"
    # same entry id in a different store is a different entry
    monitor2 = _monitor(GhostReadOracle())
    monitor2("store.add", {"store": 2, "entry": 7})
    monitor2("store.match", {"store": 2, "entry": 7})
    assert not monitor2.violations


def test_lease_conservation_oracle_flags_leak():
    monitor = _monitor(LeaseConservationOracle())
    monitor("lease.granted", {"manager": 1, "lease": 1, "op": "rdp",
                              "active_count": 1})
    monitor("lease.granted", {"manager": 1, "lease": 2, "op": "out",
                              "active_count": 2})
    monitor("lease.ended", {"manager": 1, "lease": 1, "state": "released",
                            "active_count": 1})
    assert not monitor.violations
    # A leak: the manager claims 1 active after both leases ended.
    monitor("lease.ended", {"manager": 1, "lease": 2, "state": "expired",
                            "active_count": 1})
    assert len(monitor.violations) == 1
    assert "conservation" in monitor.violations[0].detail


def test_lease_conservation_oracle_flags_double_end_and_unknown():
    monitor = _monitor(LeaseConservationOracle())
    monitor("lease.granted", {"manager": 1, "lease": 1, "op": "in",
                              "active_count": 1})
    monitor("lease.ended", {"manager": 1, "lease": 1, "state": "released",
                            "active_count": 0})
    monitor("lease.ended", {"manager": 1, "lease": 1, "state": "revoked",
                            "active_count": 0})
    assert any("ended twice" in v.detail for v in monitor.violations)
    monitor("lease.ended", {"manager": 1, "lease": 99, "state": "expired",
                            "active_count": 0})
    assert any("never granted" in v.detail for v in monitor.violations)


def test_refusal_vocabulary_oracle_closure():
    from repro.core.admission import ALL_REFUSAL_REASONS

    monitor = _monitor(RefusalVocabularyOracle())
    for reason in sorted(ALL_REFUSAL_REASONS):
        monitor("serving.refusal", {"node": "a", "op_id": "a#1",
                                    "reason": reason})
        monitor("admission.shed", {"reason": reason, "retry_after": 0.1})
    assert not monitor.violations
    monitor("serving.refusal", {"node": "a", "op_id": "a#2",
                                "reason": "mystery_meat"})
    assert len(monitor.violations) == 1
    assert monitor.violations[0].oracle == "refusal_vocabulary"


def test_reliability_no_dup_oracle():
    monitor = _monitor(ReliabilityNoDupOracle())
    monitor("rel.dispatch", {"src": "a", "dst": "b", "epoch": 1, "seq": 4})
    monitor("rel.dispatch", {"src": "a", "dst": "b", "epoch": 1, "seq": 5})
    monitor("rel.dispatch", {"src": "b", "dst": "a", "epoch": 1, "seq": 4})
    assert not monitor.violations
    monitor("rel.dispatch", {"src": "a", "dst": "b", "epoch": 1, "seq": 4})
    assert len(monitor.violations) == 1
    assert monitor.violations[0].oracle == "reliability_no_dup"


def test_violation_to_dict_roundtrip_fields():
    violation = Violation("ghost_read", "boo", 17, "store.match")
    data = violation.to_dict()
    assert data == {"oracle": "ghost_read", "detail": "boo",
                    "event_index": 17, "probe": "store.match"}


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------
def test_run_schedule_is_deterministic_per_seed():
    a = run_schedule("contended_take", 5)
    b = run_schedule("contended_take", 5)
    assert a.schedule_hash == b.schedule_hash
    assert a.events == b.events
    # different seeds explore different schedules
    c = run_schedule("contended_take", 6)
    assert c.schedule_hash != a.schedule_hash


def test_run_schedule_prefix_is_consistent():
    full = run_schedule("lease_storm", 2)
    prefix = run_schedule("lease_storm", 2, max_events=40)
    assert prefix.events == 40 < full.events


def test_perturbation_ablation_layers():
    perturb = Perturbations()
    assert perturb.enabled() == ["tiebreak", "faults", "churn"]
    ablated = perturb.without("faults")
    assert ablated.enabled() == ["tiebreak", "churn"]
    assert perturb.faults  # original untouched
    assert Perturbations.from_dict(ablated.to_dict()).enabled() == (
        ablated.enabled())


def test_tiebreak_layer_changes_schedules():
    noisy = run_schedule("contended_take", 4)
    fifo = run_schedule("contended_take", 4,
                        Perturbations(tiebreak=False, faults=True,
                                      churn=True))
    assert noisy.schedule_hash != fifo.schedule_hash


def test_unknown_template_rejected():
    with pytest.raises(ValueError):
        run_schedule("no_such_template", 0)
    with pytest.raises(ValueError):
        Explorer(templates=["no_such_template"])


def test_explorer_smoke_clean_on_main():
    result = Explorer().run(schedules=12)
    assert result.schedules_run == 12
    assert result.clean, [r.headline() for r in result.reports]
    assert set(result.per_template) == set(TEMPLATES)
    assert result.schedules_per_second > 0
    assert "CLEAN" in result.summary()
