"""Tests for the section 5 monitoring/adaptation extension."""

import pytest

from repro.core import (
    AppMonitor,
    ConflictResolver,
    LeaseTuner,
    RtsMonitor,
    TiamatInstance,
)
from repro.core.monitoring import NeighborRecord
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

from tests.test_core_instance import build, run_op


@pytest.fixture()
def sim():
    return Simulator(seed=91)


# ---------------------------------------------------------------------------
# RtsMonitor (5.2 / 5.3)
# ---------------------------------------------------------------------------
def test_rts_monitor_tracks_sessions(sim):
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me", stable_session=10.0)
    net.visibility.set_visible("me", "peer")
    sim.run(until=5.0)
    assert monitor.stability_of("peer") == 5.0
    assert monitor.classify("peer") == "mobile"
    sim.run(until=20.0)
    assert monitor.classify("peer") == "stable"
    net.visibility.set_visible("me", "peer", False)
    assert monitor.stability_of("peer") == 0.0
    assert monitor.records["peer"].sessions == 1


def test_rts_monitor_availability(sim):
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me")
    net.visibility.set_visible("me", "flaky")
    sim.run(until=10.0)
    net.visibility.set_visible("me", "flaky", False)
    sim.run(until=20.0)
    # Visible 10 of 20 seconds.
    assert monitor.availability_of("flaky") == pytest.approx(0.5, abs=0.05)
    assert monitor.availability_of("stranger") == 0.0


def test_rts_monitor_stable_neighbors_ranking(sim):
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me", stable_session=5.0)
    net.visibility.set_visible("me", "old")
    sim.run(until=10.0)
    net.visibility.set_visible("me", "young")
    sim.run(until=16.0)
    assert monitor.stable_neighbors() == ["old", "young"]


def test_rts_monitor_ignores_unrelated_edges(sim):
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me")
    net.visibility.set_visible("x", "y")
    assert monitor.records == {}


def test_neighbor_record_availability_zero_window():
    """A zero (or negative) observation window yields 0.0, not a div error."""
    record = NeighborRecord()
    record.total_visible = 5.0
    assert record.availability(now=10.0, window=0.0) == 0.0
    assert record.availability(now=10.0, window=-1.0) == 0.0


def test_rts_monitor_availability_at_start_instant(sim):
    """availability_of at the exact start time (elapsed == 0) is safe."""
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me")
    net.visibility.set_visible("me", "peer")
    # No time has elapsed since the monitor started observing.
    assert monitor.availability_of("peer") == 0.0


def test_rts_monitor_close_unsubscribes(sim):
    net = Network(sim)
    net.visibility.add_node("me")
    monitor = RtsMonitor(sim, net, "me")
    monitor.close()
    net.visibility.set_visible("me", "peer")
    assert "peer" not in monitor.records


# ---------------------------------------------------------------------------
# AppMonitor (5.4)
# ---------------------------------------------------------------------------
def test_app_monitor_attach_records_ops(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    run_op(sim, inst["a"].rdp(Pattern("y", int)), until=10.0)
    assert monitor.op_mix["rdp"] == 2
    assert monitor.success_rate(Pattern("x", int)) == 1.0
    assert monitor.success_rate(Pattern("y", int)) == 0.0
    assert 0.0 < monitor.success_rate() < 1.0


def test_app_monitor_success_rate_no_data_vs_all_failed(sim):
    """0.0 from *no data* and 0.0 from *all failures* are both reachable."""
    monitor = AppMonitor(sim)
    # No operations observed at all: no data.
    assert monitor.success_rate() == 0.0
    # An op that started but never finished is still "no data".
    monitor.observe("rd", Pattern("pending"))
    assert monitor.success_rate() == 0.0
    # All finished ops failed: genuinely zero success.
    failed = monitor.observe("inp", Pattern("gone"))
    monitor.resolve(failed, False)
    assert monitor.success_rate() == 0.0
    assert monitor.success_rate(Pattern("gone")) == 0.0
    # One success flips the aggregate away from zero.
    won = monitor.observe("inp", Pattern("gone"))
    monitor.resolve(won, True)
    assert monitor.success_rate(Pattern("gone")) == 0.5


def test_app_monitor_attach_is_idempotent(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    wrapped = inst["a"]._start_op
    monitor.attach(inst["a"])  # second attach must be a no-op
    assert inst["a"]._start_op is wrapped
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    # The op is recorded exactly once despite the double attach.
    assert monitor.op_mix["rdp"] == 1


def test_app_monitor_detach_restores_and_stops_recording(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    monitor.detach(inst["a"])
    # The instance override is gone: back to the plain class method.
    assert "_start_op" not in vars(inst["a"])
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=10.0)
    # History from before detach is retained; nothing new is recorded.
    assert monitor.op_mix["rdp"] == 1
    # Detaching twice (or an instance never attached) is a no-op.
    monitor.detach(inst["a"])
    assert "_start_op" not in vars(inst["a"])


def test_app_monitor_stacked_monitors_detach_safely(sim):
    """Detaching a monitor buried under another leaves the chain intact."""
    net, inst = build(sim, ["a"])
    inner = AppMonitor(sim)
    outer = AppMonitor(sim)
    inner.attach(inst["a"])
    outer.attach(inst["a"])
    # inner's wrapper is no longer the installed one, so detach must not
    # clobber outer's hook.
    top = inst["a"]._start_op
    inner.detach(inst["a"])
    assert inst["a"]._start_op is top
    inst["a"].out(Tuple("x", 1))
    run_op(sim, inst["a"].rdp(Pattern("x", int)), until=5.0)
    assert outer.op_mix["rdp"] == 1


def test_app_monitor_latency_and_hot_patterns(sim):
    net, inst = build(sim, ["a", "b"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    inst["b"].out(Tuple("remote", 1))
    run_op(sim, inst["a"].rd(Pattern("remote", int)), until=10.0)
    latency = monitor.mean_match_latency(Pattern("remote", int))
    assert latency is not None and latency > 0.0
    assert monitor.mean_match_latency(Pattern("never")) is None
    for _ in range(3):
        run_op(sim, inst["a"].rdp(Pattern("remote", int)), until=sim.now + 5.0)
    assert monitor.hot_patterns(top=1)[0][0] == 2  # arity of the hot pattern


# ---------------------------------------------------------------------------
# LeaseTuner (5.5)
# ---------------------------------------------------------------------------
def test_lease_tuner_grows_on_failures(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    tuner = LeaseTuner(monitor, base_duration=10.0, max_duration=100.0)
    pattern = Pattern("slow")
    first = tuner.suggest(pattern)
    assert first.duration == 10.0  # no data yet
    # Three failing blocking ops.
    for _ in range(3):
        op = inst["a"].in_(pattern,
                           requester=SimpleLeaseRequester(LeaseTerms(1.0)))
        sim.run(until=sim.now + 3.0)
        assert op.result is None
    grown = tuner.suggest(pattern)
    assert grown.duration > 10.0


def test_lease_tuner_shrinks_toward_observed_latency(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    tuner = LeaseTuner(monitor, base_duration=200.0, min_duration=1.0,
                       headroom=3.0)
    pattern = Pattern("fast", int)
    for i in range(5):
        inst["a"].out(Tuple("fast", i))
        op = inst["a"].in_(pattern)
        sim.run(until=sim.now + 1.0)
        assert op.result is not None
    suggestion = tuner.suggest(pattern)
    assert suggestion.duration < 200.0


def test_lease_tuner_respects_bounds(sim):
    net, inst = build(sim, ["a"])
    monitor = AppMonitor(sim)
    monitor.attach(inst["a"])
    tuner = LeaseTuner(monitor, base_duration=10.0, min_duration=5.0,
                       max_duration=20.0)
    pattern = Pattern("bounded")
    for _ in range(10):
        op = inst["a"].in_(pattern,
                           requester=SimpleLeaseRequester(LeaseTerms(0.5)))
        sim.run(until=sim.now + 1.0)
        tuner.suggest(pattern)
    assert tuner.suggest(pattern).duration <= 20.0


# ---------------------------------------------------------------------------
# ConflictResolver (5.6)
# ---------------------------------------------------------------------------
def test_conflict_resolver_relieves_pressure(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "dev", storage_capacity=8 * 1024)
    resolver = ConflictResolver(sim, inst.leases, period=2.0,
                                high_water=0.8, low_water=0.5)
    resolver.start()

    def producer():
        i = 0
        while sim.now < 60.0:
            try:
                inst.out(Tuple("blob", i, "x" * 300),
                         requester=SimpleLeaseRequester(
                             LeaseTerms(duration=1000.0)))
            except LeaseError:
                pass
            i += 1
            yield sim.timeout(0.5)

    sim.spawn(producer())
    sim.run(until=60.0)
    assert resolver.interventions > 0
    # Pressure was actually relieved below the high-water mark each time.
    assert inst.leases.storage_used <= 8 * 1024


def test_conflict_resolver_reverses_bad_guesses(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "dev", storage_capacity=4 * 1024)
    resolver = ConflictResolver(sim, inst.leases, period=1.0,
                                high_water=0.7, low_water=0.3)
    low_before = resolver.low_water
    resolver.start()

    def aggressive_producer():
        i = 0
        while sim.now < 40.0:
            try:
                inst.out(Tuple("blob", i, "y" * 400),
                         requester=SimpleLeaseRequester(
                             LeaseTerms(duration=1000.0)))
            except LeaseError:
                pass
            i += 1
            yield sim.timeout(0.1)

    sim.spawn(aggressive_producer())
    sim.run(until=40.0)
    # Under relentless demand refusals keep rising after interventions, so
    # the resolver backs off its water mark at least once.
    assert resolver.reversals > 0
    assert resolver.low_water > low_before


def test_conflict_resolver_stop(sim):
    net = Network(sim)
    inst = TiamatInstance(sim, net, "dev", storage_capacity=1024)
    resolver = ConflictResolver(sim, inst.leases, period=1.0)
    resolver.start()
    sim.run(until=2.5)
    resolver.stop()
    interventions = resolver.interventions
    sim.run(until=20.0)
    assert resolver.interventions == interventions
