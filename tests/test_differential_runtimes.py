"""Differential conformance: sim, threaded, and aio runtimes must agree.

The same scripted out/in/rd/inp/rdp/eval workload is driven through the
deterministic simulation, the threaded runtime, and the asyncio UDP
runtime (real datagrams on loopback, ephemeral ports); the multiset of
consumed tuples, the per-step transcripts, and the final store contents
must be identical (ISSUE 5 acceptance criterion: 5 seeds; extended to
three runtimes by ISSUE 9).
"""

import pytest

from repro.check.differential import (
    ScriptedWorkload,
    run_aio,
    run_differential,
    run_sim,
    run_threaded,
)

pytestmark = pytest.mark.timeout(120)


@pytest.mark.parametrize("seed", range(5))
def test_all_three_runtimes_agree(seed):
    result = run_differential(seed, steps=40,
                              runtimes=("sim", "threaded", "aio"))
    assert result.agree, "\n".join(result.mismatches)
    # the workload actually exercised destructive consumption
    assert result.sim.consumed, "workload consumed nothing"
    assert result.sim.consumed == result.threaded.consumed
    assert result.sim.consumed == result.aio.consumed


@pytest.mark.parametrize("seed", range(5))
def test_agents_flavor_agrees_across_three_runtimes(seed):
    """ISSUE 10: the agent-blackboard vocabulary (claim cycles with
    wip markers and completion tokens, question/answer rounds, a full
    ballot with rd-quorum tally and decision token) behaves identically
    on sim, threads, and asyncio UDP."""
    result = run_differential(seed, steps=40,
                              runtimes=("sim", "threaded", "aio"),
                              flavor="agents")
    assert result.agree, "\n".join(result.mismatches)
    assert result.sim.consumed, "agents workload consumed nothing"
    assert result.sim.consumed == result.threaded.consumed
    assert result.sim.consumed == result.aio.consumed


def test_agents_flavor_generation_is_deterministic_and_distinct():
    a = ScriptedWorkload(3, steps=40, flavor="agents")
    b = ScriptedWorkload(3, steps=40, flavor="agents")
    assert [(s.kind, s.node, s.tup) for s in a.steps] == \
        [(s.kind, s.node, s.tup) for s in b.steps]
    classic = ScriptedWorkload(3, steps=40)
    assert [(s.kind, s.node, s.tup) for s in a.steps] != \
        [(s.kind, s.node, s.tup) for s in classic.steps]
    with pytest.raises(ValueError, match="unknown workload flavor"):
        ScriptedWorkload(0, steps=10, flavor="carrier-pigeon")


def test_default_pair_remains_sim_vs_threaded():
    """The historical 2-way API: no runtimes argument, .threaded present."""
    result = run_differential(0, steps=30)
    assert result.agree, "\n".join(result.mismatches)
    assert result.threaded is not None
    assert result.aio is None


def test_unknown_runtime_is_rejected():
    with pytest.raises(ValueError, match="unknown runtimes"):
        run_differential(0, steps=10, runtimes=("sim", "carrier-pigeon"))


def test_aio_agrees_under_datagram_loss():
    """Loss-injection smoke: with seeded datagram loss the aio runtime
    must *still* consume every tuple exactly once — retransmission,
    stable request ids across poll rounds, and the serve-side
    destructive-hit cache together hide the lossy wire from the
    semantics.  Blocking takes are used because they carry the full
    recovery machinery (non-blocking probes keep UDP's at-most-once
    residue by design)."""
    from repro.runtime.aio import AioNodeRegistry, AioTiamatNode
    from repro.tuples.model import Pattern, Tuple

    with AioNodeRegistry(loss_rate=0.2, loss_seed=11) as registry:
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        registry.set_visible("a", "b")
        for i in range(20):
            b.out(Tuple("loss", i))
        got = [a.in_(Pattern("loss", i), timeout=30.0) for i in range(20)]
        assert got == [Tuple("loss", i) for i in range(20)]
        assert b.space.count() == 0          # consumed exactly once each
        # the lossy wire was actually exercised and actually recovered
        assert registry.frames_dropped > 0
        assert a.retransmits > 0


def test_workload_generation_is_deterministic():
    a = ScriptedWorkload(3, steps=30)
    b = ScriptedWorkload(3, steps=30)
    assert [(s.kind, s.node, s.tup) for s in a.steps] == \
        [(s.kind, s.node, s.tup) for s in b.steps]
    c = ScriptedWorkload(4, steps=30)
    assert [(s.kind, s.node, s.tup) for s in a.steps] != \
        [(s.kind, s.node, s.tup) for s in c.steps]


def test_workload_covers_all_operation_kinds():
    kinds = {s.kind for s in ScriptedWorkload(0, steps=120).steps}
    assert kinds == {"out", "inp", "in", "rdp", "rd", "eval"}


def test_destructive_steps_target_live_unique_tuples():
    """The generator's shadow bookkeeping: every take names a tuple that
    is deposited earlier and not yet consumed, and every deposit is
    unique — the properties that make cross-runtime agreement decidable."""
    workload = ScriptedWorkload(7, steps=80)
    deposited = set()
    consumed = set()
    for step in workload.steps:
        if step.kind == "out":
            assert step.tup not in deposited
            deposited.add(step.tup)
        elif step.kind in ("inp", "in"):
            assert step.tup in deposited and step.tup not in consumed
            consumed.add(step.tup)
        elif step.kind in ("rdp", "rd"):
            assert step.tup in deposited and step.tup not in consumed


def test_transcripts_record_final_store_contents():
    workload = ScriptedWorkload(1, steps=30)
    sim_t = run_sim(workload)
    thr_t = run_threaded(workload)
    aio_t = run_aio(workload)
    for transcript in (sim_t, thr_t, aio_t):
        assert set(transcript.final) == set(workload.nodes)
    # residues = deposits (incl. eval results) minus consumption, everywhere
    residents = [sum(len(v) for v in t.final.values())
                 for t in (sim_t, thr_t, aio_t)]
    assert residents[0] == residents[1] == residents[2]
