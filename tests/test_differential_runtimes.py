"""Differential conformance: sim and threaded runtimes must agree.

The same scripted out/in/rd/inp/rdp/eval workload is driven through the
deterministic simulation and the threaded runtime; the multiset of
consumed tuples, the per-step transcripts, and the final store contents
must be identical (ISSUE 5 acceptance criterion: 5 seeds).
"""

import pytest

from repro.check.differential import (
    ScriptedWorkload,
    run_differential,
    run_sim,
    run_threaded,
)

pytestmark = pytest.mark.timeout(120)


@pytest.mark.parametrize("seed", range(5))
def test_sim_and_threaded_agree(seed):
    result = run_differential(seed, steps=40)
    assert result.agree, "\n".join(result.mismatches)
    # the workload actually exercised destructive consumption
    assert result.sim.consumed, "workload consumed nothing"
    assert result.sim.consumed == result.threaded.consumed


def test_workload_generation_is_deterministic():
    a = ScriptedWorkload(3, steps=30)
    b = ScriptedWorkload(3, steps=30)
    assert [(s.kind, s.node, s.tup) for s in a.steps] == \
        [(s.kind, s.node, s.tup) for s in b.steps]
    c = ScriptedWorkload(4, steps=30)
    assert [(s.kind, s.node, s.tup) for s in a.steps] != \
        [(s.kind, s.node, s.tup) for s in c.steps]


def test_workload_covers_all_operation_kinds():
    kinds = {s.kind for s in ScriptedWorkload(0, steps=120).steps}
    assert kinds == {"out", "inp", "in", "rdp", "rd", "eval"}


def test_destructive_steps_target_live_unique_tuples():
    """The generator's shadow bookkeeping: every take names a tuple that
    is deposited earlier and not yet consumed, and every deposit is
    unique — the properties that make cross-runtime agreement decidable."""
    workload = ScriptedWorkload(7, steps=80)
    deposited = set()
    consumed = set()
    for step in workload.steps:
        if step.kind == "out":
            assert step.tup not in deposited
            deposited.add(step.tup)
        elif step.kind in ("inp", "in"):
            assert step.tup in deposited and step.tup not in consumed
            consumed.add(step.tup)
        elif step.kind in ("rdp", "rd"):
            assert step.tup in deposited and step.tup not in consumed


def test_transcripts_record_final_store_contents():
    workload = ScriptedWorkload(1, steps=30)
    sim_t = run_sim(workload)
    thr_t = run_threaded(workload)
    assert set(sim_t.final) == set(workload.nodes)
    assert set(thr_t.final) == set(workload.nodes)
    # residues = deposits (incl. eval results) minus consumption, everywhere
    sim_resident = sum(len(v) for v in sim_t.final.values())
    thr_resident = sum(len(v) for v in thr_t.final.values())
    assert sim_resident == thr_resident
