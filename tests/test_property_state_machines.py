"""Property-based state-machine tests against reference models.

Hypothesis drives random operation sequences and checks the real
implementations against simple, obviously-correct reference models:

* :class:`SpaceMachine` — the local tuple space vs a plain multiset;
* :class:`GraphMachine` — the visibility graph vs a set of frozensets;
* algebraic properties of lease terms (capping, satisfaction).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.leasing import LeaseTerms
from repro.net import VisibilityGraph
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple, TupleStore, matches
from repro.tuples.model import ANY

# ---------------------------------------------------------------------------
# Local tuple space vs multiset
# ---------------------------------------------------------------------------
values = st.integers(min_value=0, max_value=4)


class SpaceMachine(RuleBasedStateMachine):
    """out/inp/rdp/hold/confirm/release vs a Counter reference model."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator(seed=0)
        from repro.tuples import LocalTupleSpace

        self.space = LocalTupleSpace(self.sim, name="pbt")
        self.model = Counter()
        self.held = {}  # entry_id -> value

    @rule(v=values)
    def out(self, v):
        self.space.out(Tuple("k", v))
        self.model[v] += 1

    @rule(v=values)
    def inp(self, v):
        got = self.space.inp(Pattern("k", v))
        if self.model[v] > 0:
            assert got == Tuple("k", v)
            self.model[v] -= 1
        else:
            assert got is None

    @rule(v=values)
    def rdp(self, v):
        got = self.space.rdp(Pattern("k", v))
        assert (got is not None) == (self.model[v] > 0)

    @rule(v=values)
    def hold(self, v):
        entry = self.space.hold_match(Pattern("k", v))
        if self.model[v] > 0:
            assert entry is not None
            self.model[v] -= 1  # invisible while held
            self.held[entry.entry_id] = v
        else:
            assert entry is None

    @rule()
    def confirm_one(self):
        if self.held:
            entry_id, _ = self.held.popitem()
            self.space.confirm(entry_id)

    @rule()
    def release_one(self):
        if self.held:
            entry_id, v = self.held.popitem()
            self.space.release(entry_id)
            self.model[v] += 1

    @invariant()
    def counts_agree(self):
        for v in range(5):
            assert self.space.count(Pattern("k", v)) == self.model[v]
        assert self.space.count() == sum(self.model.values())


TestSpaceMachine = SpaceMachine.TestCase
TestSpaceMachine.settings = settings(max_examples=40, stateful_step_count=30,
                                     deadline=None)


# ---------------------------------------------------------------------------
# Visibility graph vs set-of-edges model
# ---------------------------------------------------------------------------
node_names = st.sampled_from(["a", "b", "c", "d", "e"])


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = VisibilityGraph()
        self.edges = set()
        self.down = set()
        for n in "abcde":
            self.graph.add_node(n)

    @rule(a=node_names, b=node_names)
    def link(self, a, b):
        self.graph.set_visible(a, b, True)
        if a != b:
            self.edges.add(frozenset((a, b)))

    @rule(a=node_names, b=node_names)
    def unlink(self, a, b):
        self.graph.set_visible(a, b, False)
        self.edges.discard(frozenset((a, b)))

    @rule(n=node_names)
    def take_down(self, n):
        self.graph.set_up(n, False)
        self.down.add(n)

    @rule(n=node_names)
    def bring_up(self, n):
        self.graph.set_up(n, True)
        self.down.discard(n)

    @invariant()
    def visibility_matches_model(self):
        for a in "abcde":
            for b in "abcde":
                expected = (a != b
                            and frozenset((a, b)) in self.edges
                            and a not in self.down
                            and b not in self.down)
                assert self.graph.visible(a, b) == expected

    @invariant()
    def neighbors_are_symmetric(self):
        for a in "abcde":
            for b in self.graph.neighbors(a):
                assert a in self.graph.neighbors(b)


TestGraphMachine = GraphMachine.TestCase
TestGraphMachine.settings = settings(max_examples=40, stateful_step_count=30,
                                     deadline=None)


# ---------------------------------------------------------------------------
# Store candidates vs brute force
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(values, values), max_size=25),
       st.tuples(values, values))
def test_store_find_all_equals_brute_force(items, query):
    store = TupleStore()
    resident = []
    for a, b in items:
        tup = Tuple("t", a, b)
        store.add(tup)
        resident.append(tup)
    pattern = Pattern("t", query[0], ANY)
    via_index = [e.tuple for e in store.find_all(pattern)]
    brute = [t for t in resident if matches(pattern, t)]
    assert sorted(via_index, key=repr) == sorted(brute, key=repr)


# ---------------------------------------------------------------------------
# Lease terms algebra
# ---------------------------------------------------------------------------
opt_floats = st.one_of(st.none(), st.floats(min_value=0, max_value=1e6,
                                            allow_nan=False))
opt_ints = st.one_of(st.none(), st.integers(min_value=0, max_value=10**6))
terms = st.builds(LeaseTerms, duration=opt_floats, max_remotes=opt_ints,
                  storage_bytes=opt_ints)


@given(terms)
def test_terms_satisfy_themselves(t):
    assert t.satisfies(t)


@given(terms)
def test_unbounded_satisfies_everything(t):
    assert LeaseTerms().satisfies(t)


@given(terms)
def test_everything_satisfies_unbounded(t):
    assert t.satisfies(LeaseTerms())


@given(terms, opt_floats, opt_ints, opt_ints)
def test_capping_never_increases(t, d, r, s):
    capped = t.capped(duration=d, max_remotes=r, storage_bytes=s)

    def leq(a, b):
        if b is None:
            return True
        if a is None:
            return False
        return a <= b

    assert leq(capped.duration, t.duration) or t.duration is None
    assert leq(capped.max_remotes, t.max_remotes) or t.max_remotes is None
    assert leq(capped.storage_bytes, t.storage_bytes) or t.storage_bytes is None


@given(terms, terms)
def test_satisfies_is_antisymmetric_up_to_equality(a, b):
    # If each satisfies the other in every *bounded-on-both-sides*
    # dimension, the bounded dimensions must be equal.
    if a.satisfies(b) and b.satisfies(a):
        for dim in ("duration", "max_remotes", "storage_bytes"):
            va, vb = getattr(a, dim), getattr(b, dim)
            if va is not None and vb is not None:
                assert va == vb
