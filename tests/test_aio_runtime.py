"""The asyncio UDP runtime: real datagrams on loopback, ephemeral ports.

Everything here binds ``port=0`` sockets on 127.0.0.1, so the suite is
CI-safe: no fixed ports, no external network.  The multicast discovery
test is the one exception — it skips when the kernel refuses group
membership (common in minimal containers).
"""

import threading
import time

import pytest

from repro.core.config import TiamatConfig
from repro.runtime.aio import (
    AioNodeRegistry,
    AioTiamatNode,
    BufferPool,
    MAX_BATCH_FRAMES,
    multicast_group_for,
)
from repro.tuples.model import Pattern, Tuple
from repro.tuples.serialization import CodecMismatchError

pytestmark = pytest.mark.timeout(60)


@pytest.fixture()
def cluster():
    with AioNodeRegistry() as registry:
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        registry.set_visible("a", "b")
        yield registry, a, b


# ----------------------------------------------------------------------
# The six operations over real sockets
# ----------------------------------------------------------------------
def test_local_out_rdp_inp(cluster):
    _, a, _ = cluster
    a.out(Tuple("job", 1))
    assert a.rdp(Pattern("job", int)) == Tuple("job", 1)
    assert a.inp(Pattern("job", int)) == Tuple("job", 1)
    assert a.inp(Pattern("job", int)) is None


def test_remote_read_and_take(cluster):
    _, a, b = cluster
    b.out(Tuple("task", "parse", 7))
    # rd leaves the tuple with the owner; in removes it over the wire
    assert a.rdp(Pattern("task", str, int)) == Tuple("task", "parse", 7)
    assert b.space.count() == 1
    assert a.inp(Pattern("task", str, int)) == Tuple("task", "parse", 7)
    assert b.space.count() == 0
    assert a.inp(Pattern("task", str, int)) is None


def test_visibility_is_enforced():
    with AioNodeRegistry() as registry:
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        # no set_visible: the spaces are disjoint even on one host
        b.out(Tuple("hidden", 1))
        assert a.rdp(Pattern("hidden", int)) is None
        registry.set_visible("a", "b")
        assert a.rdp(Pattern("hidden", int)) == Tuple("hidden", 1)


def test_blocking_take_wakes_on_late_remote_deposit(cluster):
    _, a, b = cluster

    def deposit():
        time.sleep(0.15)
        b.out(Tuple("late", 99))

    t = threading.Thread(target=deposit)
    t.start()
    try:
        got = a.in_(Pattern("late", int), timeout=10.0)
    finally:
        t.join()
    assert got == Tuple("late", 99)
    assert b.space.count() == 0


def test_blocking_read_times_out_cleanly(cluster):
    _, a, _ = cluster
    start = time.monotonic()
    assert a.rd(Pattern("never", int), timeout=0.3) is None
    assert time.monotonic() - start < 5.0
    assert a.ops_unsatisfied >= 1


def test_eval_runs_worker_and_deposits(cluster):
    _, a, b = cluster
    fut = a.eval(lambda x: Tuple("square", x, x * x), 6)
    assert fut.result(timeout=10.0) == Tuple("square", 6, 36)
    # the active tuple's result landed in a's space, visible to b
    assert b.inp(Pattern("square", int, int)) == Tuple("square", 6, 36)


def test_eval_rejects_non_tuple_results(cluster):
    _, a, _ = cluster
    with pytest.raises(TypeError, match="not a Tuple"):
        a.eval(lambda: 42).result(timeout=10.0)


def test_echo_roundtrip_and_wire_counters(cluster):
    _, a, b = cluster
    payload = Tuple("ping", "x" * 64)
    assert a.echo(b.addr, payload) == payload
    stats = a.stats()
    assert stats["frames_sent"] >= 1
    assert stats["bytes_sent"] > 0
    assert b.frames_received >= 1


# ----------------------------------------------------------------------
# Reliability plane: dedup cache, shedding/backoff, loss counters
# ----------------------------------------------------------------------
def test_destructive_hit_is_replayed_not_recomputed(cluster):
    """A retransmitted take whose hit was already committed must replay
    the cached answer — consuming the tuple exactly once."""
    registry, a, b = cluster
    b.out(Tuple("once", 5))
    frame = {"k": "q", "id": 424242, "op": "inp",
             "p": Pattern("once", int), "o": "a"}

    async def serve_twice():
        b._serve_query(dict(frame), a.addr)
        b._serve_query(dict(frame), a.addr)  # the retransmitted copy

    registry.submit(serve_twice()).result(timeout=10.0)
    assert b.space.count() == 0
    assert b.dedup_served == 1


def test_miss_is_recomputed_on_retransmit(cluster):
    """Misses are *not* cached: the same request id probed again after a
    deposit must see the new tuple (blocking ops reuse ids per round)."""
    registry, a, b = cluster
    frame = {"k": "q", "id": 434343, "op": "inp",
             "p": Pattern("later", int), "o": "a"}

    async def probe():
        b._serve_query(dict(frame), a.addr)

    registry.submit(probe()).result(timeout=10.0)
    b.out(Tuple("later", 1))
    registry.submit(probe()).result(timeout=10.0)
    assert b.dedup_served == 0
    assert b.space.count() == 0  # the second serve consumed it


def test_force_shed_and_backoff_recovery(cluster):
    _, a, b = cluster
    b.out(Tuple("gated", 3))
    b.force_shed = True
    assert a.rdp(Pattern("gated", int)) is None
    assert b.sheds >= 1
    assert a._peer_backoff.get("b", (0, 0))[0] >= 1  # backoff recorded
    b.force_shed = False
    # blocking take outlasts the (capped) backoff and succeeds
    assert a.in_(Pattern("gated", int), timeout=10.0) == Tuple("gated", 3)
    assert "b" not in a._peer_backoff  # streak cleared on admission


def test_seeded_loss_drives_retransmits():
    with AioNodeRegistry(loss_rate=0.3, loss_seed=7) as registry:
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        registry.set_visible("a", "b")
        payload = Tuple("lossy", 1)
        replies = [a.echo(b.addr, payload, budget=5.0) for _ in range(10)]
        assert any(r == payload for r in replies)
        assert registry.frames_dropped > 0
        assert a.retransmits > 0


def test_loss_rate_validation():
    with pytest.raises(ValueError, match="loss_rate"):
        AioNodeRegistry(loss_rate=1.0)


# ----------------------------------------------------------------------
# Send plane: batching + buffer pool
# ----------------------------------------------------------------------
def test_same_tick_frames_coalesce_into_batches(cluster):
    registry, a, b = cluster
    before = b.frames_received

    async def burst():
        for i in range(5):
            a._queue_frame(b.addr, {"k": "e", "id": 10_000 + i,
                                    "t": Tuple("burst", i)})
        # frames queued in one tick flush together on the next

    registry.submit(burst()).result(timeout=10.0)
    deadline = time.monotonic() + 5.0
    while b.frames_received < before + 5 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert b.frames_received >= before + 5
    assert a.batches_sent >= 1


def test_oversize_queue_flushes_eagerly(cluster):
    registry, a, b = cluster

    async def flood():
        for i in range(MAX_BATCH_FRAMES + 1):
            a._queue_frame(b.addr, {"k": "e", "id": 20_000 + i,
                                    "t": Tuple("flood", i)})

    registry.submit(flood()).result(timeout=10.0)
    deadline = time.monotonic() + 5.0
    want = MAX_BATCH_FRAMES + 1
    while b.frames_received < want and time.monotonic() < deadline:
        time.sleep(0.01)
    assert a.frames_sent >= want


def test_buffer_pool_recycles():
    pool = BufferPool(capacity=2)
    first = pool.acquire()
    first.extend(b"x" * 100)
    pool.release(first)
    second = pool.acquire()
    assert second is first          # recycled, not reallocated
    assert len(second) == 0         # and handed back empty
    stats = pool.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_buffer_pool_caps_free_list():
    pool = BufferPool(capacity=1)
    a, b = pool.acquire(), pool.acquire()
    pool.release(a)
    pool.release(b)                 # beyond capacity: dropped, not kept
    assert pool.stats()["free"] == 1


def test_pool_is_exercised_by_traffic(cluster):
    _, a, b = cluster
    for i in range(20):
        a.echo(b.addr, Tuple("pooled", i))
    stats = a.stats()["pool"]
    assert stats["hits"] > 0
    assert stats["misses"] <= 2     # steady state reuses one buffer


# ----------------------------------------------------------------------
# Codec symmetry
# ----------------------------------------------------------------------
def test_codec_mismatch_is_rejected():
    config = TiamatConfig(wire_codec="json")
    with pytest.raises(CodecMismatchError):
        AioNodeRegistry(config=config, codec="binary")


def test_json_codec_cluster_interoperates():
    config = TiamatConfig(wire_codec="json")
    with AioNodeRegistry(config=config) as registry:
        assert registry.codec.name == "json"
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        registry.set_visible("a", "b")
        b.out(Tuple("json", 1, 2.5, True))
        assert a.inp(Pattern("json", int, float, bool)) == \
            Tuple("json", 1, 2.5, True)


# ----------------------------------------------------------------------
# Registry lifecycle + thread discipline
# ----------------------------------------------------------------------
def test_sync_facade_refuses_loop_thread(cluster):
    """Calling the blocking facade from loop code would deadlock the
    event loop waiting on itself; the registry refuses instead."""
    registry, a, _ = cluster

    async def misuse():
        return a.rdp(Pattern("x", int))

    with pytest.raises(RuntimeError, match="loop thread"):
        registry.submit(misuse()).result(timeout=10.0)


def test_submit_after_close_is_rejected():
    registry = AioNodeRegistry()
    AioTiamatNode(registry, "solo")
    registry.close()
    registry.close()                # idempotent

    async def nop():
        return 1

    with pytest.raises(RuntimeError, match="closed"):
        registry.submit(nop())


def test_registry_stats_roll_up_nodes(cluster):
    _, a, b = cluster
    a.echo(b.addr, Tuple("s", 1))
    stats = cluster[0].stats()
    assert set(stats["nodes"]) == {"a", "b"}
    assert stats["frames_dropped"] == 0
    assert stats["nodes"]["a"]["frames_sent"] >= 1


# ----------------------------------------------------------------------
# Multicast discovery
# ----------------------------------------------------------------------
def test_multicast_group_scheme_is_deterministic():
    g1 = multicast_group_for("analytics")
    assert g1 == multicast_group_for("analytics")
    host, port = g1
    first, second = int(host.split(".")[0]), int(host.split(".")[1])
    assert first == 239 and 192 <= second <= 195  # 239.192.0.0/14
    assert 30000 <= port < 34000
    assert g1 != multicast_group_for("billing")


def test_discover_requires_multicast_config(cluster):
    _, a, _ = cluster
    with pytest.raises(RuntimeError, match="multicast"):
        a.discover()


def test_multicast_discovery_finds_peers():
    group = multicast_group_for("pytest-discovery")
    try:
        with AioNodeRegistry(multicast=group) as registry:
            a = AioTiamatNode(registry, "a")
            b = AioTiamatNode(registry, "b")
            found = {}
            deadline = time.monotonic() + 5.0
            while "b" not in found and time.monotonic() < deadline:
                found = a.discover(window=0.2)
    except OSError as exc:  # pragma: no cover - environment-dependent
        pytest.skip(f"multicast unavailable in this environment: {exc}")
    assert found.get("b") == b.addr
