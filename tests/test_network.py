"""Unit tests for the simulated network (delivery, loss, stats)."""

import pytest

from repro.errors import UnknownNodeError
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=5)


def make_pair(sim, network=None, visible=True):
    net = network if network is not None else Network(sim)
    inbox_a, inbox_b = [], []
    a = net.attach("a", inbox_a.append)
    b = net.attach("b", inbox_b.append)
    if visible:
        net.visibility.set_visible("a", "b")
    return net, a, b, inbox_a, inbox_b


def test_unicast_delivers_payload(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    assert a.unicast("b", {"kind": "hello", "n": 1})
    sim.run()
    assert len(inbox_b) == 1
    msg = inbox_b[0]
    assert msg.payload == {"kind": "hello", "n": 1}
    assert msg.src == "a" and msg.dst == "b" and msg.kind == "hello"


def test_unicast_has_latency(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    a.unicast("b", {"kind": "x"})
    assert inbox_b == []  # not synchronous
    sim.run()
    assert len(inbox_b) == 1
    assert sim.now > 0.0


def test_unicast_to_invisible_node_is_dropped(sim):
    net, a, b, _, inbox_b = make_pair(sim, visible=False)
    assert not a.unicast("b", {"kind": "x"})
    sim.run()
    assert inbox_b == []
    assert net.stats.node("a").dropped_invisible == 1


def test_unicast_from_unattached_raises(sim):
    net = Network(sim)
    with pytest.raises(UnknownNodeError):
        net.unicast("ghost", "b", {"kind": "x"})


def test_double_attach_rejected(sim):
    net = Network(sim)
    net.attach("a", lambda m: None)
    with pytest.raises(UnknownNodeError):
        net.attach("a", lambda m: None)


def test_frame_in_flight_survives_visibility_loss(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    a.unicast("b", {"kind": "x"})
    net.visibility.set_visible("a", "b", False)  # separate mid-flight
    sim.run()
    assert len(inbox_b) == 1


def test_frame_dropped_if_destination_down_at_delivery(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    a.unicast("b", {"kind": "x"})
    net.visibility.set_up("b", False)
    sim.run()
    assert inbox_b == []


def test_multicast_reaches_all_visible_neighbors(sim):
    net = Network(sim)
    inboxes = {name: [] for name in "abcd"}
    for name in "abcd":
        net.attach(name, inboxes[name].append)
    net.visibility.connect_clique(["a", "b", "c"])  # d not visible
    count = net.multicast("a", {"kind": "discover"})
    sim.run()
    assert count == 2
    assert len(inboxes["b"]) == 1 and len(inboxes["c"]) == 1
    assert inboxes["d"] == [] and inboxes["a"] == []


def test_multicast_with_no_neighbors(sim):
    net = Network(sim)
    net.attach("lonely", lambda m: None)
    assert net.multicast("lonely", {"kind": "discover"}) == 0


def test_loss_rate_drops_messages(sim):
    net = Network(sim, loss_rate=0.5)
    received = []
    net.attach("a", lambda m: None)
    net.attach("b", received.append)
    net.visibility.set_visible("a", "b")
    for _ in range(200):
        net.unicast("a", "b", {"kind": "x"})
    sim.run()
    assert 40 < len(received) < 160  # about half, with slack
    assert net.stats.node("a").dropped_loss == 200 - len(received)


def test_zero_loss_delivers_everything(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    for _ in range(50):
        a.unicast("b", {"kind": "x"})
    sim.run()
    assert len(inbox_b) == 50


def test_detach_stops_delivery(sim):
    net, a, b, _, inbox_b = make_pair(sim)
    net.detach("b")
    assert not a.unicast("b", {"kind": "x"})
    sim.run()
    assert inbox_b == []


def test_stats_accounting(sim):
    net, a, b, _, _ = make_pair(sim)
    a.unicast("b", {"kind": "q", "body": "x" * 100})
    sim.run()
    sa, sb = net.stats.node("a"), net.stats.node("b")
    assert sa.sent_unicast == 1 and sa.bytes_sent > 100
    assert sb.received == 1 and sb.bytes_received == sa.bytes_sent
    assert sa.by_kind["q"] == 1
    assert net.stats.total_messages == 1


def test_stats_multicast_counts_one_transmission(sim):
    net = Network(sim)
    for name in "abc":
        net.attach(name, lambda m: None)
    net.visibility.connect_clique(["a", "b", "c"])
    net.multicast("a", {"kind": "discover"})
    assert net.stats.node("a").sent_multicast == 1
    assert net.stats.node("a").sent == 1


def test_interface_helpers(sim):
    net, a, b, _, _ = make_pair(sim)
    assert a.neighbors() == ["b"]
    assert a.is_visible("b")
    net.visibility.set_visible("a", "b", False)
    assert not a.is_visible("b")


def test_larger_messages_take_longer(sim):
    # Disable jitter for a clean comparison.
    from repro.net.network import default_latency

    arrivals = {}

    def handler(tag):
        return lambda m: arrivals.__setitem__(tag, sim.now)

    net = Network(sim, latency_factory=default_latency(jitter=0.0))
    net.attach("src", lambda m: None)
    net.attach("small", handler("small"))
    net.attach("big", handler("big"))
    net.visibility.connect_clique(["src", "small", "big"])
    net.unicast("src", "small", {"kind": "x"})
    net.unicast("src", "big", {"kind": "x", "body": "y" * 100_000})
    sim.run()
    assert arrivals["big"] > arrivals["small"]
