"""In-space cluster telemetry: leased health rows, collector, `repro top`.

The transport *is* the tuple space: each node deposits a
``("_telemetry", node, epoch, payload)`` row under a short lease, so a
dead node's rows are reclaimed by lease expiry with no reaper.  Covers
the publisher (sim + threaded runtimes), the health classifier, the
collector's freshest-epoch / expected-node semantics, and the skip-tag
plumbing that keeps health rows out of durable state and oracles.
"""

import json
import time

import pytest

from repro.core.config import TiamatConfig
from repro.core.instance import TiamatInstance
from repro.net.network import Network
from repro.obs.telemetry import (
    STALE_PERIODS,
    TELEMETRY_TAG,
    classify_node,
    collect_cluster_health,
    render_top,
)
from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode
from repro.sim.kernel import Simulator
from repro.tuples import Pattern, Tuple


# ----------------------------------------------------------------------
# Classifier
# ----------------------------------------------------------------------
def test_classify_thresholds():
    fresh = 0.5
    assert classify_node({}, fresh, period=1.0) == "ok"
    assert classify_node({}, STALE_PERIODS + 0.5, period=1.0) == "partitioned"
    assert classify_node({"sheds_w": 1}, fresh, 1.0) == "overloaded"
    assert classify_node({"util": 0.9}, fresh, 1.0) == "overloaded"
    assert classify_node({"retx_w": 3}, fresh, 1.0) == "degraded"
    assert classify_node({"rexp_w": 1}, fresh, 1.0) == "degraded"
    assert classify_node({"ops_w": 4, "unsat_w": 3}, fresh, 1.0) == "degraded"
    assert classify_node({"pending": 9}, fresh, 1.0) == "degraded"
    # Staleness outranks load: a cut-off node's last row may look busy.
    assert classify_node({"sheds_w": 5}, 10.0, 1.0) == "partitioned"
    assert classify_node({"ops_w": 10, "unsat_w": 2, "retx_w": 1},
                         fresh, 1.0) == "ok"


# ----------------------------------------------------------------------
# Collector semantics
# ----------------------------------------------------------------------
class _FakeSpace:
    def __init__(self, *tuples):
        self._tuples = list(tuples)

    def snapshot(self):
        return list(self._tuples)


def _row(node, epoch, **payload):
    payload.setdefault("t", 0.0)
    return Tuple(TELEMETRY_TAG, node, epoch,
                 json.dumps(payload, sort_keys=True))


def test_collector_keeps_freshest_epoch_across_spaces():
    spaces = [
        _FakeSpace(_row("a", 3, ops_w=1), Tuple("app", 1)),
        _FakeSpace(_row("a", 7, ops_w=9), _row("b", 2)),
    ]
    health = collect_cluster_health(spaces, now=0.5, period=1.0)
    assert set(health) == {"a", "b"}
    assert health["a"].epoch == 7
    assert health["a"].payload["ops_w"] == 9
    assert health["a"].status == "ok"


def test_collector_reports_expected_but_absent_as_partitioned():
    health = collect_cluster_health([_FakeSpace(_row("a", 1))], now=0.5,
                                    period=1.0, expected=["a", "ghost"])
    assert health["a"].status == "ok"
    assert health["ghost"].status == "partitioned"
    assert health["ghost"].epoch is None and health["ghost"].age is None


def test_collector_ignores_malformed_rows():
    spaces = [_FakeSpace(
        Tuple(TELEMETRY_TAG, "a", 1, "{not json"),
        Tuple(TELEMETRY_TAG, 42, 1, "{}"),           # non-string node
        Tuple(TELEMETRY_TAG, "short"),               # wrong arity
    )]
    health = collect_cluster_health(spaces, now=0.0, period=1.0)
    # The unparsable-payload row still counts (empty payload, ok).
    assert set(health) == {"a"}
    assert health["a"].payload == {}


def test_render_top_table():
    health = collect_cluster_health(
        [_FakeSpace(_row("a", 4, ops_w=12), _row("b", 2, sheds_w=1))],
        now=0.5, period=1.0, expected=["a", "b", "c"])
    text = render_top(health, now=0.5, title="unit")
    assert "NODE" in text and "STATUS" in text
    for node in ("a", "b", "c"):
        assert f"\n{node} " in text or f"\n{node}  " in text
    assert "overloaded" in text and "partitioned" in text
    assert text.splitlines()[-1].startswith("health: ")
    assert "1 ok" in text.splitlines()[-1]


# ----------------------------------------------------------------------
# Sim runtime: opt-in publisher, lease-reclaimed rows
# ----------------------------------------------------------------------
def _telemetry_world(**config):
    config.setdefault("telemetry_enabled", True)
    config.setdefault("telemetry_period", 0.5)
    config.setdefault("telemetry_lease", 1.25)
    sim = Simulator(seed=9)
    net = Network(sim)
    a = TiamatInstance(sim, net, "a", config=TiamatConfig(**config))
    b = TiamatInstance(sim, net, "b", config=TiamatConfig(**config))
    net.visibility.set_visible("a", "b")
    return sim, net, a, b


def test_publisher_deposits_leased_rows():
    sim, net, a, b = _telemetry_world()
    a.out(Tuple("app", 1))
    sim.run(until=2.1)
    rows = [t for t in a.space.snapshot()
            if t.fields[0] == TELEMETRY_TAG]
    assert rows, "publisher deposited no telemetry rows"
    assert a._telemetry.epoch >= 3
    payload = json.loads(rows[-1].fields[3])
    for key in ("ops_w", "unsat_w", "sheds_w", "retx_w", "rexp_w",
                "t", "resident", "pending"):
        assert key in payload
    # resident counts the app tuple alongside live health rows
    assert payload["resident"] >= 1

    health = collect_cluster_health([a.space, b.space], now=sim.now,
                                    period=0.5, expected=["a", "b"])
    assert health["a"].status == "ok" and health["b"].status == "ok"


def test_telemetry_is_off_by_default():
    sim = Simulator(seed=1)
    net = Network(sim)
    inst = TiamatInstance(sim, net, "solo")
    sim.run(until=5.0)
    assert inst._telemetry is None
    assert all(t.fields[0] != TELEMETRY_TAG for t in inst.space.snapshot())


def test_lease_expiry_reclaims_dead_node_rows():
    """A dead publisher's rows age out of the space with no reaper."""
    sim, net, a, b = _telemetry_world()
    sim.run(until=2.1)
    assert any(t.fields[0] == TELEMETRY_TAG for t in b.space.snapshot())

    b._telemetry.stop()                    # "b" dies: stops renewing
    sim.run(until=sim.now + 5.0)           # well past the 1.25s lease

    assert all(t.fields[0] != TELEMETRY_TAG for t in b.space.snapshot())
    health = collect_cluster_health([a.space, b.space], now=sim.now,
                                    period=0.5, expected=["a", "b"])
    assert health["a"].status == "ok"
    assert health["b"].status == "partitioned"
    assert health["b"].epoch is None       # reclaimed, not merely stale


def test_epochs_strictly_increase():
    sim, net, a, b = _telemetry_world(telemetry_lease=5.0)
    sim.run(until=2.1)
    rows = [t for t in a.space.snapshot() if t.fields[0] == TELEMETRY_TAG]
    epochs = [t.fields[2] for t in rows]
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)


# ----------------------------------------------------------------------
# Skip-tag plumbing: health rows are not application state
# ----------------------------------------------------------------------
def test_persistence_snapshot_skips_telemetry_rows():
    from repro.tuples.persistence import snapshot_space

    sim, net, a, b = _telemetry_world()
    a.out(Tuple("app", 1))
    sim.run(until=2.1)
    snap = snapshot_space(a.space)
    assert "_telemetry" not in json.dumps(snap)
    assert "app" in json.dumps(snap)


def test_exactly_once_oracle_skips_telemetry():
    from repro.check.oracles import ExactlyOnceOracle, InvariantMonitor

    monitor = InvariantMonitor(oracles=[ExactlyOnceOracle()],
                               stop_on_violation=False)
    with monitor:
        # Telemetry rows are reclaimed by expiry without a matching
        # consume — and here even an unmatched consume is ignored.
        monitor("space.consume", {"tup": Tuple(TELEMETRY_TAG, "a", 1, "{}")})
        assert monitor.violations == []
        # An application tuple consumed without a deposit still trips it.
        monitor("space.consume", {"tup": Tuple("app", 1)})
    assert len(monitor.violations) == 1
    assert monitor.violations[0].oracle == "exactly_once"


# ----------------------------------------------------------------------
# Threaded runtime
# ----------------------------------------------------------------------
def test_threaded_publish_and_cluster_health():
    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    b = ThreadedTiamatNode(registry, "b")
    registry.set_visible("a", "b")
    a.out(Tuple("job", 1))
    assert a.inp(Pattern("job", int)) is not None

    a.publish_telemetry(lease_duration=30.0)
    b.publish_telemetry(lease_duration=0.05)   # will expire below
    a.publish_telemetry(lease_duration=30.0)   # second epoch

    health = registry.cluster_health(period=1.0)
    assert health["a"].status == "ok"
    assert health["a"].epoch == 2
    assert health["a"].payload["ops_w"] >= 0

    time.sleep(0.15)                           # b's lease expires
    health = registry.cluster_health(period=1.0)
    assert health["b"].status == "partitioned"
    assert health["b"].epoch is None
    assert health["a"].status == "ok"


def test_threaded_periodic_publisher_thread():
    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    a.start_telemetry(period=0.02, lease_duration=30.0)
    try:
        deadline = time.monotonic() + 2.0
        while a.telemetry_published < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        a.stop_telemetry()
    assert a.telemetry_published >= 3
    published = a.telemetry_published
    time.sleep(0.1)                            # stopped: no more beats
    assert a.telemetry_published == published
    assert registry.cluster_health(period=0.02)["a"].epoch >= 3
