"""Seed-matrix robustness: the headline invariants hold across many seeds.

Every other test runs one committed seed; these sweep several to make
sure the properties the paper rests on are not one lucky schedule.
"""

import pytest

from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import ChurnInjector, Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple

SEEDS = (1, 7, 42, 1234, 99999)


@pytest.mark.parametrize("seed", SEEDS)
def test_exactly_once_under_churn_many_seeds(seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = [f"n{i}" for i in range(6)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    churn = ChurnInjector(sim, net.visibility)
    for name in names:
        churn.auto_churn(name, mean_uptime=15.0, mean_downtime=4.0)

    ops = []

    def driver():
        for i in range(30):
            instances[names[i % 6]].out(
                Tuple("unit", i),
                requester=SimpleLeaseRequester(LeaseTerms(duration=60.0)))
            ops.append(instances[names[(i + 3) % 6]].in_(
                Pattern("unit", Formal(int)),
                requester=SimpleLeaseRequester(LeaseTerms(6.0, 8))))
            yield sim.timeout(0.7)

    sim.spawn(driver())
    sim.run(until=150.0)
    assert all(op.done for op in ops)
    consumed = [op.result[1] for op in ops if op.result is not None]
    assert len(consumed) == len(set(consumed)), f"duplicate consume, seed={seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_competing_consumers_single_winner_many_seeds(seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    names = ["holder", "c1", "c2", "c3"]
    instances = {n: TiamatInstance(sim, net, n) for n in names}
    net.visibility.connect_clique(names)
    instances["holder"].out(Tuple("prize"),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=500.0)))
    ops = [instances[c].in_(Pattern("prize"),
                            requester=SimpleLeaseRequester(LeaseTerms(10.0, 8)))
           for c in ("c1", "c2", "c3")]
    sim.run(until=60.0)
    winners = [op for op in ops if op.result is not None]
    assert len(winners) == 1, f"{len(winners)} winners at seed {seed}"
    total = sum(instances[n].space.count(Pattern("prize")) for n in names)
    assert total == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_lease_expiry_always_terminates_ops_many_seeds(seed):
    sim = Simulator(seed=seed)
    net = Network(sim, loss_rate=0.3)
    names = [f"n{i}" for i in range(4)]
    instances = {n: TiamatInstance(sim, net, n) for n in names}
    net.visibility.connect_clique(names)
    ops = []
    for i in range(12):
        ops.append(instances[names[i % 4]].in_(
            Pattern("never", i),
            requester=SimpleLeaseRequester(LeaseTerms(3.0, 8))))
    sim.run(until=60.0)
    assert all(op.done and op.result is None for op in ops)
    for inst in instances.values():
        assert inst.leases.active_count == 0
