"""Failure injection: message loss, churn mid-protocol, starvation.

Leases are the backstop that keeps every operation terminating no matter
what the network does; these tests hammer that property.
"""


from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import ChurnInjector, Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple


def build_lossy(sim, names, loss_rate, config=None):
    net = Network(sim, loss_rate=loss_rate)
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(list(names))
    return net, instances


def test_all_ops_terminate_under_heavy_loss():
    """50% loss: operations may fail, but every one finishes by lease end."""
    sim = Simulator(seed=71)
    net, inst = build_lossy(sim, ["a", "b", "c"], loss_rate=0.5)
    inst["b"].out(Tuple("x", 1))
    ops = []
    for _ in range(20):
        ops.append(inst["a"].rdp(
            Pattern("x", int),
            requester=SimpleLeaseRequester(LeaseTerms(2.0, 8))))
        ops.append(inst["a"].in_(
            Pattern("y", int),
            requester=SimpleLeaseRequester(LeaseTerms(2.0, 8))))
    sim.run(until=60.0)
    assert all(op.done for op in ops)


def test_some_ops_succeed_despite_loss():
    sim = Simulator(seed=72)
    net, inst = build_lossy(sim, ["a", "b"], loss_rate=0.2)
    for i in range(30):
        inst["b"].out(Tuple("item", i),
                      requester=SimpleLeaseRequester(LeaseTerms(duration=500.0)))
    successes = 0
    done = []
    for i in range(30):
        op = inst["a"].rdp(Pattern("item", i),
                           requester=SimpleLeaseRequester(LeaseTerms(3.0, 4)))
        done.append(op)
        sim.run(until=sim.now + 5.0)
    sim.run(until=sim.now + 10.0)
    successes = sum(1 for op in done if op.result is not None)
    assert successes > 15  # 20% loss should still mostly work


def test_no_duplicate_consumption_without_loss():
    """Loss-free: N consumers, N tuples, each consumed exactly once."""
    sim = Simulator(seed=73)
    net, inst = build_lossy(sim, [f"n{i}" for i in range(6)], loss_rate=0.0)
    for i in range(10):
        inst[f"n{i % 6}"].out(Tuple("job", i),
                              requester=SimpleLeaseRequester(
                                  LeaseTerms(duration=500.0)))
    ops = []
    for k in range(10):
        consumer = inst[f"n{(k + 3) % 6}"]
        ops.append(consumer.in_(
            Pattern("job", Formal(int)),
            requester=SimpleLeaseRequester(LeaseTerms(30.0, 8))))
    sim.run(until=100.0)
    consumed = [op.result[1] for op in ops if op.result is not None]
    assert len(consumed) == len(set(consumed)) == 10  # all, exactly once
    resident = sum(inst[f"n{i}"].space.count(Pattern("job", Formal(int)))
                   for i in range(6))
    assert resident == 0


def test_churn_mid_operation_never_wedges():
    sim = Simulator(seed=74)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = [f"n{i}" for i in range(8)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    churn = ChurnInjector(sim, net.visibility)
    for name in names:
        churn.auto_churn(name, mean_uptime=3.0, mean_downtime=2.0)

    ops = []

    def driver():
        for i in range(40):
            who = instances[names[i % 8]]
            who.out(Tuple("v", i),
                    requester=SimpleLeaseRequester(LeaseTerms(duration=20.0)))
            ops.append(who.in_(
                Pattern("v", Formal(int)),
                requester=SimpleLeaseRequester(LeaseTerms(5.0, 8))))
            yield sim.timeout(1.0)

    sim.spawn(driver())
    sim.run(until=200.0)
    assert all(op.done for op in ops)
    # And nothing was consumed twice across the whole run.
    consumed = [op.result[1] for op in ops if op.result is not None]
    assert len(consumed) == len(set(consumed))


def test_holder_dies_while_tuple_held():
    """The serving node dies mid-claim: origin falls back to lease expiry."""
    sim = Simulator(seed=75)
    net = Network(sim)
    a = TiamatInstance(sim, net, "a")
    b = TiamatInstance(sim, net, "b")
    net.visibility.set_visible("a", "b")
    b.out(Tuple("doomed"))

    # Kill b the moment it receives any query, before it can reply.
    original = net._handlers["b"]

    def kill_on_query(msg):
        if msg.kind == "query":
            net.visibility.set_up("b", False)
            return
        original(msg)

    net._handlers["b"] = kill_on_query
    op = a.in_(Pattern("doomed"),
               requester=SimpleLeaseRequester(LeaseTerms(3.0, 4)))
    sim.run(until=20.0)
    assert op.done and op.result is None  # clean lease-bounded failure


def test_discovery_under_total_silence():
    """Multicast into the void completes with an empty responder list."""
    sim = Simulator(seed=76)
    net = Network(sim, loss_rate=1.0)  # every frame lost
    a = TiamatInstance(sim, net, "a")
    b = TiamatInstance(sim, net, "b")
    net.visibility.set_visible("a", "b")
    event = a.comms.discover()
    sim.run(until=5.0)
    assert event.triggered and event.value == []


def test_lossy_claim_does_not_wedge_server():
    """Even if claim messages are lost, the server's hold self-releases."""
    sim = Simulator(seed=77)
    config = TiamatConfig(claim_timeout=1.0)
    net = Network(sim)
    a = TiamatInstance(sim, net, "a", config=config)
    b = TiamatInstance(sim, net, "b", config=config)
    net.visibility.set_visible("a", "b")
    b.out(Tuple("x"), requester=SimpleLeaseRequester(LeaseTerms(duration=500.0)))

    # Drop exactly the CLAIM_ACCEPT frames.
    original = net._handlers["b"]

    def drop_claims(msg):
        if msg.kind == "claim_accept":
            return
        original(msg)

    net._handlers["b"] = drop_claims
    op = a.in_(Pattern("x"), requester=SimpleLeaseRequester(LeaseTerms(5.0, 4)))
    sim.run(until=30.0)
    # Origin believes it consumed the tuple; the orphaned hold was released
    # by the claim timeout (the duplication window documented in README).
    assert op.result == Tuple("x")
    assert b.server.active_servings == 0
    assert b.space.count(Pattern("x")) == 1  # restored after timeout
