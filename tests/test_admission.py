"""Admission control: pricing, fair share, refusal wire shape, backoff.

Covers the :mod:`repro.core.admission` decision logic in isolation, the
QueryServer integration (every refusal path emits the one structured
QUERY_REFUSED shape), origin-side surfacing (``op.refusals``) and
retry-after-honouring backoff, the stale-drop path, the threaded runtime's
serve gate, and determinism of the token-bucket refill.
"""

import pytest

from repro.core import TiamatConfig, TiamatInstance, protocol
from repro.core.admission import (
    ALL_REFUSAL_REASONS,
    REFUSE_DEADLINE,
    REFUSE_FAIR_SHARE,
    REFUSE_QUEUE_FULL,
    REFUSE_SERVING_LEASE,
    REFUSE_THREADS,
    AdmissionController,
    AdmissionDecision,
    FairShare,
    Refusal,
    parse_refusal,
)
from repro.leasing import DenyAllPolicy, LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple, encode_pattern


@pytest.fixture()
def sim():
    return Simulator(seed=23)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# Refusal parsing (the wire shape)
# ---------------------------------------------------------------------------
def test_parse_refusal_legacy_shape_defaults_to_serving_lease():
    refusal = parse_refusal("peer", {"kind": protocol.QUERY_REFUSED,
                                     "op_id": "x", "found": False})
    assert refusal == Refusal("peer", REFUSE_SERVING_LEASE, None)


def test_parse_refusal_structured_shape():
    refusal = parse_refusal("peer", {"reason": REFUSE_FAIR_SHARE,
                                     "retry_after": "0.25"})
    assert refusal.reason == REFUSE_FAIR_SHARE
    assert refusal.retry_after == 0.25
    assert "fair_share" in repr(refusal)


def test_refusal_reasons_vocabulary_is_closed():
    assert ALL_REFUSAL_REASONS == {
        REFUSE_SERVING_LEASE, REFUSE_THREADS, REFUSE_QUEUE_FULL,
        REFUSE_DEADLINE, REFUSE_FAIR_SHARE}


# ---------------------------------------------------------------------------
# FairShare: deterministic lazy-refill token buckets
# ---------------------------------------------------------------------------
def test_fair_share_spend_and_refill():
    clock = FakeClock()
    fair = FairShare(clock, capacity_rate=1.0, burst=0.5)
    # A fresh bucket starts at burst: a half-second of work is afforded.
    assert fair.spend("a", 0.5) is None
    # Empty now: the retry hint is the exact refill time at the full rate
    # (one active peer enjoys the whole capacity_rate).
    assert fair.spend("a", 0.3) == pytest.approx(0.3)
    clock.now = 0.3
    assert fair.spend("a", 0.3) is None  # refilled exactly enough


def test_fair_share_rate_splits_across_active_peers():
    clock = FakeClock()
    fair = FairShare(clock, capacity_rate=1.0, burst=0.1)
    fair.spend("a", 0.1)
    fair.spend("b", 0.1)
    assert fair.rate_per_peer() == pytest.approx(0.5)
    # An idle peer is pruned after the window; the survivor gets it back.
    clock.now = 10.0
    fair.spend("a", 0.0)
    assert fair.rate_per_peer() == pytest.approx(1.0)


def test_fair_share_refill_is_deterministic():
    def drive(fair, clock):
        out = []
        for step in range(40):
            clock.now = step * 0.05
            peer = "a" if step % 3 else "b"
            out.append(fair.spend(peer, 0.04))
        return out

    c1, c2 = FakeClock(), FakeClock()
    runs = [drive(FairShare(c, capacity_rate=1.0, burst=0.1), c)
            for c in (c1, c2)]
    assert runs[0] == runs[1]


def test_fair_share_debts_reports_pressure():
    clock = FakeClock()
    fair = FairShare(clock, capacity_rate=1.0, burst=0.5)
    fair.spend("hot", 0.5)
    fair.spend("cold", 0.1)
    debts = dict(fair.debts())
    assert debts["hot"] == pytest.approx(0.5)
    assert debts["cold"] == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# AdmissionController decision edges
# ---------------------------------------------------------------------------
def _controller(**kwargs):
    defaults = dict(clock=FakeClock(), queue_bound=4, capacity_rate=2.0,
                    unit_cost=0.1)
    defaults.update(kwargs)
    return AdmissionController(**defaults)


def test_admit_records_price_and_counter():
    ctl = _controller(fairness=False)
    decision = ctl.consider("o", "rd", queue_depth=0, drain_rate=20.0,
                            utilisation=0.0, active_servings=0)
    assert decision.admitted
    assert decision.price == pytest.approx(0.1 * 2.0)  # unit_cost x weight
    assert ctl.admitted == 1 and ctl.shed_total == 0


def test_exhausted_worker_pool_sheds_before_any_lease():
    ctl = _controller()
    decision = ctl.consider("o", "rdp", queue_depth=0, drain_rate=0.0,
                            utilisation=1.0, active_servings=0)
    assert not decision.admitted
    assert decision.reason == REFUSE_THREADS
    assert decision.retry_after >= ctl.retry_floor


def test_full_queue_sheds():
    ctl = _controller(queue_bound=2)
    decision = ctl.consider("o", "rdp", queue_depth=2, drain_rate=10.0,
                            utilisation=0.0, active_servings=0)
    assert decision.reason == REFUSE_QUEUE_FULL


def test_inline_serving_uses_active_servings_as_depth():
    ctl = _controller(queue_bound=2)
    decision = ctl.consider("o", "rdp", queue_depth=0, drain_rate=0.0,
                            utilisation=0.0, active_servings=2)
    assert decision.reason == REFUSE_QUEUE_FULL


def test_unmeetable_deadline_sheds_with_retry_hint():
    ctl = _controller(fairness=False)
    # est delay = (3+1)/2 = 2.0s; rd weight 2.0 -> priced 4.0 >= 0.5
    decision = ctl.consider("o", "rd", queue_depth=3, drain_rate=2.0,
                            utilisation=0.0, active_servings=0, deadline=0.5)
    assert decision.reason == REFUSE_DEADLINE
    assert decision.retry_after == pytest.approx(4.0 - 0.5 + 0.5)


def test_fair_share_shed_carries_refill_hint():
    ctl = _controller(burst=0.1)
    first = ctl.consider("hog", "rdp", queue_depth=0, drain_rate=20.0,
                         utilisation=0.0, active_servings=0)
    assert first.admitted
    second = ctl.consider("hog", "rdp", queue_depth=0, drain_rate=20.0,
                          utilisation=0.0, active_servings=0)
    assert second.reason == REFUSE_FAIR_SHARE
    assert second.retry_after > 0
    assert ctl.shed_by_reason == {REFUSE_FAIR_SHARE: 1}


def test_delay_observer_sees_estimates():
    ctl = _controller(fairness=False)
    seen = []
    ctl.delay_observer = seen.append
    ctl.consider("o", "rdp", queue_depth=4, drain_rate=2.0,
                 utilisation=0.0, active_servings=0)
    assert seen == [pytest.approx(2.5)]


def test_admission_decision_constructors():
    assert AdmissionDecision.admit(1.5).price == 1.5
    shed = AdmissionDecision.shed(REFUSE_QUEUE_FULL, 0.2)
    assert (shed.admitted, shed.reason, shed.retry_after) == (
        False, REFUSE_QUEUE_FULL, 0.2)


# ---------------------------------------------------------------------------
# QueryServer integration: every refusal path emits the structured shape
# ---------------------------------------------------------------------------
def _query(net, origin, target, op_id, op="rdp", deadline=30.0,
           pattern=None):
    net.unicast(origin, target, {
        "kind": protocol.QUERY, "op_id": op_id, "op": op,
        "pattern": encode_pattern(pattern or Pattern("x")),
        "deadline": deadline,
    })


def _spy(net, name):
    inbox = []
    net.attach(name, lambda msg: inbox.append(msg.payload))
    return inbox


def _fixed_net(sim, latency=0.001):
    """A Network whose messages all take exactly ``latency`` seconds, so
    staggered sends arrive in send order (no jitter reordering)."""
    return Network(sim, latency_factory=lambda net: (
        lambda src, dst, size: latency))


def test_lease_refusal_sends_reason_on_the_wire(sim):
    net = Network(sim)
    TiamatInstance(sim, net, "server", policy=DenyAllPolicy())
    inbox = _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    _query(net, "origin", "server", "q1")
    sim.run(until=1.0)
    refusals = [p for p in inbox if p["kind"] == protocol.QUERY_REFUSED]
    assert len(refusals) == 1
    assert refusals[0]["reason"] == REFUSE_SERVING_LEASE
    # Admission off: no retry hint (legacy-compatible shape).
    assert "retry_after" not in refusals[0]


def test_thread_exhaustion_sends_reason_on_the_wire(sim):
    net = Network(sim)
    server = TiamatInstance(sim, net, "server", thread_capacity=1)
    inbox = _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    _query(net, "origin", "server", "q1", op="in", deadline=30.0)
    _query(net, "origin", "server", "q2", op="in", deadline=30.0)
    sim.run(until=1.0)
    refusals = [p for p in inbox if p["kind"] == protocol.QUERY_REFUSED]
    assert [p["reason"] for p in refusals] == [REFUSE_THREADS]
    assert server.server.active_servings == 1


def test_admission_shed_carries_retry_after(sim):
    config = TiamatConfig(admission_enabled=True, serve_cost=0.1,
                          serve_workers=1, admission_queue_bound=1)
    net = Network(sim)
    server = TiamatInstance(sim, net, "server", config=config)
    inbox = _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    # Three probes: one dispatched, one queued, one shed (queue full).
    for i in range(3):
        _query(net, "origin", "server", f"q{i}", deadline=60.0)
    sim.run(until=5.0)
    refusals = [p for p in inbox if p["kind"] == protocol.QUERY_REFUSED]
    shed = [p for p in refusals if p["reason"] == REFUSE_QUEUE_FULL]
    assert len(shed) == 1
    assert shed[0]["retry_after"] > 0
    assert server.server.sheds == 1
    assert server.server.admission.shed_by_reason == {REFUSE_QUEUE_FULL: 1}


def test_duplicate_query_while_shed_is_refused_again_not_tracked(sim):
    """A retransmitted QUERY for shed work must not create serving state."""
    config = TiamatConfig(admission_enabled=True, serve_cost=0.1,
                          serve_workers=1, admission_queue_bound=1,
                          admission_fairness=False)
    net = _fixed_net(sim)
    server = TiamatInstance(sim, net, "server", config=config)
    inbox = _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    for i in range(2):
        _query(net, "origin", "server", f"q{i}", deadline=60.0)
        sim.run(until=sim.now + 0.002)
    _query(net, "origin", "server", "shed-me", deadline=60.0)
    sim.run(until=0.05)
    # The origin (not having heard, or retransmitting) re-sends the shed op.
    _query(net, "origin", "server", "shed-me", deadline=60.0)
    sim.run(until=0.09)
    refusals = [p for p in inbox if p["kind"] == protocol.QUERY_REFUSED
                and p["op_id"] == "shed-me"]
    assert len(refusals) == 2          # refused both times, structurally
    assert server.server.duplicate_queries == 0  # shed work is not tracked
    assert "shed-me" not in server.server._servings
    assert "shed-me" not in server.server._queued_ids


def test_duplicate_query_while_queued_is_deduplicated(sim):
    config = TiamatConfig(admission_enabled=True, serve_cost=0.2,
                          serve_workers=1, admission_queue_bound=8,
                          admission_fairness=False)
    net = _fixed_net(sim)
    server = TiamatInstance(sim, net, "server", config=config)
    _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    _query(net, "origin", "server", "q0", deadline=60.0)
    sim.run(until=sim.now + 0.002)
    _query(net, "origin", "server", "q1", deadline=60.0)
    sim.run(until=0.05)
    assert "q1" in server.server._queued_ids
    _query(net, "origin", "server", "q1", deadline=60.0)  # retransmit
    sim.run(until=0.1)
    assert server.server.duplicate_queries == 1


def test_stale_queued_work_dropped_at_dispatch(sim):
    """Admitted work that expires while queued dies at the queue head."""
    # price_curve deliberately underestimates, so short-deadline work is
    # admitted into a queue it cannot survive.
    config = TiamatConfig(admission_enabled=True, serve_cost=0.2,
                          serve_workers=1, admission_queue_bound=16,
                          admission_price_curve=0.1,
                          admission_fairness=False)
    net = _fixed_net(sim)
    server = TiamatInstance(sim, net, "server", config=config)
    _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    for i in range(4):
        _query(net, "origin", "server", f"long{i}", deadline=60.0)
        sim.run(until=sim.now + 0.002)
    # est wait ~0.8s, priced at 0.08 < 0.5 -> admitted, but expires queued.
    _query(net, "origin", "server", "doomed", deadline=0.5)
    sim.run(until=3.0)
    assert server.server.stale_dropped == 1
    assert server.server.served == 4


def test_backoff_retry_honours_retry_after_and_succeeds(sim):
    """A shed blocking op retries after the hint and eventually wins."""
    config = TiamatConfig(admission_enabled=True, serve_cost=0.05,
                          serve_workers=1, admission_burst=0.05)
    net = Network(sim)
    server = TiamatInstance(sim, net, "server", config=config)
    hog = TiamatInstance(sim, net, "hog")
    net.visibility.set_visible("server", "hog")
    server.out(Tuple("item", 1), requester=SimpleLeaseRequester(
        LeaseTerms(duration=300.0)))
    ops = [hog.rd_at(server.handle(), Pattern("item", int),
                     requester=SimpleLeaseRequester(
                         LeaseTerms(duration=20.0, max_remotes=8)))
           for _ in range(3)]
    sim.run(until=20.0)
    # The burst affords one immediate serve; the rest were shed with a
    # retry_after hint, backed off, re-contacted, and finally served.
    assert all(op.satisfied for op in ops)
    assert server.server.sheds >= 1
    refused_ops = [op for op in ops if op.refusals]
    assert refused_ops, "expected at least one op to see a refusal"
    for op in refused_ops:
        assert all(r.reason in ALL_REFUSAL_REASONS for r in op.refusals)
        assert all(r.retry_after is not None for r in op.refusals)


def test_backoff_disabled_means_no_retry(sim):
    config_server = TiamatConfig(admission_enabled=True, serve_cost=0.05,
                                 serve_workers=1, admission_burst=0.05)
    net = Network(sim)
    server = TiamatInstance(sim, net, "server", config=config_server)
    client = TiamatInstance(sim, net, "client",
                            config=TiamatConfig(backoff_on_refusal=False))
    net.visibility.set_visible("server", "client")
    server.out(Tuple("item", 1), requester=SimpleLeaseRequester(
        LeaseTerms(duration=300.0)))
    ops = [client.rd_at(server.handle(), Pattern("item", int),
                        requester=SimpleLeaseRequester(
                            LeaseTerms(duration=5.0, max_remotes=8)))
           for _ in range(3)]
    sim.run(until=20.0)
    shed_ops = [op for op in ops if op.refusals]
    assert shed_ops, "expected sheds"
    for op in shed_ops:
        assert not op.satisfied           # never retried
        assert op.contacted == ["server"]  # one contact, no re-send


def test_admission_metrics_families_registered(sim):
    config = TiamatConfig(admission_enabled=True, serve_cost=0.1,
                          serve_workers=1, admission_queue_bound=1)
    net = Network(sim)
    TiamatInstance(sim, net, "server", config=config)
    inbox = _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    for i in range(3):
        _query(net, "origin", "server", f"q{i}", deadline=60.0)
    sim.run(until=2.0)
    snap = sim.obs.registry.snapshot()
    assert snap["admission_decisions_total"]["samples"]
    assert snap["admission_shed_total"]["samples"]
    assert snap["serving_queue_depth"]["samples"]
    assert snap["admission_queue_wait_seconds"]["samples"]
    assert snap["admission_peer_debt"]["samples"]
    assert inbox  # sanity: traffic actually flowed


def test_default_off_registers_no_admission_families(sim):
    net = Network(sim)
    TiamatInstance(sim, net, "server")
    sim.run(until=0.1)
    snap = sim.obs.registry.snapshot()
    for family in ("admission_decisions_total", "admission_shed_total",
                   "serving_queue_depth", "admission_queue_wait_seconds",
                   "admission_peer_debt", "admission_stale_dropped_total"):
        assert family not in snap


def test_lease_policy_sees_queue_pressure(sim):
    """The serving queue's fullness reaches granting policies (5.1)."""
    from repro.leasing.policy import AdaptivePolicy

    config = TiamatConfig(admission_enabled=True, serve_cost=0.5,
                          serve_workers=1, admission_queue_bound=4,
                          admission_fairness=False)
    net = _fixed_net(sim)
    server = TiamatInstance(sim, net, "server", config=config,
                            policy=AdaptivePolicy(base_duration=100.0))
    _spy(net, "origin")
    net.visibility.set_visible("server", "origin")
    for i in range(4):
        _query(net, "origin", "server", f"q{i}", deadline=600.0)
        sim.run(until=sim.now + 0.002)
    sim.run(until=0.05)
    usage = server.leases.usage()
    assert usage.queue_pressure > 0.0
    # AdaptivePolicy scales its offer down under that pressure.
    offer = server.leases.policy.offer(
        LeaseTerms(duration=None), "rd", usage)
    assert offer.duration < 100.0


# ---------------------------------------------------------------------------
# Threaded runtime: bounded serve concurrency + SHED + origin backoff
# ---------------------------------------------------------------------------
def test_threaded_serve_gate_sheds_and_backs_off():
    from repro.runtime import SHED
    from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode

    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a", max_concurrent_serves=1)
    b = ThreadedTiamatNode(registry, "b")
    registry.set_visible("a", "b")
    a.out(Tuple("t", 1))

    assert not SHED  # falsy sentinel: plain truthiness keeps working
    assert b.rdp(Pattern("t", int)) == Tuple("t", 1)

    # Saturate a's serving gate; b's probe is shed and backs off.
    assert a._admit_serve()
    assert a.serve_rdp(Pattern("t", int)) is SHED
    assert b.rdp(Pattern("t", int)) is None
    assert b._peer_backoff["a"][0] == 1
    a._release_serve()
    # While backed off, b does not even contact a.
    assert b.rdp(Pattern("t", int)) is None
    import time
    time.sleep(2.5 * ThreadedTiamatNode.POLL_INTERVAL)
    assert b.rdp(Pattern("t", int)) == Tuple("t", 1)
    assert "a" not in b._peer_backoff  # served answer clears the window

    metrics = registry.obs.registry.snapshot()["runtime_serve_total"]
    samples = {tuple(s["labels"].values()): s["value"]
               for s in metrics["samples"]}
    assert samples[("a", "shed")] >= 2
    assert samples[("a", "served")] >= 2


def test_threaded_serve_gate_validates_bound():
    from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode

    registry = ThreadedNodeRegistry()
    with pytest.raises(ValueError):
        ThreadedTiamatNode(registry, "bad", max_concurrent_serves=0)


# ---------------------------------------------------------------------------
# Determinism: identical seeds, identical admission outcomes
# ---------------------------------------------------------------------------
def test_overload_point_is_deterministic():
    from repro.bench.overload import run_overload_point

    runs = [run_overload_point(7, 60.0, admission=True, duration=2.0,
                               clients=4)
            for _ in range(2)]
    assert runs[0].started == runs[1].started
    assert runs[0].satisfied == runs[1].satisfied
    assert runs[0].sheds == runs[1].sheds
    assert runs[0].shed_by_reason == runs[1].shed_by_reason
    assert runs[0].refusals_seen == runs[1].refusals_seen
    # Latencies match to sub-millisecond only: op ids come from a global
    # counter, so their byte length (and thus modelled wire latency) can
    # differ between in-process runs.  Counts above are exact.
    assert runs[0].latencies == pytest.approx(runs[1].latencies, abs=1e-3)
