"""Cross-codec property tests: the binary and JSON codecs must agree.

Hypothesis generates arbitrary tuples and patterns from the value model
(nested tuples, bytes fields, unicode strings, huge ints, Range specs,
ANY wildcards) and asserts that

* each codec round-trips to an **equal** value (type-strict Tuple/Pattern
  equality, so ``1`` vs ``True`` vs ``1.0`` confusions are caught);
* the two codecs agree with each other (decode(binary) == decode(json));
* ``encoded_size`` is exactly ``len(encoded bytes)`` for the binary codec
  (the number the network prices latency and leases price storage with);
* protocol payload dicts survive the binary payload codec.

Floats are restricted to finite values: the JSON wire cannot carry
NaN/Infinity portably, so the model's codecs never need to agree there.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuples.model import ANY, Actual, Formal, Pattern, Range, Tuple
from repro.tuples.serialization import (
    BINARY_CODEC,
    JSON_CODEC,
    decode_pattern,
    decode_pattern_binary,
    decode_payload_binary,
    decode_tuple,
    decode_tuple_binary,
    encode_pattern,
    encode_pattern_binary,
    encode_payload_binary,
    encode_tuple,
    encode_tuple_binary,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(allow_nan=False, allow_infinity=False)

scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),  # beyond 64-bit
    finite_floats,
    st.text(max_size=40),
    st.binary(max_size=40),
)

field_values = st.recursive(
    scalars,
    lambda children: st.lists(children, min_size=1, max_size=4).map(Tuple.of),
    max_leaves=12,
)

tuples = st.lists(field_values, min_size=1, max_size=6).map(Tuple.of)


def _range_spec(bounds):
    lo, hi = bounds
    if lo is None and hi is None:
        lo = 0.0
    if lo is not None and hi is not None and lo > hi:
        lo, hi = hi, lo
    return Range(lo, hi)


range_bound = st.one_of(st.none(), st.integers(-1000, 1000),
                        finite_floats.filter(lambda x: abs(x) < 1e308))

specs = st.one_of(
    field_values.map(Actual),
    st.sampled_from([bool, int, float, str, bytes, Tuple]).map(Formal),
    st.just(ANY),
    st.tuples(range_bound, range_bound).map(_range_spec),
)

patterns = st.lists(specs, min_size=1, max_size=6).map(Pattern.of)


# ----------------------------------------------------------------------
# Tuples
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(tuples)
def test_tuple_roundtrip_agreement(tup):
    via_json = decode_tuple(json.loads(json.dumps(encode_tuple(tup))))
    via_binary = decode_tuple_binary(encode_tuple_binary(tup))
    assert via_json == tup
    assert via_binary == tup
    assert via_binary == via_json


@settings(max_examples=200, deadline=None)
@given(tuples)
def test_tuple_encoded_size_matches_wire(tup):
    wire = encode_tuple_binary(tup)
    assert BINARY_CODEC.encoded_size(tup) == len(wire)
    # The JSON size is the canonical compact-JSON length of the tag lists.
    assert JSON_CODEC.encoded_size(tup) == len(
        json.dumps(encode_tuple(tup), separators=(",", ":"),
                   sort_keys=True, default=str).encode("utf-8"))


@settings(max_examples=100, deadline=None)
@given(tuples)
def test_tuple_field_types_preserved(tup):
    # Type strictness end to end: True must not come back as 1, 1 not as 1.0.
    decoded = decode_tuple_binary(encode_tuple_binary(tup))

    def same_types(a, b):
        assert type(a) is type(b)
        if isinstance(a, Tuple):
            for fa, fb in zip(a.fields, b.fields):
                same_types(fa, fb)

    same_types(tup, decoded)


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(patterns)
def test_pattern_roundtrip_agreement(pattern):
    via_json = decode_pattern(json.loads(json.dumps(encode_pattern(pattern))))
    via_binary = decode_pattern_binary(encode_pattern_binary(pattern))
    assert via_json == pattern
    assert via_binary == pattern
    assert via_binary == via_json


@settings(max_examples=100, deadline=None)
@given(patterns, tuples)
def test_codecs_agree_on_matching(pattern, tup):
    # The decisive property: a pattern shipped over either wire admits
    # exactly the same tuples as the original.
    from repro.tuples.matching import matches

    p_json = decode_pattern(json.loads(json.dumps(encode_pattern(pattern))))
    p_bin = decode_pattern_binary(encode_pattern_binary(pattern))
    t_bin = decode_tuple_binary(encode_tuple_binary(tup))
    expected = matches(pattern, tup)
    assert matches(p_json, t_bin) == expected
    assert matches(p_bin, t_bin) == expected


# ----------------------------------------------------------------------
# Protocol payloads
# ----------------------------------------------------------------------
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(-(2 ** 53), 2 ** 53), finite_floats,
              st.text(max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=10,
)

payloads = st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                           min_size=1, max_size=6)


@settings(max_examples=150, deadline=None)
@given(payloads)
def test_payload_binary_roundtrip(payload):
    decoded = decode_payload_binary(encode_payload_binary(payload))
    assert decoded == payload
    # Equality above is not enough for bool/int confusion; spot-check types.
    assert json.dumps(decoded, sort_keys=True, default=str) == \
        json.dumps(payload, sort_keys=True, default=str)
