"""Integration tests for TiamatInstance: the six ops over logical spaces."""

import pytest

from repro.core import TiamatConfig, TiamatInstance
from repro.errors import LeaseRefusedError
from repro.leasing import DenyAllPolicy, LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


def build(sim, names, config=None, clique=True, **kwargs):
    net = Network(sim)
    instances = {
        name: TiamatInstance(sim, net, name, config=config, **kwargs)
        for name in names
    }
    if clique:
        net.visibility.connect_clique(list(names))
    return net, instances


def run_op(sim, op, until=None):
    """Drive the simulator until the operation's event triggers."""
    sim.run(until=until) if until else sim.run()
    assert op.event.triggered, f"{op!r} never finished"
    return op.event.value


@pytest.fixture()
def sim():
    return Simulator(seed=42)


# ---------------------------------------------------------------------------
# Local semantics
# ---------------------------------------------------------------------------
def test_out_then_local_rdp(sim):
    _, inst = build(sim, ["a"])
    inst["a"].out(Tuple("x", 1))
    op = inst["a"].rdp(Pattern("x", int))
    assert run_op(sim, op) == Tuple("x", 1)
    assert op.source == "a"


def test_isolated_instance_works_alone(sim):
    """Each node contains a local space usable even in isolation (2.2)."""
    _, inst = build(sim, ["solo"], clique=False)
    inst["solo"].out(Tuple("note", "self"))
    op = inst["solo"].inp(Pattern("note", str))
    assert run_op(sim, op) == Tuple("note", "self")


def test_local_inp_removes(sim):
    _, inst = build(sim, ["a"])
    inst["a"].out(Tuple("x", 1))
    op1 = inst["a"].inp(Pattern("x", int))
    sim.run(until=0.01)
    assert op1.result == Tuple("x", 1)
    op2 = inst["a"].inp(Pattern("x", int))
    assert run_op(sim, op2) is None


def test_space_info_tuple_present(sim):
    from repro.core import SPACE_INFO_PATTERN, SpaceHandle

    _, inst = build(sim, ["a"])
    tup = inst["a"].space.rdp(SPACE_INFO_PATTERN)
    assert tup is not None
    handle = SpaceHandle.from_tuple(tup)
    assert handle.instance_name == "a"


def test_refused_lease_means_no_work(sim):
    """Figure 2: 'If a lease is refused, no further work is carried out.'"""
    _, inst = build(sim, ["a"], policy=DenyAllPolicy())
    with pytest.raises(LeaseRefusedError):
        inst["a"].out(Tuple("x", 1))
    # Nothing got stored and nothing hit the network.
    assert inst["a"].space.count(Pattern("x", int)) == 0
    with pytest.raises(LeaseRefusedError):
        inst["a"].rd(Pattern("x", int))
    assert inst["a"].ops_started == 0


# ---------------------------------------------------------------------------
# Remote: blocking rd / in
# ---------------------------------------------------------------------------
def test_rd_finds_remote_tuple(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("greeting", "hello"))
    op = inst["b"].rd(Pattern("greeting", str))
    assert run_op(sim, op, until=5.0) == Tuple("greeting", "hello")
    assert op.source == "a"
    # rd is non-destructive: the tuple stays at a.
    assert inst["a"].space.count(Pattern("greeting", str)) == 1


def test_in_consumes_remote_tuple(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("job", 7))
    op = inst["b"].in_(Pattern("job", int))
    assert run_op(sim, op, until=5.0) == Tuple("job", 7)
    assert inst["a"].space.count(Pattern("job", int)) == 0


def test_blocking_rd_waits_for_future_remote_out(sim):
    net, inst = build(sim, ["a", "b"])
    op = inst["b"].rd(Pattern("later", int))
    sim.schedule(3.0, inst["a"].out, Tuple("later", 5))
    assert run_op(sim, op, until=10.0) == Tuple("later", 5)
    assert op.source == "a"


def test_local_match_preferred_when_present(sim):
    net, inst = build(sim, ["a", "b"])
    inst["b"].out(Tuple("x", "local"))
    inst["a"].out(Tuple("x", "remote"))
    op = inst["b"].rd(Pattern("x", str))
    assert run_op(sim, op, until=5.0) == Tuple("x", "local")
    assert op.source == "b"


def test_exactly_once_consumption_two_consumers(sim):
    """Two concurrent `in`s for one tuple: exactly one succeeds."""
    net, inst = build(sim, ["a", "b", "c"])
    inst["a"].out(Tuple("prize"))
    op_b = inst["b"].in_(Pattern("prize"),
                         requester=SimpleLeaseRequester(LeaseTerms(5.0, 8)))
    op_c = inst["c"].in_(Pattern("prize"),
                         requester=SimpleLeaseRequester(LeaseTerms(5.0, 8)))
    sim.run(until=20.0)
    winners = [op for op in (op_b, op_c) if op.result is not None]
    assert len(winners) == 1
    assert inst["a"].space.count(Pattern("prize")) == 0


def test_losing_offer_put_back(sim):
    """First responder wins; the loser's tuple goes back into its space."""
    net, inst = build(sim, ["a", "b", "origin"])
    inst["a"].out(Tuple("item", "from-a"))
    inst["b"].out(Tuple("item", "from-b"))
    op = inst["origin"].in_(Pattern("item", str))
    result = run_op(sim, op, until=10.0)
    assert result is not None
    # Exactly one of the two tuples was consumed; the other was put back.
    remaining = (inst["a"].space.count(Pattern("item", str))
                 + inst["b"].space.count(Pattern("item", str)))
    assert remaining == 1


def test_blocking_in_lease_expiry_returns_none(sim):
    """2.5: expired blocking ops stop and return nothing."""
    net, inst = build(sim, ["a", "b"])
    op = inst["b"].in_(Pattern("never"),
                       requester=SimpleLeaseRequester(LeaseTerms(duration=5.0)))
    sim.run(until=4.0)
    assert not op.done
    sim.run(until=6.0)
    assert op.done and op.result is None
    # The remote waiter at `a` was cancelled too.
    sim.run(until=10.0)
    assert inst["a"].server.active_servings == 0


def test_cancelled_remote_waiter_does_not_steal_later_tuple(sim):
    net, inst = build(sim, ["a", "b"])
    op = inst["b"].in_(Pattern("slow"),
                       requester=SimpleLeaseRequester(LeaseTerms(duration=2.0)))
    sim.run(until=5.0)
    assert op.result is None
    inst["a"].out(Tuple("slow"))
    sim.run(until=10.0)
    assert inst["a"].space.count(Pattern("slow")) == 1  # not consumed


# ---------------------------------------------------------------------------
# Remote: probes (rdp / inp)
# ---------------------------------------------------------------------------
def test_rdp_samples_remote_space(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("data", 9))
    op = inst["b"].rdp(Pattern("data", int))
    assert run_op(sim, op, until=5.0) == Tuple("data", 9)
    assert inst["a"].space.count(Pattern("data", int)) == 1


def test_inp_takes_remote_tuple(sim):
    net, inst = build(sim, ["a", "b"])
    inst["a"].out(Tuple("data", 9))
    op = inst["b"].inp(Pattern("data", int))
    assert run_op(sim, op, until=5.0) == Tuple("data", 9)
    sim.run(until=10.0)
    assert inst["a"].space.count(Pattern("data", int)) == 0


def test_probe_returns_none_when_nothing_matches_anywhere(sim):
    net, inst = build(sim, ["a", "b", "c"])
    op = inst["b"].rdp(Pattern("missing"))
    assert run_op(sim, op, until=10.0) is None


def test_probe_does_not_wait_for_future_tuples(sim):
    """rdp/inp sample the *current* logical space only."""
    net, inst = build(sim, ["a", "b"])
    op = inst["b"].rdp(Pattern("future"))
    sim.schedule(1.0, inst["a"].out, Tuple("future"))
    sim.run(until=30.0)
    assert op.done and op.result is None


def test_probe_remote_budget_limits_contacts(sim):
    """Leases denominated in remote instances contacted (2.5)."""
    names = [f"n{i}" for i in range(10)]
    net, inst = build(sim, ["origin"] + names)
    # Tuple lives only at the last node contacted; budget of 2 cannot reach
    # every peer.
    inst[names[-1]].out(Tuple("rare"))
    op = inst["origin"].rdp(
        Pattern("rare"),
        requester=SimpleLeaseRequester(LeaseTerms(duration=30.0, max_remotes=2)))
    sim.run(until=40.0)
    assert op.done
    assert len(op.contacted) <= 2


# ---------------------------------------------------------------------------
# Figure 1: logical space composition under visibility change
# ---------------------------------------------------------------------------
def test_fig1_isolated_instances_see_only_local(sim):
    net, inst = build(sim, ["A", "B"], clique=False)
    inst["A"].out(Tuple("at", "A"))
    inst["B"].out(Tuple("at", "B"))
    op = inst["A"].rdp(Pattern("at", "B"))
    assert run_op(sim, op, until=10.0) is None


def test_fig1_visible_instances_form_union(sim):
    net, inst = build(sim, ["A", "B"], clique=False)
    inst["A"].out(Tuple("at", "A"))
    inst["B"].out(Tuple("at", "B"))
    net.visibility.set_visible("A", "B")
    op_ab = inst["A"].rdp(Pattern("at", "B"))
    assert run_op(sim, op_ab, until=10.0) == Tuple("at", "B")
    op_ba = inst["B"].rdp(Pattern("at", "A"))
    assert run_op(sim, op_ba, until=20.0) == Tuple("at", "A")


def test_fig1_no_global_consistency(sim):
    """(c): B sees A∪B∪C while A sees A∪B and C sees B∪C."""
    net, inst = build(sim, ["A", "B", "C"], clique=False)
    for name in ("A", "B", "C"):
        inst[name].out(Tuple("at", name))
    net.visibility.set_visible("A", "B")
    net.visibility.set_visible("B", "C")
    # B reaches both A's and C's tuples.
    assert run_op(sim, inst["B"].rdp(Pattern("at", "A")), until=10.0) == Tuple("at", "A")
    assert run_op(sim, inst["B"].rdp(Pattern("at", "C")), until=20.0) == Tuple("at", "C")
    # A cannot reach C's tuple, and vice versa (no transitive routing).
    assert run_op(sim, inst["A"].rdp(Pattern("at", "C")), until=30.0) is None
    assert run_op(sim, inst["C"].rdp(Pattern("at", "A")), until=40.0) is None


# ---------------------------------------------------------------------------
# Propagation modes (start vs continuous)
# ---------------------------------------------------------------------------
def test_start_mode_ignores_late_arrivals(sim):
    config = TiamatConfig(propagate_mode="start")
    net, inst = build(sim, ["origin", "late"], config=config, clique=False)
    inst["late"].out(Tuple("wanted"))
    op = inst["origin"].rd(Pattern("wanted"),
                           requester=SimpleLeaseRequester(LeaseTerms(20.0, 8)))
    sim.schedule(5.0, net.visibility.set_visible, "origin", "late", True)
    sim.run(until=30.0)
    assert op.result is None  # prototype semantics: late arrival not contacted


def test_continuous_mode_contacts_late_arrivals(sim):
    config = TiamatConfig(propagate_mode="continuous")
    net, inst = build(sim, ["origin", "late"], config=config, clique=False)
    inst["late"].out(Tuple("wanted"))
    op = inst["origin"].rd(Pattern("wanted"),
                           requester=SimpleLeaseRequester(LeaseTerms(20.0, 8)))
    sim.schedule(5.0, net.visibility.set_visible, "origin", "late", True)
    sim.run(until=30.0)
    assert op.result == Tuple("wanted")
    assert op.source == "late"


def test_departure_does_not_break_ongoing_operation(sim):
    """2.3: instances can leave without affecting operation semantics."""
    net, inst = build(sim, ["origin", "flaky", "steady"])
    op = inst["origin"].in_(Pattern("eventually"),
                            requester=SimpleLeaseRequester(LeaseTerms(30.0, 8)))
    sim.run(until=1.0)
    net.visibility.set_up("flaky", False)  # departs mid-operation
    inst["steady"].out(Tuple("eventually"))
    sim.run(until=20.0)
    assert op.result == Tuple("eventually")
