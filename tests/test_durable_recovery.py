"""Instance-level durable recovery and the anti-entropy rejoin.

The dangerous window (docs/PROTOCOL.md section 10): a peer destructively
consumes a tuple, the origin's acknowledgement reaches the consumer, and
*then* the origin dies with the consume's removal record torn off its
write-ahead log.  Naive replay resurrects the tuple — a second destructive
take of something the network already consumed exactly once.  The rejoin
protocol closes it: restored entries come back quarantined, SYNC_REQUEST
collects every visible peer's consume witnesses, witnessed ghosts are
purged, and entries that cannot be verified before the sync window closes
are dropped rather than risked.
"""

import pytest

from repro.core import TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import CrashRestartInjector, Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple
from repro.tuples.storage import MemoryBackend, MemoryFS, WALBackend, attach_backend


@pytest.fixture
def sim():
    return Simulator(seed=5)


@pytest.fixture
def net(sim):
    return Network(sim)


def terms(duration=1000.0):
    return SimpleLeaseRequester(LeaseTerms(duration=duration, max_remotes=8))


# ---------------------------------------------------------------------------
# recover_from: lease-aware replay, id discipline
# ---------------------------------------------------------------------------
def test_recover_restores_original_ids_and_bumps_counter(sim, net):
    old = TiamatInstance(sim, net, "dev")
    backend = attach_backend(old.space, MemoryBackend())
    old.space.out(Tuple("a"))
    old.space.out(Tuple("b"))
    old_ids = sorted(e.entry_id for e in old.space.store)
    old.shutdown()

    reborn = TiamatInstance(sim, net, "dev")
    stats = reborn.recover_from(backend, sync=False)
    assert stats.restored == 2 and stats.reclaimed == 0
    assert sorted(e.entry_id for e in reborn.space.store) == old_ids
    # New deposits never reuse an id the log has seen.
    reborn.space.out(Tuple("fresh"))
    fresh = [e.entry_id for e in reborn.space.store
             if e.tuple == Tuple("fresh")]
    assert fresh[0] > max(old_ids)
    assert reborn.space.count(Pattern("a")) == 1    # visible: no quarantine


def test_recover_charges_downtime_against_leases(sim, net):
    old = TiamatInstance(sim, net, "dev")
    backend = attach_backend(old.space, MemoryBackend())
    old.space.out(Tuple("short"), expires_at=10.0)
    old.space.out(Tuple("long"), expires_at=500.0)
    old.shutdown()
    backend.detach()        # power cut: dead incarnation's timers can't log
    sim.run(until=100.0)    # the node is dark while its leases burn

    reborn = TiamatInstance(sim, net, "dev")
    stats = reborn.recover_from(backend, sync=False)
    assert stats.restored == 1 and stats.reclaimed == 1
    assert reborn.space.count(Pattern("short")) == 0
    assert reborn.space.count(Pattern("long")) == 1
    assert reborn.tuples_reclaimed == 1


def test_recover_can_reanchor_remaining_lease_time(sim, net):
    old = TiamatInstance(sim, net, "dev")
    backend = attach_backend(old.space, MemoryBackend())
    old.space.out(Tuple("mortal"), expires_at=10.0)   # 10s of life
    old.shutdown()
    backend.detach()
    sim.run(until=100.0)

    reborn = TiamatInstance(sim, net, "dev")
    stats = reborn.recover_from(backend, downtime=100.0,
                                charge_downtime=False, sync=False)
    assert stats.restored == 1
    sim.run(until=105.0)
    assert reborn.space.count(Pattern("mortal")) == 1  # re-anchored: 10s left
    sim.run(until=115.0)
    assert reborn.space.count(Pattern("mortal")) == 0


def test_recover_with_no_peers_releases_immediately(sim, net):
    old = TiamatInstance(sim, net, "dev")
    backend = attach_backend(old.space, MemoryBackend())
    old.space.out(Tuple("solo"))
    old.shutdown()

    reborn = TiamatInstance(sim, net, "dev")
    reborn.recover_from(backend, sync=True)
    # Nobody to ask: the rejoin degenerates to an immediate release.
    assert reborn.rejoins_completed == 1
    assert reborn.space.count(Pattern("solo")) == 1


# ---------------------------------------------------------------------------
# The full loop: torn removal record, ghost purged by a peer's witness
# ---------------------------------------------------------------------------
def crash_recover_pair(sim, net, tear):
    """server+client; client consumes one of two tuples; server dies with
    the consume's `rm` torn off its WAL, then durably recovers."""
    registry = {}

    def factory(name):
        instance = TiamatInstance(sim, net, name)
        for peer in ("server", "client"):
            if peer != name:
                net.visibility.set_visible(name, peer)
                net.visibility.set_visible(peer, name)
        return instance

    registry["server"] = factory("server")
    registry["client"] = factory("client")
    backend = attach_backend(registry["server"].space,
                             WALBackend("srv", fs=MemoryFS()))
    injector = CrashRestartInjector(sim, registry, factory, durable=True,
                                    backends={"server": backend})

    registry["server"].out(Tuple("keep", 0), requester=terms())
    registry["server"].out(Tuple("job", 1), requester=terms())

    def run():
        client = registry["client"]
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        op = client.in_(Pattern("job", 1), requester=terms(8.0))
        result = yield op.event
        assert result == Tuple("job", 1)
        yield sim.timeout(0.1)          # the CLAIM_ACCEPT lands; rm logged
        injector.crash("server")
        if tear:
            torn = backend.tear_tail(12)
            assert torn["op"] == "rm" and torn["why"] == "consumed"
        yield sim.timeout(0.2)
        injector.restart("server")

    sim.spawn(run())
    sim.run(until=30.0)
    return registry, injector, backend


def test_torn_consume_record_is_purged_not_resurrected(sim, net):
    registry, injector, backend = crash_recover_pair(sim, net, tear=True)
    server = registry["server"]
    # The consumed tuple came back quarantined, the client's witness
    # named it, and the rejoin purged it: never observable again.
    assert server.space.count(Pattern("job", 1)) == 0
    assert server.space.count(Pattern("keep", 0)) == 1
    assert injector.ghosts_purged == 1
    assert server.rejoins_completed == 1 and server.rejoin_dropped == 0
    # The purge is durable too: one more recovery stays clean.
    assert all(tup != Tuple("job", 1)
               for _, tup, _ in backend.recover().entries)


def test_intact_log_recovers_without_purges(sim, net):
    registry, injector, _ = crash_recover_pair(sim, net, tear=False)
    server = registry["server"]
    assert server.space.count(Pattern("job", 1)) == 0
    assert server.space.count(Pattern("keep", 0)) == 1
    assert injector.ghosts_purged == 0


def test_client_witnesses_and_answers_sync(sim, net):
    registry, _, _ = crash_recover_pair(sim, net, tear=True)
    client = registry["client"]
    server = registry["server"]
    assert client.sync_responses_sent == 1
    assert server.sync_requests_sent == 1
    # The witness set names the durable id it consumed on the server
    # (id 3: the server's __space_info__ and "keep" tuples come first).
    assert list(client._consume_witness["server"]) == [3]


def test_rejoin_timeout_drops_unverified_entries(sim, net):
    old = TiamatInstance(sim, net, "dev")
    backend = attach_backend(old.space, MemoryBackend())
    old.space.out(Tuple("maybe-ghost"))
    old.shutdown()
    # A peer that is visible (registered, up) but silent: no instance ever
    # runs under the name, so the SYNC_REQUEST is never answered.
    net.visibility.set_visible("dev", "dark")

    reborn = TiamatInstance(sim, net, "dev")
    reborn.recover_from(backend, sync=True, sync_timeout=3.0)
    assert reborn.space.count(Pattern("maybe-ghost")) == 0   # quarantined
    sim.run(until=10.0)
    # Unverifiable: dropped, not released (a torn rm must never win).
    assert reborn.space.count(Pattern("maybe-ghost")) == 0
    assert reborn.rejoin_dropped == 1
    assert reborn.rejoins_completed == 1


def test_witness_cap_evicts_oldest_first(sim, net):
    inst = TiamatInstance(sim, net, "dev")
    inst.WITNESS_CAP = 3
    for entry_id in range(1, 6):
        inst.note_remote_consume("peer", entry_id)
    assert list(inst._consume_witness["peer"]) == [3, 4, 5]
    inst.note_remote_consume("peer", 3)     # refresh keeps it one slot
    assert len(inst._consume_witness["peer"]) == 3


# ---------------------------------------------------------------------------
# Observability: recovery metrics register on first use only
# ---------------------------------------------------------------------------
def test_recovery_metrics_are_conditional(sim, net):
    plain = TiamatInstance(sim, net, "plain")
    names = {family.name for family in sim.obs.registry.families()}
    assert "recovery_events_total" not in names
    assert "storage_records_total" not in names

    backend = attach_backend(plain.space, MemoryBackend())
    plain.space.out(Tuple("x"))
    plain.shutdown()
    reborn = TiamatInstance(sim, net, "dev")
    reborn.recover_from(backend, sync=False)
    snapshot = sim.obs.registry.snapshot()
    assert "recovery_events_total" in snapshot
    assert "storage_records_total" in snapshot
