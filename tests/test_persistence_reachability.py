"""Tests for space persistence (2.4) and multi-hop visibility (2.2)."""

import pytest

from repro.core import TiamatInstance
from repro.errors import SerializationError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    MultiHopVisibilityDriver,
    Network,
    Position,
    StaticPlacement,
    VisibilityGraph,
    WaypointTrace,
)
from repro.sim import Simulator
from repro.tuples import (
    LocalTupleSpace,
    Pattern,
    Tuple,
    load_space,
    restore_space,
    save_space,
    snapshot_space,
)



# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------
def test_snapshot_roundtrip_plain_tuples():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("a", 1))
    space.out(Tuple("b", 2.5, b"raw"))
    snapshot = snapshot_space(space)
    target = LocalTupleSpace(sim, name="dst")
    assert restore_space(target, snapshot) == 2
    assert target.snapshot() == space.snapshot()


def test_snapshot_preserves_remaining_lease_time():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("mortal"), expires_at=30.0)
    sim.run(until=10.0)  # 20s of lease left
    snapshot = snapshot_space(space)

    sim2 = Simulator(start_time=1000.0)
    target = LocalTupleSpace(sim2, name="dst")
    restore_space(target, snapshot)
    sim2.run(until=1015.0)
    assert target.count(Pattern("mortal")) == 1  # 15 < 20 remaining
    sim2.run(until=1025.0)
    assert target.count(Pattern("mortal")) == 0  # expired at +20


def test_snapshot_excludes_held_entries():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("held"))
    space.out(Tuple("free"))
    entry = space.hold_match(Pattern("held"))
    assert entry is not None
    snapshot = snapshot_space(space)
    assert len(snapshot["entries"]) == 1


def test_snapshot_excludes_space_info_tuple():
    sim = Simulator()
    net = Network(sim)
    inst = TiamatInstance(sim, net, "dev")
    inst.out(Tuple("user-data", 1))
    snapshot = inst.snapshot_space()
    assert len(snapshot["entries"]) == 1


def test_instance_power_cycle_via_snapshot():
    """A device snapshots, 'reboots' as a new instance, and restores."""
    sim = Simulator(seed=11)
    net = Network(sim)
    old = TiamatInstance(sim, net, "dev")
    old.out(Tuple("kept", 42),
            requester=SimpleLeaseRequester(LeaseTerms(duration=1000.0)))
    snapshot = old.snapshot_space()
    old.shutdown()

    reborn = TiamatInstance(sim, net, "dev2")
    assert reborn.restore_space(snapshot) == 1
    peer = TiamatInstance(sim, net, "peer")
    net.visibility.set_visible("dev2", "peer")
    op = peer.rd(Pattern("kept", int))
    sim.run(until=10.0)
    assert op.result == Tuple("kept", 42)


def test_save_and_load_file(tmp_path):
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    for i in range(5):
        space.out(Tuple("row", i))
    path = str(tmp_path / "space.json")
    assert save_space(space, path) == 5
    target = LocalTupleSpace(sim, name="dst")
    assert load_space(target, path) == 5
    assert target.count(Pattern("row", int)) == 5


def test_restore_rejects_bad_snapshots():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="dst")
    with pytest.raises(SerializationError):
        restore_space(space, {"version": 99, "entries": []})
    with pytest.raises(SerializationError):
        restore_space(space, {"version": 1, "entries": [{"tuple": ["??"]}]})
    with pytest.raises(SerializationError):
        restore_space(space, "not-a-dict")


def test_snapshot_roundtrip_binary_codec():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("a", 1, 2.5, b"\x00\xff", Tuple("nested")))
    space.out(Tuple("b"), expires_at=40.0)
    snapshot = snapshot_space(space, codec="binary")
    assert snapshot["codec"] == "binary"
    # The binary form stays JSON-representable (hex strings on the wire).
    import json as _json
    reparsed = _json.loads(_json.dumps(snapshot))
    target = LocalTupleSpace(sim, name="dst")
    assert restore_space(target, reparsed) == 2
    assert target.snapshot() == space.snapshot()


def test_snapshot_rejects_unknown_codec():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    with pytest.raises(SerializationError):
        snapshot_space(space, codec="msgpack")
    with pytest.raises(SerializationError):
        restore_space(space, {"version": 1, "codec": "msgpack",
                              "entries": []})
    with pytest.raises(SerializationError):
        # Binary snapshots carry hex strings, not raw JSON lists.
        restore_space(space, {"version": 1, "codec": "binary",
                              "entries": [{"tuple": ["s", "oops"]}]})


def test_restore_is_all_or_nothing():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="dst")
    space.out(Tuple("preexisting"))
    good = snapshot_space(space)["entries"][0]
    snapshot = {"version": 1, "name": "src",
                "entries": [good, {"tuple": ["??"]}, good]}
    with pytest.raises(SerializationError):
        restore_space(space, snapshot)
    # The malformed entry mid-stream deposited *nothing*, not one tuple.
    assert space.count() == 1


def test_unsupported_snapshot_error_truncates_repr():
    sim = Simulator()
    space = LocalTupleSpace(sim, name="dst")
    huge = {"version": 99, "entries": [{"tuple": "x" * 100}] * 1000}
    with pytest.raises(SerializationError) as err:
        restore_space(space, huge)
    assert len(str(err.value)) < 300
    assert "..." in str(err.value)


def test_save_space_is_atomic(tmp_path, monkeypatch):
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("row", 1))
    path = str(tmp_path / "space.json")
    assert save_space(space, path) == 1

    # A crash mid-dump (os.replace never runs) leaves the previous file
    # intact and no temp litter in the directory.
    space.out(Tuple("row", 2))
    import repro.tuples.persistence as persistence
    monkeypatch.setattr(persistence.os, "replace",
                        lambda *a: (_ for _ in ()).throw(OSError("disk")))
    with pytest.raises(OSError):
        save_space(space, path)
    monkeypatch.undo()
    target = LocalTupleSpace(sim, name="dst")
    assert load_space(target, path) == 1        # the old snapshot survived
    leftovers = [p for p in tmp_path.iterdir()
                 if p.name.startswith(".tmp-snapshot-")]
    assert leftovers == []


def test_save_load_binary_codec_file(tmp_path):
    sim = Simulator()
    space = LocalTupleSpace(sim, name="src")
    space.out(Tuple("blob", b"\x01\x02"))
    path = str(tmp_path / "space.json")
    assert save_space(space, path, codec="binary") == 1
    target = LocalTupleSpace(sim, name="dst")
    assert load_space(target, path) == 1
    assert target.count(Pattern("blob", bytes)) == 1


# ---------------------------------------------------------------------------
# Multi-hop visibility
# ---------------------------------------------------------------------------
def chain_placement(n, spacing):
    return StaticPlacement({f"c{i}": Position(i * spacing, 0.0)
                            for i in range(n)})


def test_multihop_extends_visibility_along_chain():
    sim = Simulator()
    graph = VisibilityGraph()
    # 4 nodes in a line, each only in radio range of its neighbour.
    placement = chain_placement(4, spacing=10.0)
    driver = MultiHopVisibilityDriver(sim, graph, placement,
                                      radio_range=10.0, max_hops=2)
    driver.start()
    assert graph.visible("c0", "c1")      # 1 hop
    assert graph.visible("c0", "c2")      # 2 hops
    assert not graph.visible("c0", "c3")  # 3 hops > max


def test_one_hop_equals_direct_visibility():
    sim = Simulator()
    graph = VisibilityGraph()
    placement = chain_placement(3, spacing=10.0)
    MultiHopVisibilityDriver(sim, graph, placement,
                             radio_range=10.0, max_hops=1).start()
    assert graph.visible("c0", "c1")
    assert not graph.visible("c0", "c2")


def test_multihop_tracks_movement():
    sim = Simulator()
    graph = VisibilityGraph()
    trace = WaypointTrace()
    trace.add_keyframe("a", 0.0, 0, 0)
    trace.add_keyframe("a", 100.0, 0, 0)
    trace.add_keyframe("relay", 0.0, 10, 0)
    trace.add_keyframe("relay", 10.0, 500, 0)  # relay walks away
    trace.add_keyframe("b", 0.0, 20, 0)
    trace.add_keyframe("b", 100.0, 20, 0)
    driver = MultiHopVisibilityDriver(sim, graph, trace,
                                      radio_range=10.0, max_hops=2, tick=1.0)
    driver.start()
    assert graph.visible("a", "b")  # via the relay
    sim.run(until=20.0)
    assert not graph.visible("a", "b")  # relay gone, chain broken
    driver.stop()


def test_multihop_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        MultiHopVisibilityDriver(sim, VisibilityGraph(),
                                 chain_placement(2, 10.0),
                                 radio_range=10.0, max_hops=0)


def test_tiamat_coordinates_across_multihop_visibility():
    """End to end: A and C coordinate though only B is in radio range."""
    sim = Simulator(seed=12)
    net = Network(sim)
    a = TiamatInstance(sim, net, "c0")
    b = TiamatInstance(sim, net, "c1")
    c = TiamatInstance(sim, net, "c2")
    placement = chain_placement(3, spacing=10.0)
    MultiHopVisibilityDriver(sim, net.visibility, placement,
                             radio_range=10.0, max_hops=2).start()
    c.out(Tuple("far-away", 1))
    op = a.in_(Pattern("far-away", int))
    sim.run(until=10.0)
    assert op.result == Tuple("far-away", 1)
    assert op.source == "c2"


# ---------------------------------------------------------------------------
# Pluggable space
# ---------------------------------------------------------------------------
def test_instance_accepts_custom_space():
    sim = Simulator(seed=13)
    net = Network(sim)
    prefilled = LocalTupleSpace(sim, name="prefilled")
    prefilled.out(Tuple("legacy", 7))
    inst = TiamatInstance(sim, net, "node", space=prefilled)
    assert inst.space is prefilled
    op = inst.rdp(Pattern("legacy", int))
    sim.run(until=5.0)
    assert op.result == Tuple("legacy", 7)
