"""Reliability sublayer, fault injectors, and exactly-once under chaos.

Three layers of coverage:

* unit tests for :class:`repro.core.reliability.ReliableChannel`
  (retransmit-until-ack, deadline bounding, dedup, epoch separation) and
  for the :mod:`repro.net.faults` injectors;
* scenario tests for :class:`repro.net.faults.CrashRestartInjector`
  (the §2.4 power-cycle story through :mod:`repro.tuples.persistence`)
  and for :class:`repro.core.serving.QueryServer` cleanup;
* a Hypothesis property: a destructive ``in`` consumes each tuple
  **exactly once** under combined loss, duplication, and visibility
  churn, across seeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TiamatConfig, TiamatInstance, protocol
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    CorruptPayload,
    DuplicateFrames,
    FaultInjector,
    FaultPlan,
    GilbertElliottLoss,
    Network,
    OneWayLink,
)
from repro.net.message import Message
from repro.net.stats import DROP_CORRUPT, DROP_FAULT
from repro.net.faults import CrashRestartInjector
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple


def make_pair(loss_rate: float = 0.0, plan: FaultPlan | None = None,
              seed: int = 7, **config):
    """Two connected instances over one network."""
    sim = Simulator(seed=seed)
    net = Network(sim, loss_rate=loss_rate)
    if plan is not None:
        net.use_faults(plan)
    a = TiamatInstance(sim, net, "a", config=TiamatConfig(**config))
    b = TiamatInstance(sim, net, "b", config=TiamatConfig(**config))
    net.visibility.set_visible("a", "b")
    return sim, net, a, b


class DropFirst(FaultInjector):
    """Test helper: swallow the first ``count`` matching frames."""

    def __init__(self, count: int, **scope) -> None:
        super().__init__(**scope)
        self.count = count

    def apply(self, verdict, msg, rng) -> None:
        if self.matched <= self.count:
            verdict.drop()


# ======================================================================
# ReliableChannel
# ======================================================================
class TestReliableChannel:
    def test_retransmits_until_acked(self):
        plan = FaultPlan([DropFirst(3, kinds={protocol.REMOTE_OUT})])
        sim, net, a, b = make_pair(plan=plan, peer_timeout=5.0)
        done = a.out_at(b.handle(), Tuple("x", 1))
        sim.run(until=10.0)
        assert done.value is True
        assert b.space.count(Pattern("x", 1)) == 1
        # the three swallowed attempts were made up by retransmissions
        assert a.reliability.retransmits >= 3
        assert a.reliability.acked >= 1
        assert a.reliability.pending_count == 0

    def test_no_retries_after_deadline(self):
        """A dead peer never pins retransmission state past the deadline."""
        plan = FaultPlan([OneWayLink("a", "b")])
        sim, net, a, b = make_pair(plan=plan)
        a.reliability.send("b", {"kind": protocol.REMOTE_OUT_ACK,
                                 "rid": 1, "ok": True},
                           deadline=sim.now + 0.5)
        snapshots = {}

        def snap(label):
            snapshots[label] = plan.frames_seen

        sim.schedule(0.6, snap, "at_deadline")
        sim.run(until=30.0)
        snap("end")
        assert a.reliability.expired == 1
        assert a.reliability.pending_count == 0
        # every transmission happened before the deadline; none after
        assert snapshots["end"] == snapshots["at_deadline"]

    def test_blocking_query_retries_stop_at_lease_expiry(self):
        """Leases stay the only effort budget: a blocking `in` against a
        black-holed peer retransmits its QUERY only within its lease."""
        plan = FaultPlan([OneWayLink("a", "b")])
        sim, net, a, b = make_pair(plan=plan)
        op = a.in_(Pattern("x", Formal(int)),
                   requester=SimpleLeaseRequester(LeaseTerms(1.0, 8)))
        seen_at_expiry = {}
        sim.schedule(1.1, lambda: seen_at_expiry.setdefault(
            "frames", plan.frames_seen))
        sim.run(until=30.0)
        assert op.done and op.result is None
        assert a.reliability.pending_count == 0
        assert plan.frames_seen == seen_at_expiry["frames"]

    def test_dedup_drops_duplicated_frames(self):
        """Network duplication must not double-deposit a REMOTE_OUT."""
        plan = FaultPlan([DuplicateFrames(1.0, copies=3,
                                          kinds={protocol.REMOTE_OUT})])
        sim, net, a, b = make_pair(plan=plan)
        done = a.out_at(b.handle(), Tuple("x", 1))
        sim.run(until=5.0)
        assert done.value is True
        assert b.space.count(Pattern("x", 1)) == 1
        assert b.reliability.duplicates_dropped == 2

    def test_epoch_separates_incarnations(self):
        """A restarted instance restarts its sequence numbers; the fresh
        epoch keeps peers from dedup-swallowing the new frames."""
        sim = Simulator(seed=7)
        net = Network(sim)
        b = TiamatInstance(sim, net, "b")
        a1 = TiamatInstance(sim, net, "a")
        net.visibility.set_visible("a", "b")
        a1.out_at(b.handle(), Tuple("x", 1))
        sim.run(until=2.0)
        a1.shutdown()
        a2 = TiamatInstance(sim, net, "a")  # same name, new incarnation
        net.visibility.set_visible("a", "b")
        assert a2.reliability.epoch != a1.reliability.epoch
        a2.out_at(b.handle(), Tuple("x", 2))  # rseq restarts at 1
        sim.run(until=4.0)
        assert b.space.count(Pattern("x", Formal(int))) == 2
        assert b.reliability.duplicates_dropped == 0


# ======================================================================
# Fault injectors
# ======================================================================
def _frame(sim, src="a", dst="b", kind="query"):
    return Message(src=src, dst=dst, payload={"kind": kind}, sent_at=sim.now)


class TestFaultInjectors:
    def test_gilbert_elliott_losses_come_in_bursts(self):
        sim = Simulator(seed=11)
        net = Network(sim)
        ge = GilbertElliottLoss(p_gb=0.1, p_bg=0.4)
        plan = FaultPlan([ge])
        net.use_faults(plan)
        outcomes = [plan.judge(_frame(sim)).dropped for _ in range(2000)]
        losses = sum(outcomes)
        assert 0 < losses < 2000
        assert ge.bursts > 0
        # burstiness: consecutive-loss pairs far exceed the i.i.d.
        # expectation for the same marginal loss rate
        pairs = sum(1 for x, y in zip(outcomes, outcomes[1:]) if x and y)
        rate = losses / len(outcomes)
        assert pairs > 1.5 * rate * rate * len(outcomes)

    def test_corruption_is_caught_by_checksum(self):
        sim = Simulator(seed=3)
        net = Network(sim)
        received = []
        net.attach("a", received.append)
        net.attach("b", received.append)
        net.visibility.set_visible("a", "b")
        net.use_faults(FaultPlan([CorruptPayload(1.0)]))
        net.unicast("a", "b", {"kind": "query"})
        sim.run(until=1.0)
        assert received == []
        assert net.stats.drops_by_reason[DROP_CORRUPT] == 1

    def test_one_way_link_is_asymmetric(self):
        sim = Simulator(seed=3)
        net = Network(sim)
        got = {"a": [], "b": []}
        net.attach("a", got["a"].append)
        net.attach("b", got["b"].append)
        net.visibility.set_visible("a", "b")
        net.use_faults(FaultPlan([OneWayLink("a", "b")]))
        net.unicast("a", "b", {"kind": "query"})
        net.unicast("b", "a", {"kind": "query"})
        sim.run(until=1.0)
        assert got["b"] == []
        assert len(got["a"]) == 1
        assert net.stats.drops_by_reason[DROP_FAULT] == 1

    def test_scoping_limits_an_injector_to_its_link(self):
        sim = Simulator(seed=3)
        inj = DropFirst(10**9, link=("a", "b"))
        assert inj.matches(_frame(sim, "a", "b"))
        assert inj.matches(_frame(sim, "b", "a"))
        assert not inj.matches(_frame(sim, "a", "c"))
        kinds_inj = DropFirst(10**9, kinds={protocol.QUERY})
        assert kinds_inj.matches(_frame(sim, kind=protocol.QUERY))
        assert not kinds_inj.matches(_frame(sim, kind=protocol.CANCEL))


# ======================================================================
# Crash + restart through persistence (§2.4 power cycle, end to end)
# ======================================================================
class TestCrashRestart:
    def _build(self, seed=21):
        sim = Simulator(seed=seed)
        net = Network(sim)
        registry = {}

        def factory(name):
            inst = TiamatInstance(sim, net, name)
            for peer in registry:
                net.visibility.set_visible(name, peer)
            return inst

        for name in ("n", "peer"):
            registry[name] = factory(name)
        injector = CrashRestartInjector(sim, registry, factory)
        return sim, net, registry, injector

    def test_power_cycle_respects_lease_deadlines(self):
        sim, net, registry, injector = self._build()
        n = registry["n"]
        n.out(Tuple("short", 1),
              requester=SimpleLeaseRequester(LeaseTerms(duration=5.0)))
        n.out(Tuple("long", 1),
              requester=SimpleLeaseRequester(LeaseTerms(duration=100.0)))
        injector.power_cycle("n", crash_time=1.0, restart_time=10.0)
        sim.run(until=15.0)
        revived = registry["n"]
        assert revived is not n
        # the 5 s lease died during the 9 s outage; the 100 s one survived
        assert revived.space.count(Pattern("short", 1)) == 0
        assert revived.space.count(Pattern("long", 1)) == 1
        assert injector.tuples_reclaimed == 1
        assert injector.tuples_restored == 1
        # the survivor's deadline was re-anchored, not forgotten
        sim.run(until=120.0)
        assert registry["n"].space.count(Pattern("long", 1)) == 0

    def test_inflight_ops_against_dead_node_terminate(self):
        sim, net, registry, injector = self._build()
        peer = registry["peer"]
        op = peer.in_(Pattern("never", Formal(int)),
                      requester=SimpleLeaseRequester(LeaseTerms(3.0, 8)))
        injector.crash_at("n", 1.0)
        sim.run(until=10.0)
        assert op.done and op.result is None
        assert peer.reliability.pending_count == 0  # nothing wedged

    def test_restarted_instance_serves_restored_tuples(self):
        sim, net, registry, injector = self._build()
        registry["n"].out(Tuple("doc", 7),
                          requester=SimpleLeaseRequester(
                              LeaseTerms(duration=500.0)))
        injector.power_cycle("n", crash_time=1.0, restart_time=2.0)
        results = []

        def consumer():
            yield sim.timeout(3.0)  # after the restart
            op = registry["peer"].in_(
                Pattern("doc", Formal(int)),
                requester=SimpleLeaseRequester(LeaseTerms(10.0, 8)))
            results.append((yield op.event))

        sim.spawn(consumer())
        sim.run(until=30.0)
        assert results == [Tuple("doc", 7)]


# ======================================================================
# QueryServer cleanup audit
# ======================================================================
class TestQueryServerCleanup:
    def _serving_pair(self, **config):
        sim, net, a, b = make_pair(seed=13, **config)
        return sim, net, a, b

    def test_cancel_releases_everything(self):
        sim, net, a, b = self._serving_pair()
        op = a.in_(Pattern("x", Formal(int)),
                   requester=SimpleLeaseRequester(LeaseTerms(30.0, 8)))
        sim.run(until=2.0)
        assert b.server.active_servings == 1
        threads_before = b.leases.threads.in_use
        assert threads_before >= 1
        op.cancel()
        sim.run(until=4.0)
        assert b.server.active_servings == 0
        assert b.leases.threads.in_use == 0

    def test_origin_lease_expiry_releases_serving(self):
        sim, net, a, b = self._serving_pair()
        a.in_(Pattern("x", Formal(int)),
              requester=SimpleLeaseRequester(LeaseTerms(2.0, 8)))
        sim.run(until=1.0)
        assert b.server.active_servings == 1
        # origin lease ends at t=2; the CANCEL it sends closes the serving
        sim.run(until=4.0)
        assert b.server.active_servings == 0
        assert b.leases.threads.in_use == 0

    def test_holder_shutdown_puts_held_tuple_back(self):
        sim, net, a, b = self._serving_pair()
        b.out(Tuple("x", 1),
              requester=SimpleLeaseRequester(LeaseTerms(duration=500.0)))
        # Black-hole b's offers (QUERY_REPLY) so the serving sits with a
        # held entry and a live claim timer (discovery still works)...
        net.use_faults(FaultPlan([OneWayLink("b", "a",
                                             kinds={protocol.QUERY_REPLY})]))
        a.in_(Pattern("x", Formal(int)),
              requester=SimpleLeaseRequester(LeaseTerms(30.0, 8)))
        sim.run(until=1.0)
        assert b.server.active_servings == 1
        # ...then the holder dies: everything is released, nothing leaks.
        b.shutdown()
        assert b.server.active_servings == 0
        assert b.leases.threads.in_use == 0
        assert b.space.count(Pattern("x", 1)) == 1  # held entry put back
        sim.run(until=40.0)  # and nothing explodes afterwards

    def test_claim_timeout_puts_tuple_back(self):
        sim, net, a, b = self._serving_pair(claim_timeout=1.0,
                                            reliability_enabled=False)
        b.out(Tuple("x", 1),
              requester=SimpleLeaseRequester(LeaseTerms(duration=500.0)))
        # a's CLAIM_ACCEPT frames never arrive (and reliability is off,
        # reproducing the prototype): the hold must self-release.
        net.use_faults(FaultPlan([OneWayLink("a", "b",
                                             kinds={protocol.CLAIM_ACCEPT})]))
        op = a.in_(Pattern("x", Formal(int)),
                   requester=SimpleLeaseRequester(LeaseTerms(5.0, 8)))
        sim.run(until=10.0)
        assert op.done and op.result == Tuple("x", 1)  # origin believes it won
        assert b.server.offers_put_back == 1           # holder disagrees
        assert b.space.count(Pattern("x", 1)) == 1     # the ghost, measurable
        assert b.server.active_servings == 0


# ======================================================================
# The property: exactly-once under loss + duplication + churn
# ======================================================================
ITEMS = 6


def run_chaos(seed: int, loss: float, dup: float, churn: bool) -> None:
    sim = Simulator(seed=seed)
    net = Network(sim, loss_rate=loss)
    injectors = []
    if dup > 0:
        injectors.append(DuplicateFrames(dup))
    if injectors:
        net.use_faults(FaultPlan(injectors))
    # The exactly-once guarantee is parametric: the claim window must
    # cover enough retransmission attempts that a CLAIM_ACCEPT reaching
    # the holder before put-back is (near-)certain.  A dense schedule
    # (~12 attempts per claim window) puts the residual Two-Generals
    # probability at ~0.25^12 even at the worst loss rate tested.
    config = dict(claim_timeout=2.5, retry_initial=0.05,
                  retry_max_interval=0.2)
    server = TiamatInstance(sim, net, "server",
                            config=TiamatConfig(**config))
    client = TiamatInstance(sim, net, "client",
                            config=TiamatConfig(**config))
    net.visibility.set_visible("server", "client")
    for i in range(ITEMS):
        server.out(Tuple("item", i),
                   requester=SimpleLeaseRequester(LeaseTerms(duration=5000.0)))

    if churn:
        # deterministic visibility flapping while the ops run
        def flapper():
            up = True
            for _ in range(12):
                yield sim.timeout(0.9)
                up = not up
                net.visibility.set_visible("server", "client", up)
            net.visibility.set_visible("server", "client", True)
        sim.spawn(flapper())

    consumed = []

    def consumer():
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        for i in range(ITEMS):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(4.0, 8)))
            result = yield op.event
            if result is not None:
                consumed.append(i)
        yield sim.timeout(5.0)  # let claim windows + retransmits settle

    process = sim.spawn(consumer())
    sim.run(until=300.0)
    assert process.triggered, "scenario never settled"
    assert server.server.active_servings == 0

    for i in range(ITEMS):
        took = 1 if i in consumed else 0
        resident = server.space.count(Pattern("item", i))
        assert took + resident == 1, (
            f"item {i}: consumed {took} times, resident {resident} "
            f"(seed={seed} loss={loss} dup={dup} churn={churn})")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.sampled_from([0.0, 0.1, 0.25]),
       dup=st.sampled_from([0.0, 0.25]),
       churn=st.booleans())
def test_destructive_in_is_exactly_once_under_chaos(seed, loss, dup, churn):
    run_chaos(seed, loss, dup, churn)
