"""Flight recorder: ring mechanics, passivity, dumps, canary round trip.

Covers the PR's acceptance criteria for `repro.obs.flight`:

* ring wraparound keeps exactly the last `capacity` events, oldest first;
* recording is observationally passive — a seeded chaos run is
  bit-identical with the recorder on (default) and off (REPRO_FLIGHT=off);
* dumps are deterministic under churn and round-trip through
  ``dump_to`` / ``load_flight_dump`` / ``render_flight``;
* an injected canary bug (``REPRO_CHECK_CANARY=ghost``) produces a
  black box that pinpoints the violation, written to ``$REPRO_FLIGHT_DIR``
  and renderable by ``repro flight show``.
"""

import json

import pytest

from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FLIGHT_DUMP_VERSION,
    FlightRecorder,
    FlightRing,
    dump_to_env_dir,
    load_flight_dump,
    render_flight,
)

from tests.test_obs import _chaos_run


# ----------------------------------------------------------------------
# Ring mechanics
# ----------------------------------------------------------------------
def test_ring_wraparound_keeps_last_capacity_events():
    ring = FlightRing("n", capacity=64)
    for i in range(100):
        ring.append(float(i), "note", f"op#{i}", "in", None, None)
    assert len(ring) == 64
    assert ring.recorded == 100
    events = ring.events()
    # Oldest-first, and exactly the last 64 of the 100 appends survive.
    assert [e["t"] for e in events] == [float(i) for i in range(36, 100)]
    assert events[0]["op_id"] == "op#36"
    assert events[-1]["op_id"] == "op#99"


def test_ring_before_wraparound_is_prefix_ordered():
    ring = FlightRing("n", capacity=128)
    for i in range(10):
        ring.append(float(i), "send")
    assert len(ring) == 10
    assert [e["t"] for e in ring.events()] == [float(i) for i in range(10)]


def test_ring_capacity_floor_is_postmortem_window():
    # The acceptance bar asks for a >= 64-event post-mortem window.
    with pytest.raises(ValueError):
        FlightRing("n", capacity=32)
    assert DEFAULT_CAPACITY >= 64


def test_disabled_recorder_hands_out_null_rings():
    recorder = FlightRecorder(lambda: 0.0, enabled=False)
    ring = recorder.ring("a")
    ring.append(1.0, "send")
    assert len(ring) == 0 and ring.events() == []
    box = recorder.dump("test")
    assert box["nodes"] == {}


def test_env_var_disables_recorder(monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT", "off")
    assert FlightRecorder(lambda: 0.0).enabled is False
    monkeypatch.delenv("REPRO_FLIGHT")
    assert FlightRecorder(lambda: 0.0).enabled is True


# ----------------------------------------------------------------------
# Recording during a real run
# ----------------------------------------------------------------------
def test_chaos_run_populates_instance_and_network_events():
    sim, net, tracer, ops, consumed = _chaos_run(seed=11)
    recorder = sim.obs.flight
    assert set(recorder.rings) >= {"server", "client"}
    client_codes = {e["event"] for e in recorder.ring("client").events()}
    assert {"op_start", "op_end"} <= client_codes
    all_codes = set()
    for ring in recorder.rings.values():
        all_codes |= {e["event"] for e in ring.events()}
    # The network layer lands frame lifecycle events on the same rings.
    assert {"send", "deliver"} <= all_codes


def test_flight_recording_is_passive(monkeypatch):
    """Same seed with the recorder on and off: identical outcome."""
    results = []
    recorded = []
    for env in ("", "off"):
        if env:
            monkeypatch.setenv("REPRO_FLIGHT", env)
        else:
            monkeypatch.delenv("REPRO_FLIGHT", raising=False)
        sim, net, tracer, ops, consumed = _chaos_run(seed=77, traced=False)
        results.append((sim.now, net.stats.total_messages,
                        net.stats.total_dropped, tuple(consumed)))
        recorded.append(sum(r.recorded for r in sim.obs.flight.rings.values()))
    assert results[0] == results[1]
    assert recorded[0] > 0       # enabled run actually kept a black box
    assert recorded[1] == 0      # disabled run recorded nothing at all


def test_dump_is_deterministic_under_churn():
    """Same seed, fresh process: byte-identical dump, twice.

    Run in subprocesses because id counters (op ids, request ids,
    reliability epochs) are process-global and their string lengths feed
    the size-dependent latency model — a fresh interpreter is the state
    a reproduction actually starts from.
    """
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).resolve().parents[1]
    script = (
        "import hashlib, json\n"
        "from tests.test_obs import _chaos_run\n"
        "sim, net, tracer, ops, consumed = _chaos_run(seed=5, traced=False)\n"
        "blob = json.dumps(sim.obs.flight.dump('churn'), sort_keys=True)\n"
        "print(hashlib.sha256(blob.encode()).hexdigest())\n"
    )
    digests = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", script], cwd=root, text=True,
            capture_output=True, check=True,
            env={"PYTHONPATH": f"src:{root}", "PATH": "/usr/bin:/bin"})
        digests.append(proc.stdout.strip())
    assert digests[0] and digests[0] == digests[1]


# ----------------------------------------------------------------------
# Dump round trip
# ----------------------------------------------------------------------
def test_dump_to_load_and_render(tmp_path):
    sim, net, tracer, ops, consumed = _chaos_run(seed=3, traced=False)
    path = tmp_path / "flight.json"
    sim.obs.flight.dump_to(str(path), "unit-test", detail={"seed": 3})
    box = load_flight_dump(str(path))
    assert box["version"] == FLIGHT_DUMP_VERSION
    assert box["reason"] == "unit-test"
    assert box["detail"] == {"seed": 3}
    assert set(box["nodes"]) >= {"server", "client"}

    text = render_flight(box)
    assert "unit-test" in text
    assert "node client" in text and "node server" in text

    # Single-op lane: merged across nodes, time-ordered.
    op_id = ops[0].op_id
    lane = render_flight(box, op_id=op_id)
    assert f"op {op_id}" in lane
    tail = render_flight(box, last=5)
    assert tail.count("\n") < text.count("\n")


def test_load_rejects_non_dumps(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(ValueError):
        load_flight_dump(str(bad))
    versioned = tmp_path / "versioned.json"
    versioned.write_text(json.dumps({"version": 99, "nodes": {}}))
    with pytest.raises(ValueError):
        load_flight_dump(str(versioned))


def test_dump_to_env_dir(tmp_path, monkeypatch):
    recorder = FlightRecorder(lambda: 1.0)
    recorder.ring("a").append(0.5, "send")
    monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
    assert dump_to_env_dir(recorder, "no-dir") is None
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
    path = dump_to_env_dir(recorder, "unit test!", detail={"k": 1})
    assert path is not None and path.startswith(str(tmp_path))
    box = load_flight_dump(path)
    assert box["nodes"]["a"]["events"][0]["event"] == "send"


# ----------------------------------------------------------------------
# Acceptance: canary bug -> violation -> replayable black box
# ----------------------------------------------------------------------
def test_canary_violation_captures_black_box(tmp_path, monkeypatch, capsys):
    """REPRO_CHECK_CANARY=ghost trips an oracle; the dump pinpoints it."""
    monkeypatch.setenv("REPRO_CHECK_CANARY", "ghost")
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
    from repro.check.explorer import run_schedule

    outcome = None
    for seed in range(10):
        candidate = run_schedule("contended_take", seed)
        if candidate.violations:
            outcome = candidate
            break
    assert outcome is not None, "ghost canary never produced a violation"
    assert outcome.violations[0].oracle == "ghost_read"

    dumps = sorted(tmp_path.glob("flight-violation-*.json"))
    assert dumps, "violation did not write a flight dump to REPRO_FLIGHT_DIR"
    box = load_flight_dump(str(dumps[0]))
    assert box["reason"] == "violation-ghost_read"
    assert box["detail"]["oracle"] == "ghost_read"
    assert box["detail"]["event_index"] == outcome.violations[0].event_index
    assert box["nodes"], "dump captured no node rings"
    assert sum(len(n["events"]) for n in box["nodes"].values()) > 0
    # Every ring retains a >= 64-event post-mortem window.
    assert all(n["capacity"] >= 64 for n in box["nodes"].values())

    # ... and `repro flight show` renders it.
    from repro.cli import main
    assert main(["flight", "show", str(dumps[0]), "--last", "64"]) == 0
    shown = capsys.readouterr().out
    assert "ghost_read" in shown
