"""Large-scale integration: global invariants over long, churning runs."""


from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import ChurnInjector, Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple


def build_cluster(sim, n, config=None, loss=0.0):
    net = Network(sim, loss_rate=loss)
    names = [f"n{i}" for i in range(n)]
    instances = {name: TiamatInstance(sim, net, name, config=config)
                 for name in names}
    net.visibility.connect_clique(names)
    return net, names, instances


def test_forty_nodes_exactly_once_under_churn():
    """40 nodes, churn, 120 tuples: every tuple consumed at most once."""
    sim = Simulator(seed=81)
    config = TiamatConfig(propagate_mode="continuous")
    net, names, instances = build_cluster(sim, 40, config=config)
    churn = ChurnInjector(sim, net.visibility)
    for name in names:
        churn.auto_churn(name, mean_uptime=30.0, mean_downtime=5.0)

    ops = []

    def producer():
        for i in range(120):
            instances[names[i % 40]].out(
                Tuple("unit", i),
                requester=SimpleLeaseRequester(LeaseTerms(duration=120.0)))
            yield sim.timeout(0.5)

    def consumers():
        for k in range(160):  # more consumers than tuples
            who = instances[names[(k * 7) % 40]]
            ops.append(who.in_(
                Pattern("unit", Formal(int)),
                requester=SimpleLeaseRequester(LeaseTerms(10.0, 6))))
            yield sim.timeout(0.4)

    sim.spawn(producer())
    sim.spawn(consumers())
    sim.run(until=400.0)

    assert all(op.done for op in ops)
    consumed = [op.result[1] for op in ops if op.result is not None]
    assert len(consumed) == len(set(consumed)), "a tuple was consumed twice"
    assert len(consumed) > 60  # plenty of cross-node coordination happened


def test_same_seed_is_bit_identical():
    """Determinism: two runs with one seed produce identical statistics."""

    def run(seed):
        sim = Simulator(seed=seed)
        net, names, instances = build_cluster(sim, 8)
        churn = ChurnInjector(sim, net.visibility)
        for name in names:
            churn.auto_churn(name, mean_uptime=10.0, mean_downtime=3.0)
        results = []

        def driver():
            for i in range(30):
                instances[names[i % 8]].out(Tuple("d", i))
                op = instances[names[(i + 4) % 8]].inp(Pattern("d", i))
                tup = yield op.event
                results.append(tup is not None)
                yield sim.timeout(1.0)

        sim.spawn(driver())
        sim.run(until=200.0)
        return (results, net.stats.total_messages, net.stats.total_bytes,
                sim.events_processed)

    assert run(123) == run(123)
    assert run(123) != run(124)


def test_sustained_load_does_not_leak_state():
    """After every lease has ended, the instance's registries are empty."""
    sim = Simulator(seed=82)
    net, names, instances = build_cluster(sim, 4)

    def driver():
        for i in range(100):
            who = instances[names[i % 4]]
            who.out(Tuple("w", i),
                    requester=SimpleLeaseRequester(LeaseTerms(duration=5.0)))
            who.in_(Pattern("w", Formal(int)),
                    requester=SimpleLeaseRequester(LeaseTerms(2.0, 4)))
            yield sim.timeout(0.5)

    sim.spawn(driver())
    sim.run(until=300.0)
    for inst in instances.values():
        assert inst.leases.active_count == 0
        assert inst.server.active_servings == 0
        assert len(inst._ops) == 0
        assert inst.space.waiter_count == 0
        # Only the infrastructure space-info tuple remains.
        assert inst.space.count() == 1


def test_hundred_node_probe_sweep():
    """One probe across a 100-node clique terminates within its lease."""
    sim = Simulator(seed=83)
    net, names, instances = build_cluster(sim, 100)
    instances["n99"].out(Tuple("needle"),
                         requester=SimpleLeaseRequester(
                             LeaseTerms(duration=10_000.0)))
    op = instances["n0"].rdp(
        Pattern("needle"),
        requester=SimpleLeaseRequester(LeaseTerms(duration=120.0,
                                                  max_remotes=128)))
    sim.run(until=300.0)
    assert op.done and op.result == Tuple("needle")
    assert op.source == "n99"


def test_partition_heals_and_coordination_resumes():
    sim = Simulator(seed=84)
    config = TiamatConfig(propagate_mode="continuous")
    net, names, instances = build_cluster(sim, 6, config=config)
    left, right = names[:3], names[3:]
    # Partition: clear all cross-group edges.
    for a in left:
        for b in right:
            net.visibility.set_visible(a, b, False)
    instances[right[0]].out(Tuple("island"),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=500.0)))
    op = instances[left[0]].in_(
        Pattern("island"),
        requester=SimpleLeaseRequester(LeaseTerms(duration=60.0, max_remotes=8)))
    sim.run(until=10.0)
    assert not op.done  # unreachable across the partition
    # Heal.
    for a in left:
        for b in right:
            net.visibility.set_visible(a, b, True)
    sim.run(until=60.0)
    assert op.result == Tuple("island")
