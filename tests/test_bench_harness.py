"""Unit tests for the bench harness: adapters, reporting, scenario builder."""


from repro.bench import (
    CoreLimeAgentAdapter,
    Table,
    TiamatSpaceAdapter,
    build_system,
    format_series,
)
from repro.baselines import build_corelime_system
from repro.core import TiamatInstance
from repro.leasing import DenyAllPolicy
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


# ---------------------------------------------------------------------------
# Table / series rendering
# ---------------------------------------------------------------------------
def test_table_render_alignment():
    table = Table("demo", ["col", "value"], caption="a caption")
    table.add_row("short", 1)
    table.add_row("much-longer-cell", 3.14159)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert lines[1] == "a caption"
    assert "col" in lines[2] and "value" in lines[2]
    assert "3.14" in text
    # All data lines share one width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_table_float_formatting():
    table = Table("t", ["x"])
    table.add_row(0.123456789)
    assert "0.123" in table.render()


def test_table_show_prints(capsys):
    table = Table("printed", ["a"])
    table.add_row(1)
    table.show()
    assert "printed" in capsys.readouterr().out


def test_format_series():
    line = format_series("speedup", [(1, 1.0), (2, 1.91)])
    assert line == "speedup: (1, 1) (2, 1.91)"


# ---------------------------------------------------------------------------
# Tiamat adapter
# ---------------------------------------------------------------------------
def test_tiamat_adapter_roundtrip():
    sim = Simulator(seed=1)
    net = Network(sim)
    a = TiamatSpaceAdapter(TiamatInstance(sim, net, "a"))
    b = TiamatSpaceAdapter(TiamatInstance(sim, net, "b"))
    net.visibility.set_visible("a", "b")
    a.out(Tuple("x", 1))
    op = b.in_(Pattern("x", int), timeout=10.0)
    sim.run(until=20.0)
    assert op.result == Tuple("x", 1)
    assert op.error is None


def test_tiamat_adapter_timeout_maps_to_lease():
    sim = Simulator(seed=2)
    net = Network(sim)
    a = TiamatSpaceAdapter(TiamatInstance(sim, net, "a"))
    op = a.in_(Pattern("never"), timeout=3.0)
    sim.run(until=2.0)
    assert not op.done
    sim.run(until=5.0)
    assert op.done and op.result is None and op.error == "lease expired"


def test_tiamat_adapter_stored_excludes_space_info():
    sim = Simulator(seed=3)
    net = Network(sim)
    a = TiamatSpaceAdapter(TiamatInstance(sim, net, "a"))
    assert a.stored_tuples() == 0
    a.out(Tuple("x"))
    assert a.stored_tuples() == 1


def test_tiamat_adapter_swallows_refused_deposits():
    sim = Simulator(seed=4)
    net = Network(sim)
    a = TiamatSpaceAdapter(TiamatInstance(sim, net, "a", policy=DenyAllPolicy()))
    a.out(Tuple("x"))  # must not raise
    assert a.stored_tuples() <= 1


# ---------------------------------------------------------------------------
# CoreLime agent adapter
# ---------------------------------------------------------------------------
def test_corelime_adapter_tours_peers():
    sim = Simulator(seed=5)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b", "c"])
    net.visibility.connect_clique(["a", "b", "c"])
    adapters = {n: CoreLimeAgentAdapter(h, ["a", "b", "c"])
                for n, h in hosts.items()}
    hosts["c"].out(Tuple("hidden", 1))
    op = adapters["a"].inp(Pattern("hidden", int))
    sim.run(until=10.0)
    assert op.result == Tuple("hidden", 1)
    assert hosts["c"].space.count(Pattern("hidden", int)) == 0


def test_corelime_adapter_blocking_retries():
    sim = Simulator(seed=6)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    adapters = {n: CoreLimeAgentAdapter(h, ["a", "b"]) for n, h in hosts.items()}
    op = adapters["a"].in_(Pattern("later"), timeout=20.0)
    sim.schedule(5.0, hosts["b"].out, Tuple("later"))
    sim.run(until=30.0)
    assert op.result == Tuple("later")


def test_corelime_adapter_times_out():
    sim = Simulator(seed=7)
    net = Network(sim)
    hosts = build_corelime_system(sim, net, ["a", "b"])
    net.visibility.set_visible("a", "b")
    adapter = CoreLimeAgentAdapter(hosts["a"], ["a", "b"])
    op = adapter.rd(Pattern("never"), timeout=5.0)
    sim.run(until=30.0)
    assert op.done and op.result is None


# ---------------------------------------------------------------------------
# build_system
# ---------------------------------------------------------------------------
def test_build_system_central_has_extra_server():
    sim, net, nodes = build_system("central", 3)
    assert set(nodes) == {"n0", "n1", "n2"}
    assert net.visibility.is_up("server")


def test_build_system_lime_engages_up_to_capacity():
    sim, net, nodes = build_system("lime", 8)
    sim.run(until=20.0)
    engaged = sum(1 for h in nodes.values() if h.engaged)
    assert engaged == 6


def test_build_system_disconnected_option():
    sim, net, nodes = build_system("tiamat", 3, connect=False)
    assert net.visibility.neighbors("n0") == []
