"""More property tests: kernel ordering guarantees and lease accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.leasing import (
    AcceptAnythingRequester,
    LeaseManager,
    OperationKind,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Kernel: execution order is (time, insertion order), always
# ---------------------------------------------------------------------------
delays = st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                  min_size=1, max_size=50)


@given(delays)
def test_callbacks_run_in_nondecreasing_time(ds):
    sim = Simulator()
    fired = []
    for d in ds:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
def test_equal_times_preserve_insertion_order(ds):
    sim = Simulator()
    fired = []
    for i, d in enumerate(ds):
        quantized = round(d)  # force collisions
        sim.schedule(float(quantized), lambda i=i: fired.append(i))
    sim.run()
    # Group by quantized time: within each group, insertion order holds.
    by_time = {}
    for i, d in enumerate(ds):
        by_time.setdefault(round(d), []).append(i)
    expected = [i for t in sorted(by_time) for i in by_time[t]]
    assert fired == expected


@given(delays, st.integers(min_value=0, max_value=49))
def test_cancelled_timer_never_fires(ds, victim_index):
    sim = Simulator()
    fired = []
    timers = [sim.schedule(d, lambda i=i: fired.append(i))
              for i, d in enumerate(ds)]
    victim = timers[victim_index % len(timers)]
    victim.cancel()
    sim.run()
    assert (victim_index % len(ds)) not in fired
    assert len(fired) == len(ds) - 1


@given(st.lists(st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
                min_size=1, max_size=20))
def test_run_until_horizon_is_respected(ds):
    sim = Simulator()
    fired = []
    for d in ds:
        sim.schedule(d, lambda d=d: fired.append(d))
    horizon = 25.0
    sim.run(until=horizon)
    assert all(d <= horizon for d in fired)
    assert sim.now == max(horizon, sim.now)
    sim.run()
    assert sorted(fired) == sorted(ds)


# ---------------------------------------------------------------------------
# Lease manager: storage accounting never drifts
# ---------------------------------------------------------------------------
class LeaseAccounting(RuleBasedStateMachine):
    """Random grant/release/revoke/expire sequences vs a reference sum."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator(seed=0)
        self.manager = LeaseManager(self.sim, storage_capacity=100_000)
        self.live = {}  # lease -> committed bytes

    @rule(size=st.integers(min_value=0, max_value=500))
    def grant(self, size):
        committed = sum(self.live.values())
        if committed + size > 100_000:
            return
        lease = self.manager.negotiate(AcceptAnythingRequester(),
                                       OperationKind.OUT, storage_needed=size)
        self.live[lease] = size

    @rule()
    def release_one(self):
        if self.live:
            lease = next(iter(self.live))
            del self.live[lease]
            lease.release()

    @rule()
    def revoke_one(self):
        if self.live:
            lease = next(iter(self.live))
            del self.live[lease]
            self.manager.revoke(lease)

    @rule(dt=st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
    def advance_time(self, dt):
        self.sim.run(until=self.sim.now + dt)
        # Drop reference entries for leases that expired meanwhile.
        for lease in [l for l in self.live if not l.active]:
            del self.live[lease]

    @invariant()
    def storage_matches_reference(self):
        assert self.manager.storage_used == sum(self.live.values())

    @invariant()
    def active_count_matches(self):
        assert self.manager.active_count == len(self.live)


TestLeaseAccounting = LeaseAccounting.TestCase
TestLeaseAccounting.settings = settings(max_examples=40,
                                        stateful_step_count=40,
                                        deadline=None)
