"""Property tests over the distributed middleware itself.

Hypothesis generates small distributed *programs* (interleaved deposits,
takes, and visibility flips across three instances); after executing one,
global conservation laws must hold:

* every value consumed was produced, and consumed at most once;
* tuples neither duplicate nor vanish: produced = consumed + resident
  (+ expired, which the long deposit leases here rule out).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple

NODES = ("n0", "n1", "n2")

commands = st.lists(
    st.one_of(
        st.tuples(st.just("out"), st.sampled_from(NODES),
                  st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("inp"), st.sampled_from(NODES),
                  st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("take_any"), st.sampled_from(NODES)),
        st.tuples(st.just("flip"), st.sampled_from(NODES),
                  st.sampled_from(NODES)),
        st.tuples(st.just("tick")),
    ),
    min_size=1, max_size=25,
)


def execute(program, propagate_mode):
    sim = Simulator(seed=5)
    net = Network(sim)
    config = TiamatConfig(propagate_mode=propagate_mode)
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in NODES}
    net.visibility.connect_clique(list(NODES))

    produced = Counter()
    ops = []

    def driver():
        for command in program:
            kind = command[0]
            if kind == "out":
                _, node, value = command
                instances[node].out(
                    Tuple("v", value),
                    requester=SimpleLeaseRequester(
                        LeaseTerms(duration=100_000.0)))
                produced[value] += 1
            elif kind == "inp":
                _, node, value = command
                ops.append(instances[node].inp(
                    Pattern("v", value),
                    requester=SimpleLeaseRequester(LeaseTerms(2.0, 8))))
            elif kind == "take_any":
                _, node = command
                ops.append(instances[node].in_(
                    Pattern("v", Formal(int)),
                    requester=SimpleLeaseRequester(LeaseTerms(3.0, 8))))
            elif kind == "flip":
                _, a, b = command
                if a != b:
                    currently = net.visibility.visible(a, b)
                    net.visibility.set_visible(a, b, not currently)
            elif kind == "tick":
                yield sim.timeout(1.0)
        # Let every outstanding operation run to its lease bound.
        yield sim.timeout(30.0)

    process = sim.spawn(driver())
    # The horizon comfortably covers every op lease (<= 3s each) plus the
    # final grace period, but stays far below the deposits' (policy-capped)
    # 3600s lifetime, so nothing expires before we take the census.
    sim.run(until=500.0)
    assert process.triggered

    consumed = Counter()
    for op in ops:
        assert op.done, "an operation never terminated"
        if op.result is not None:
            consumed[op.result[1]] += 1
    resident = Counter()
    for inst in instances.values():
        for tup in inst.space.snapshot():
            if tup[0] == "v":
                resident[tup[1]] += 1
    return produced, consumed, resident


@settings(max_examples=25, deadline=None)
@given(commands)
def test_conservation_start_mode(program):
    produced, consumed, resident = execute(program, "start")
    for value in range(10):
        assert consumed[value] + resident[value] == produced[value], (
            f"value {value}: produced={produced[value]} "
            f"consumed={consumed[value]} resident={resident[value]}")


@settings(max_examples=25, deadline=None)
@given(commands)
def test_conservation_continuous_mode(program):
    produced, consumed, resident = execute(program, "continuous")
    for value in range(10):
        assert consumed[value] + resident[value] == produced[value]
