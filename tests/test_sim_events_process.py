"""Unit tests for events, composite conditions, and processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import AllOf, AnyOf, Simulator


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------
def test_event_succeed_value_and_flags():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered
    ev.succeed(99)
    assert ev.triggered and ev.ok and ev.value == 99


def test_event_fail_flags():
    sim = Simulator()
    ev = sim.event()
    exc = RuntimeError("nope")
    ev.fail(exc)
    ev.defuse()
    assert ev.triggered and not ev.ok and ev.value is exc
    sim.run()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event().succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_callback_runs_at_trigger_instant():
    sim = Simulator()
    seen = []
    ev = sim.event()
    ev.add_callback(lambda e: seen.append((sim.now, e.value)))
    sim.schedule(4.0, ev.succeed, "v")
    sim.run()
    assert seen == [(4.0, "v")]


def test_callback_added_after_trigger_still_runs():
    sim = Simulator()
    seen = []
    ev = sim.event()
    sim.schedule(1.0, ev.succeed, "v")
    sim.run()
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_remove_callback():
    sim = Simulator()
    seen = []
    ev = sim.event()
    cb = lambda e: seen.append(1)  # noqa: E731
    ev.add_callback(cb)
    ev.remove_callback(cb)
    ev.succeed()
    sim.run()
    assert seen == []


def test_timeout_fires_at_deadline():
    sim = Simulator()
    to = sim.timeout(2.5, "done")
    sim.run()
    assert to.triggered and to.value == "done"
    assert sim.now == 2.5


def test_timeout_cancel():
    sim = Simulator()
    to = sim.timeout(2.5)
    to.cancel()
    sim.run()
    assert not to.triggered


# ---------------------------------------------------------------------------
# AnyOf / AllOf
# ---------------------------------------------------------------------------
def test_anyof_triggers_on_first():
    sim = Simulator()
    fast, slow = sim.timeout(1.0, "fast"), sim.timeout(9.0, "slow")
    any_ = AnyOf(sim, [fast, slow])
    sim.run(until=2.0)
    assert any_.triggered
    assert any_.value == {fast: "fast"}


def test_allof_waits_for_all():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    all_ = AllOf(sim, [a, b])
    sim.run(until=2.0)
    assert not all_.triggered
    sim.run()
    assert all_.triggered and all_.value == {a: "a", b: "b"}


def test_empty_condition_succeeds_immediately():
    sim = Simulator()
    assert AnyOf(sim, []).triggered
    assert AllOf(sim, []).triggered


def test_condition_propagates_failure():
    sim = Simulator()
    ok, bad = sim.event(), sim.event()
    all_ = AllOf(sim, [ok, bad])
    all_.defuse()
    bad.fail(ValueError("x"))
    sim.run()
    assert all_.triggered and not all_.ok
    assert isinstance(all_.value, ValueError)


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------
def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "finished"

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.triggered and p.value == "finished"
    assert sim.now == 3.0


def test_process_receives_event_value():
    sim = Simulator()
    got = []

    def proc(sim, ev):
        value = yield ev
        got.append(value)

    ev = sim.event()
    sim.spawn(proc(sim, ev))
    sim.schedule(1.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 7

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return value * 2

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == 14


def test_spawn_is_asynchronous():
    sim = Simulator()
    order = []

    def proc(sim):
        order.append("proc")
        yield sim.timeout(0)

    sim.spawn(proc(sim))
    order.append("after-spawn")
    sim.run()
    assert order == ["after-spawn", "proc"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("boom")

    sim.spawn(bad(sim))
    with pytest.raises(KeyError):
        sim.run()


def test_waited_on_failure_is_rethrown_in_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("boom")

    def parent(sim):
        try:
            yield sim.spawn(bad(sim))
        except KeyError:
            return "caught"

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == "caught"


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except ProcessInterrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    p = sim.spawn(sleeper(sim))
    sim.schedule(3.0, p.interrupt, "revoked")
    sim.run()
    assert p.value == ("interrupted", 3.0, "revoked")


def test_interrupt_detaches_from_awaited_event():
    sim = Simulator()
    resumed = []

    def sleeper(sim, ev):
        try:
            yield ev
            resumed.append("event")
        except ProcessInterrupt:
            yield sim.timeout(10.0)
            resumed.append("post-interrupt")

    ev = sim.event()
    p = sim.spawn(sleeper(sim, ev))
    sim.schedule(1.0, p.interrupt)
    sim.schedule(2.0, ev.succeed)  # must NOT resume the process a second time
    sim.run()
    assert resumed == ["post-interrupt"]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_process_with_anyof_race():
    sim = Simulator()

    def racer(sim):
        work = sim.timeout(5.0, "work")
        deadline = sim.timeout(2.0, "deadline")
        result = yield AnyOf(sim, [work, deadline])
        return "deadline" in result.values()

    p = sim.spawn(racer(sim))
    sim.run()
    assert p.value is True
