#!/usr/bin/env python
"""Micro-ops perf baseline harness + CI regression gate.

Runs the ``repro.bench.perf`` suite (codec ns/op, scan ns/op, frames/op
and bytes/op on the T1 MRU workload) and either records the result as the
committed baseline or checks a fresh run against it.

Usage::

    python benchmarks/perf_baseline.py                # measure + print
    python benchmarks/perf_baseline.py --rebaseline   # rewrite BENCH_micro.json
    python benchmarks/perf_baseline.py --check        # gate: exit 1 on >25% regression
    python benchmarks/perf_baseline.py --check --inject-slowdown 2
                                                      # prove the gate trips

**Rebaseline policy** (the escape hatch): when a PR intentionally changes
performance (new hardware assumptions, heavier correctness checks, a
deliberate trade), run ``--rebaseline`` locally, commit the updated
``BENCH_micro.json`` in the same PR, and say why in the PR description.
The gate compares against the *committed* baseline, so the rebaseline and
the change it excuses are reviewed together.  Never rebaseline to silence
a regression you cannot explain.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import perf  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_micro.json")


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def runner_fingerprint() -> dict:
    """Where a baseline was measured — context for reviewing a regression
    (timing metrics move with the hardware; the gate's 25% tolerance
    assumes baseline and check ran on comparable runners)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def build_document(metrics: dict) -> dict:
    return {
        "schema": perf.SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "runner": runner_fingerprint(),
        "units": {"*_ns": "median ns/op", "*_per_op": "per logical operation"},
        "metrics": metrics,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON path (default BENCH_micro.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the measured metrics as the new baseline")
    parser.add_argument("--tolerance", type=float,
                        default=perf.DEFAULT_TOLERANCE,
                        help="relative regression tolerated (default 0.25)")
    parser.add_argument("--inject-slowdown", type=int, default=1,
                        metavar="N",
                        help="run every timed operation N times per iteration "
                             "(gate-verification only)")
    args = parser.parse_args(argv)

    if args.inject_slowdown != 1:
        print(f"[perf] synthetic slowdown x{args.inject_slowdown} "
              "(gate verification mode)")
    metrics = perf.collect(slowdown=args.inject_slowdown)

    baseline = None
    if args.check or (os.path.exists(args.baseline) and not args.rebaseline):
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            baseline = None

    print(perf.render_table(metrics, baseline))

    if args.rebaseline:
        doc = build_document(metrics)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[perf] baseline written to {args.baseline}")
        return 0

    if args.check:
        if baseline is None:
            print(f"\n[perf] FAIL: no baseline at {args.baseline} "
                  "(run --rebaseline and commit it)")
            return 1
        problems = perf.compare(baseline, metrics, tolerance=args.tolerance)
        if problems:
            print("\n[perf] FAIL: regression gate tripped:")
            for line in problems:
                print(f"  - {line}")
            print("\nIf this change is intentional, rebaseline per the "
                  "policy in this script's docstring.")
            return 1
        print(f"\n[perf] OK: all metrics within {args.tolerance:.0%} "
              "of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
