#!/usr/bin/env python
"""T12 agent-coordination baseline harness + CI gate (churn resilience).

Runs the T12 comparison — the multi-agent blackboard vs the centralized
master/worker baseline, each with and without 20% agent churn — and
either records the result as the committed baseline or checks a fresh
run against it.  The metrics come from a seeded discrete-event
simulation, so they are exactly reproducible; the gate's tolerance only
absorbs deliberate protocol changes, not runner noise.

What the gate proves: the blackboard's lease-expiry re-offer keeps
goodput within 30% of the zero-churn arm under 20% downtime
(``bb_churn_goodput_loss``), the completion-token gate keeps duplicate
completions at exactly zero (``bb_duplicates_churn``, absolute), ballots
keep deciding promptly (``bb_consensus_ttc_s``), and per-task cost in
both arms stays bounded (``*_secs_per_task``).

Usage::

    python benchmarks/agents_baseline.py                # measure + print
    python benchmarks/agents_baseline.py --rebaseline   # rewrite BENCH_agents.json
    python benchmarks/agents_baseline.py --check        # gate: exit 1 on >25% regression

**Rebaseline policy**: same as ``perf_baseline.py`` — when a PR
intentionally changes coordination cost, run ``--rebaseline``, commit
the updated ``BENCH_agents.json`` in the same PR, and say why in the PR
description.  Never rebaseline to silence a regression you cannot
explain.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.bench import perf  # noqa: E402
from repro.bench.agents import AGENTS, CHURN, DURATION, run_t12  # noqa: E402

from perf_baseline import runner_fingerprint  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_agents.json")

SEED = 12


def collect() -> dict:
    """Measure the gated metrics (all lower-is-better, all deterministic)."""
    result = run_t12(SEED)
    bb_zero, bb_churn = result.blackboard_zero, result.blackboard_churn
    central_churn = result.central_churn
    return {
        "bb_secs_per_task_zero": bb_zero.duration / max(1, bb_zero.completed),
        "bb_secs_per_task_churn": (bb_churn.duration
                                   / max(1, bb_churn.completed)),
        "bb_churn_goodput_loss": max(
            0.0, 1.0 - result.blackboard_goodput_ratio),
        "bb_duplicates_churn": float(bb_churn.duplicates),
        "bb_consensus_ttc_s": bb_churn.consensus_mean,
        "bb_unfairness_churn": 1.0 - bb_churn.fairness,
        "central_secs_per_task_churn": (central_churn.duration
                                        / max(1, central_churn.completed)),
    }


def build_document(metrics: dict) -> dict:
    return {
        "schema": perf.SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "runner": runner_fingerprint(),
        "scenario": {"agents": AGENTS, "duration_s": DURATION,
                     "churn": CHURN, "seed": SEED,
                     "workload": "streaming_tasks_plus_ballots"},
        "units": {"*_secs_per_task": "virtual seconds per completed task",
                  "*_loss": "fraction of zero-churn goodput lost",
                  "*_ttc_s": "mean ballot-open to decision, virtual seconds",
                  "*_unfairness": "1 - Jain index over worker completions",
                  "*_duplicates": "completion records beyond the first"},
        "metrics": metrics,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON path (default BENCH_agents.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the measured metrics as the new baseline")
    parser.add_argument("--tolerance", type=float,
                        default=perf.DEFAULT_TOLERANCE,
                        help="relative regression tolerated (default 0.25)")
    args = parser.parse_args(argv)

    metrics = collect()

    baseline = None
    if args.check or (os.path.exists(args.baseline) and not args.rebaseline):
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            baseline = None

    print(perf.render_table(metrics, baseline))

    if args.rebaseline:
        doc = build_document(metrics)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[agents] baseline written to {args.baseline}")
        return 0

    if args.check:
        if baseline is None:
            print(f"\n[agents] FAIL: no baseline at {args.baseline} "
                  "(run --rebaseline and commit it)")
            return 1
        problems = perf.compare(baseline, metrics, tolerance=args.tolerance)
        # The headline claims are absolute, not just regression-relative.
        if metrics["bb_duplicates_churn"] != 0.0:
            problems.append(
                f"bb_duplicates_churn {metrics['bb_duplicates_churn']:.0f} "
                "!= 0: the completion-token gate leaked a duplicate")
        if metrics["bb_churn_goodput_loss"] > 0.30:
            problems.append(
                f"bb_churn_goodput_loss {metrics['bb_churn_goodput_loss']:.3f} "
                "exceeds the absolute budget of 0.30 (churn arm must keep "
                ">= 70% of zero-churn goodput)")
        if problems:
            print("\n[agents] FAIL: churn-resilience gate tripped:")
            for line in problems:
                print(f"  - {line}")
            print("\nIf this change is intentional, rebaseline per the "
                  "policy in this script's docstring.")
            return 1
        print(f"\n[agents] OK: all metrics within {args.tolerance:.0%} "
              "of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
