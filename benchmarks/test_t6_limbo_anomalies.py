"""T6 (section 4.3): Limbo's semantic anomalies, measured — Tiamat for contrast.

Two anomalies the paper attributes to replication + ownership:

* **stale reads** — "once a particular tuple has been removed from the
  space, it should not be available to any subsequent operation.  This is
  not the case in Limbo as the tuple may still be accessible to a
  disconnected host": a churning reader keeps re-reading tuples whose
  owner already removed them.
* **orphaned tuples** — "if a client deposits a sizeable number of tuples
  in the space and then leaves, no other client can remove those tuples
  until that same client returns ... the tuples will simply continue to
  consume resources on all of the clients participating in that space":
  a departing owner strands its tuples in every replica forever, whereas
  Tiamat's leases reclaim them.
"""

from __future__ import annotations

from repro.baselines import build_limbo_system
from repro.bench import Table, TiamatSpaceAdapter
from repro.core import TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple

ROUNDS = 20
LEASE = 30.0


def run_stale_reads() -> dict:
    """Owner removes tuples while a reader is disconnected; reader re-reads."""
    results = {}

    # --- Limbo -----------------------------------------------------------
    sim = Simulator(seed=51)
    net = Network(sim)
    nodes, oracle = build_limbo_system(sim, net, ["owner", "reader"])
    net.visibility.set_visible("owner", "reader")
    stale = 0
    valid = 0

    def scenario():
        nonlocal stale, valid
        for i in range(ROUNDS):
            nodes["owner"].out(Tuple("doc", i))
            yield sim.timeout(1.0)           # replication happens
            net.visibility.set_visible("owner", "reader", False)
            nodes["owner"].inp(Pattern("doc", i))  # owner removes it
            yield sim.timeout(1.0)
            before = nodes["reader"].stale_reads
            op = nodes["reader"].rdp(Pattern("doc", i))
            if op.result is not None and nodes["reader"].stale_reads > before:
                stale += 1
            elif op.result is not None:
                valid += 1
            net.visibility.set_visible("owner", "reader", True)
            yield sim.timeout(1.0)           # reconnect sync repairs

    sim.spawn(scenario())
    sim.run(until=10_000.0)
    results["limbo"] = {"stale_reads": stale, "post_repair": valid}

    # --- Tiamat ----------------------------------------------------------
    sim = Simulator(seed=51)
    net = Network(sim)
    owner = TiamatSpaceAdapter(TiamatInstance(sim, net, "owner"))
    reader = TiamatSpaceAdapter(TiamatInstance(sim, net, "reader"))
    net.visibility.set_visible("owner", "reader")
    stale = 0

    def scenario_t():
        nonlocal stale
        for i in range(ROUNDS):
            owner.out(Tuple("doc", i))
            yield sim.timeout(1.0)
            net.visibility.set_visible("owner", "reader", False)
            take = owner.inp(Pattern("doc", i))
            yield take.event
            yield sim.timeout(1.0)
            op = reader.rdp(Pattern("doc", i))
            result = yield op.event
            if result is not None:
                stale += 1   # read of a consumed tuple: must never happen
            net.visibility.set_visible("owner", "reader", True)
            yield sim.timeout(1.0)

    sim.spawn(scenario_t())
    sim.run(until=10_000.0)
    results["tiamat"] = {"stale_reads": stale, "post_repair": 0}
    return results


def run_orphans() -> dict:
    """A node deposits 20 tuples and departs forever."""
    results = {}

    # --- Limbo: tuples replicated to everyone, owner gone => stuck -------
    sim = Simulator(seed=52)
    net = Network(sim)
    nodes, _ = build_limbo_system(sim, net, ["dep", "a", "b"])
    net.visibility.connect_clique(["dep", "a", "b"])
    for i in range(20):
        nodes["dep"].out(Tuple("baggage", i))
    sim.run(until=5.0)
    net.visibility.set_up("dep", False)  # departs, never returns
    # Others try hard to remove the baggage.
    attempts = []
    for i in range(20):
        attempts.append(nodes["a"].inp(Pattern("baggage", i)))
    sim.run(until=1000.0)
    removed = sum(1 for op in attempts if op.result is not None)
    results["limbo"] = {
        "removable_by_others": removed,
        "resident_after_1000s": nodes["a"].space.count(Pattern("baggage", Formal(int))),
    }

    # --- Tiamat: the lease is the garbage collector ----------------------
    sim = Simulator(seed=52)
    net = Network(sim)
    instances = {n: TiamatInstance(sim, net, n) for n in ("dep", "a", "b")}
    net.visibility.connect_clique(["dep", "a", "b"])
    for i in range(20):
        instances["dep"].out(Tuple("baggage", i),
                             requester=SimpleLeaseRequester(
                                 LeaseTerms(duration=LEASE)))
    sim.run(until=5.0)
    net.visibility.set_up("dep", False)
    sim.run(until=1000.0)
    results["tiamat"] = {
        "removable_by_others": "-",
        "resident_after_1000s": instances["dep"].space.count(
            Pattern("baggage", Formal(int))),
    }
    return results


def test_t6_limbo_anomalies(benchmark, report):
    stale = benchmark.pedantic(run_stale_reads, rounds=1, iterations=1)
    orphans = run_orphans()

    table = Table(
        "T6a: reads of already-removed tuples (traditional Linda forbids any)",
        ["system", "stale reads", "rounds"],
        caption=f"{ROUNDS} rounds: owner removes a tuple while the reader "
                "is disconnected; reader then reads",
    )
    table.add_row("limbo", stale["limbo"]["stale_reads"], ROUNDS)
    table.add_row("tiamat", stale["tiamat"]["stale_reads"], ROUNDS)
    report.table(table)

    table_b = Table(
        "T6b: tuples stranded by a departed owner",
        ["system", "removable by others", "resident after 1000s"],
        caption=f"20 tuples deposited, owner departs forever "
                f"(Tiamat lease = {LEASE:.0f}s)",
    )
    table_b.add_row("limbo", orphans["limbo"]["removable_by_others"],
                    orphans["limbo"]["resident_after_1000s"])
    table_b.add_row("tiamat", orphans["tiamat"]["removable_by_others"],
                    orphans["tiamat"]["resident_after_1000s"])
    report.table(table_b)

    # Paper shapes: Limbo exhibits both anomalies, Tiamat neither.
    assert stale["limbo"]["stale_reads"] > ROUNDS // 2
    assert stale["tiamat"]["stale_reads"] == 0
    assert orphans["limbo"]["removable_by_others"] == 0
    assert orphans["limbo"]["resident_after_1000s"] == 20
    assert orphans["tiamat"]["resident_after_1000s"] == 0
