"""T10: exactly-once destructive `in` under adversarial networks.

The paper's protocol is explicitly best-effort; our two-phase destructive
match (QUERY -> offer -> CLAIM_ACCEPT/REJECT) is the one place where
best-effort is not good enough: a single lost CLAIM_ACCEPT silently
downgrades an ``in`` from exactly-once to at-most-twice (the origin
believes it consumed the tuple while the serving side puts it back on
claim timeout), and a duplicated offer can be answered twice with
contradictory verdicts.

This chaos bench attacks that path with the :mod:`repro.net.faults`
injectors and measures, per network condition and with the reliability
sublayer ON vs OFF:

* **success** — fraction of destructive ``in`` operations satisfied
  within their lease;
* **dup consumes** — tuples the origin believes it consumed that are
  nevertheless still present in (or were re-taken from) the serving
  space afterwards: the exactly-once violation count, which must be 0
  with the sublayer on;
* **msgs/op** — total frames (including acks and retransmissions)
  divided by operations: the price paid for reliability.

Conditions: no loss, 5% i.i.d., 20% i.i.d., and a Gilbert-Elliott burst
regime laced with frame duplication and bounded reordering.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

from repro.bench import Table
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    CrashRestartInjector,
    DuplicateFrames,
    FaultPlan,
    GilbertElliottLoss,
    Network,
    ReorderFrames,
)
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple
from repro.tuples.serialization import decode_tuple, decode_tuple_binary
from repro.tuples.storage import WALBackend, attach_backend

ITEMS = 40                    # destructive in ops per run
SEEDS = (101, 202, 303)       # every cell aggregates these runs
ITEM_LEASE = 2000.0           # deposits must outlive the whole run
IN_LEASE = 10.0               # per-op effort budget
CLAIM_TIMEOUT = 4.0           # claim window (both arms, for fairness)

CONDITIONS = [
    ("none", 0.0),
    ("iid 5%", 0.05),
    ("iid 20%", 0.2),
    ("burst", "burst"),
]

# The nightly chaos job raises the stakes: REPRO_CHAOS_LOSS=0.25 appends an
# elevated-loss i.i.d. condition; the exactly-once assertion below covers
# every condition, so the soak fails if the sublayer cracks under it.
_chaos_loss = float(os.environ.get("REPRO_CHAOS_LOSS", "0") or 0.0)
if _chaos_loss > 0.0:
    CONDITIONS.append((f"iid {_chaos_loss:.0%} (chaos)", _chaos_loss))


def _burst_plan() -> FaultPlan:
    """The adversary for the burst row: GE loss + duplication + reorder."""
    return FaultPlan([
        GilbertElliottLoss(p_gb=0.05, p_bg=0.5),
        DuplicateFrames(0.08),
        ReorderFrames(0.15, max_extra_delay=0.05),
    ])


def run_cell(loss_mode, reliable: bool, seed: int) -> dict:
    """One server/consumer chaos run; returns raw counts."""
    sim = Simulator(seed=seed)
    loss_rate = loss_mode if isinstance(loss_mode, float) else 0.0
    net = Network(sim, loss_rate=loss_rate)
    if loss_mode == "burst":
        net.use_faults(_burst_plan())
    config = dict(reliability_enabled=reliable, claim_timeout=CLAIM_TIMEOUT)
    server = TiamatInstance(sim, net, "server", config=TiamatConfig(**config))
    client = TiamatInstance(sim, net, "client", config=TiamatConfig(**config))
    net.visibility.set_visible("server", "client")

    for i in range(ITEMS):
        server.out(Tuple("item", i),
                   requester=SimpleLeaseRequester(
                       LeaseTerms(duration=ITEM_LEASE)))

    consumed: list[int] = []
    audit = {"ghosts": 0}

    def scenario():
        # Warm the MRU list so every measured op starts from the same
        # steady state (discovery is best-effort and may need a retry).
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        net.stats.reset()
        for i in range(ITEMS):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=IN_LEASE, max_remotes=8)))
            result = yield op.event
            if result is not None:
                consumed.append(i)
        # Let outstanding claim windows resolve (a lost CLAIM_ACCEPT is
        # put back ``claim_timeout`` after the offer), then audit against
        # sim-level ground truth *before* the deposit leases expire: an
        # item the client believes it consumed must be gone from the
        # serving space — anything still there is a duplicate-consumable
        # ghost, i.e. an exactly-once violation.
        yield sim.timeout(2.0 * CLAIM_TIMEOUT)
        audit["ghosts"] = sum(1 for i in consumed
                              if server.space.count(Pattern("item", i)) > 0)

    sim.spawn(scenario())
    sim.run(until=3000.0)
    ghosts = audit["ghosts"]
    return {
        "ops": ITEMS,
        "satisfied": len(consumed),
        "dup_consumes": ghosts,
        "messages": net.stats.total_messages,
        "retransmits": client.reliability.retransmits
        + server.reliability.retransmits,
        "dedup_drops": client.reliability.duplicates_dropped
        + server.reliability.duplicates_dropped,
        "registry": sim.obs.registry,
    }


def run_grid() -> dict:
    """All conditions x {reliable, best-effort}, aggregated over SEEDS."""
    grid = {}
    for label, loss_mode in CONDITIONS:
        for reliable in (True, False):
            total = {"ops": 0, "satisfied": 0, "dup_consumes": 0,
                     "messages": 0, "retransmits": 0, "dedup_drops": 0}
            for seed in SEEDS:
                cell = run_cell(loss_mode, reliable, seed)
                for key in total:
                    total[key] += cell[key]
            grid[(label, reliable)] = total
            # Keep the telemetry of the last (burst, reliable) style cell:
            # the report gets one full registry snapshot for cross-checking.
            grid["_registry"] = cell["registry"]
    return grid


def test_t10_fault_tolerance(benchmark, report):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    report.metrics(grid.pop("_registry"))

    table = Table(
        "T10: destructive `in` under chaos - reliability sublayer ablation",
        ["loss", "reliability", "success", "dup consumes", "msgs/op",
         "retransmits", "dedup drops"],
        caption=f"{ITEMS} ops x {len(SEEDS)} seeds per cell; burst = "
                "Gilbert-Elliott (mean burst 2 frames) + 8% duplication "
                "+ reordering",
    )
    for label, _ in CONDITIONS:
        for reliable in (True, False):
            cell = grid[(label, reliable)]
            table.add_row(
                label,
                "on" if reliable else "off",
                f"{cell['satisfied'] / cell['ops']:.3f}",
                cell["dup_consumes"],
                f"{cell['messages'] / cell['ops']:.1f}",
                cell["retransmits"],
                cell["dedup_drops"],
            )
    report.table(table)

    # --- acceptance: exactly-once everywhere the sublayer is on -------
    for label, _ in CONDITIONS:
        on = grid[(label, True)]
        assert on["dup_consumes"] == 0, (label, on)
    # ... with high success even under 20% i.i.d. loss and burst loss.
    assert grid[("iid 20%", True)]["satisfied"] >= 0.95 * grid[("iid 20%", True)]["ops"]
    assert grid[("burst", True)]["satisfied"] >= 0.95 * grid[("burst", True)]["ops"]
    # Clean network: both arms are perfect (the sublayer costs only acks).
    assert grid[("none", True)]["satisfied"] == grid[("none", True)]["ops"]
    assert grid[("none", False)]["dup_consumes"] == 0

    # --- ablation: best-effort measurably degrades under fire ---------
    off_20 = grid[("iid 20%", False)]
    off_burst = grid[("burst", False)]
    degraded = (off_20["dup_consumes"] + off_burst["dup_consumes"] > 0
                or off_20["satisfied"] < grid[("iid 20%", True)]["satisfied"]
                or off_burst["satisfied"] < grid[("burst", True)]["satisfied"])
    assert degraded, (off_20, off_burst)


# ---------------------------------------------------------------------------
# T10 durability arm: crash/restart soak over the write-ahead log
# ---------------------------------------------------------------------------
#
# The chaos above attacks the *wire*; this arm attacks the *disk*.  A
# server whose space sits on a WALBackend (real files, OsFS) is killed
# and recovered over and over — sometimes mid-compaction (snapshot
# landed, WAL not yet reset), sometimes with the final WAL record torn
# mid-append — while a client consumes against it.  The audit is exact
# conservation against sim-level ground truth, after every single cycle:
#
# * **zero lost acknowledged outs** — every deposit whose WAL append
#   survived intact is present after recovery (a deposit torn out of the
#   log mid-append was never durable, so losing it is allowed — and
#   counted);
# * **zero resurrected consumed tuples** — a consume whose `rm` record
#   was torn off the tail comes back *quarantined* and is purged by the
#   anti-entropy rejoin (the consuming client witnessed the claim), so it
#   must never be observable again.

DURABILITY_CYCLES = 100        # crash/restart cycles per arm
DURABILITY_ARMS = [("json", 11)]

# The nightly durability soak (REPRO_CHAOS_DURABLE=1) widens the sweep:
# the binary wire codec on the same log format, plus a fresh seed.
if os.environ.get("REPRO_CHAOS_DURABLE"):
    DURABILITY_ARMS += [("binary", 23), ("json", 37)]


def run_durability(codec: str, seed: int,
                   cycles: int = DURABILITY_CYCLES) -> dict:
    """One crash/restart soak; returns exact-conservation counters."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    registry: dict = {}

    def factory(name: str) -> TiamatInstance:
        instance = TiamatInstance(sim, net, name)
        for peer in ("server", "client"):
            if peer != name:
                net.visibility.set_visible(name, peer)
                net.visibility.set_visible(peer, name)
        return instance

    registry["server"] = factory("server")
    registry["client"] = factory("client")

    wal_dir = tempfile.mkdtemp(prefix="repro-t10-durable-")
    backend = WALBackend(os.path.join(wal_dir, "server"), codec=codec,
                         compact_every=32)
    attach_backend(registry["server"].space, backend)
    injector = CrashRestartInjector(sim, registry, factory, durable=True,
                                    backends={"server": backend})
    dec = decode_tuple_binary if codec == "binary" else decode_tuple

    # Chaos schedule rng: deliberately NOT the sim's stream, so the kill
    # schedule is a property of the arm, not of message timing.
    rng = random.Random(seed * 7919 + 17)
    counts = {"deposits": 0, "consumes": 0, "torn_outs": 0, "torn_rms": 0,
              "mid_compaction_kills": 0, "lost_acked": 0, "resurrected": 0}
    acked: set = set()          # deposits durably in the log
    consumed: set = set()       # items the client saw an in() succeed for
    next_item = [0]

    def deposit(n: int) -> None:
        server = registry["server"]
        for _ in range(n):
            item = next_item[0]
            next_item[0] += 1
            server.out(Tuple("job", item),
                       requester=SimpleLeaseRequester(
                           LeaseTerms(duration=1e6)))
            acked.add(item)
            counts["deposits"] += 1

    def driver():
        client = registry["client"]
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        for _cycle in range(cycles):
            # -- workload slice: deposits + remote destructive ins ------
            # deposit_last decides which record kind sits on the WAL tail
            # (and so which kind a tear damages): the quiesce drains the
            # in-flight CLAIM_ACCEPTs, whose server-side `rm` records
            # otherwise land after everything else.
            deposit_last = rng.random() < 0.5
            ndep = rng.randint(1, 3)
            if not deposit_last:
                deposit(ndep)
            live = sorted(acked - consumed)
            for item in rng.sample(live, min(len(live), rng.randint(1, 2))):
                op = client.in_(Pattern("job", item),
                                requester=SimpleLeaseRequester(
                                    LeaseTerms(duration=8.0, max_remotes=4)))
                result = yield op.event
                if result is not None:
                    consumed.add(item)
                    counts["consumes"] += 1
            yield sim.timeout(0.05)     # drain in-flight acks: quiesce
            if deposit_last:
                deposit(ndep)           # synchronous and durable; the
                                        # crash below can tear the tail out
            # -- kill ---------------------------------------------------
            mid_kill = rng.random() < 0.3
            if mid_kill:
                # Snapshot lands, WAL is never reset: the idempotent-
                # replay window.  The kill below hits inside it.
                backend.compact(sim.now, _crash_after_snapshot=True)
                counts["mid_compaction_kills"] += 1
            injector.crash("server")
            if rng.random() < 0.6:
                torn = backend.tear_tail(rng.randint(1, 28))
                if torn is not None and torn.get("op") == "out":
                    counts["torn_outs"] += 1
                    if not mid_kill:
                        # Torn mid-append: never durable, loss allowed.
                        # (After a mid-compaction kill the snapshot
                        # already holds it, so it survives regardless.)
                        acked.discard(dec(torn["tup"]).fields[1])
                elif torn is not None and torn.get("op") == "rm":
                    counts["torn_rms"] += 1
            yield sim.timeout(0.1 + rng.random() * 0.4)
            # -- recover + anti-entropy rejoin --------------------------
            injector.restart("server")
            yield sim.timeout(1.0)      # let SYNC_REQUEST/RESPONSE settle
            # -- exact-conservation audit -------------------------------
            server = registry["server"]
            for item in sorted(acked - consumed):
                if server.space.count(Pattern("job", item)) != 1:
                    counts["lost_acked"] += 1
            for item in sorted(consumed):
                if server.space.count(Pattern("job", item)) != 0:
                    counts["resurrected"] += 1

    sim.spawn(driver())
    sim.run(until=1e6)
    shutil.rmtree(wal_dir, ignore_errors=True)
    counts.update(
        cycles=cycles, crashes=injector.crashes, restarts=injector.restarts,
        restored=injector.tuples_restored, ghosts=injector.ghosts_purged,
        compactions=backend.compactions, torn=backend.torn_truncations,
        registry=sim.obs.registry)
    return counts


def test_t10_durability(benchmark, report):
    arms = benchmark.pedantic(
        lambda: [(codec, seed, run_durability(codec, seed))
                 for codec, seed in DURABILITY_ARMS],
        rounds=1, iterations=1)
    report.metrics(arms[-1][2].pop("registry"))

    table = Table(
        "T10 durability: WAL crash/restart soak - exact conservation",
        ["codec", "seed", "cycles", "deposits", "consumes", "torn outs",
         "torn rms", "mid-compact kills", "ghosts purged", "lost acked",
         "resurrected"],
        caption=f"{DURABILITY_CYCLES} kill/recover cycles per arm over a "
                "real on-disk WAL; torn outs were never durable (loss "
                "allowed), torn rms are healed by the anti-entropy rejoin",
    )
    for codec, seed, arm in arms:
        arm.pop("registry", None)
        table.add_row(codec, seed, arm["cycles"], arm["deposits"],
                      arm["consumes"], arm["torn_outs"], arm["torn_rms"],
                      arm["mid_compaction_kills"], arm["ghosts"],
                      arm["lost_acked"], arm["resurrected"])
    report.table(table)

    for codec, seed, arm in arms:
        # The headline claims: nothing durably acknowledged is ever lost,
        # nothing consumed ever comes back.
        assert arm["lost_acked"] == 0, (codec, seed, arm)
        assert arm["resurrected"] == 0, (codec, seed, arm)
        # The soak genuinely exercised the machinery it audits.
        assert arm["crashes"] == arm["cycles"] == arm["restarts"]
        assert arm["mid_compaction_kills"] > 0
        assert arm["torn_rms"] > 0 and arm["torn_outs"] > 0, arm
        assert arm["ghosts"] > 0, arm          # torn consumed-rm healed
        assert arm["compactions"] > 0, arm
