"""T10: exactly-once destructive `in` under adversarial networks.

The paper's protocol is explicitly best-effort; our two-phase destructive
match (QUERY -> offer -> CLAIM_ACCEPT/REJECT) is the one place where
best-effort is not good enough: a single lost CLAIM_ACCEPT silently
downgrades an ``in`` from exactly-once to at-most-twice (the origin
believes it consumed the tuple while the serving side puts it back on
claim timeout), and a duplicated offer can be answered twice with
contradictory verdicts.

This chaos bench attacks that path with the :mod:`repro.net.faults`
injectors and measures, per network condition and with the reliability
sublayer ON vs OFF:

* **success** — fraction of destructive ``in`` operations satisfied
  within their lease;
* **dup consumes** — tuples the origin believes it consumed that are
  nevertheless still present in (or were re-taken from) the serving
  space afterwards: the exactly-once violation count, which must be 0
  with the sublayer on;
* **msgs/op** — total frames (including acks and retransmissions)
  divided by operations: the price paid for reliability.

Conditions: no loss, 5% i.i.d., 20% i.i.d., and a Gilbert-Elliott burst
regime laced with frame duplication and bounded reordering.
"""

from __future__ import annotations

import os

from repro.bench import Table
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    DuplicateFrames,
    FaultPlan,
    GilbertElliottLoss,
    Network,
    ReorderFrames,
)
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

ITEMS = 40                    # destructive in ops per run
SEEDS = (101, 202, 303)       # every cell aggregates these runs
ITEM_LEASE = 2000.0           # deposits must outlive the whole run
IN_LEASE = 10.0               # per-op effort budget
CLAIM_TIMEOUT = 4.0           # claim window (both arms, for fairness)

CONDITIONS = [
    ("none", 0.0),
    ("iid 5%", 0.05),
    ("iid 20%", 0.2),
    ("burst", "burst"),
]

# The nightly chaos job raises the stakes: REPRO_CHAOS_LOSS=0.25 appends an
# elevated-loss i.i.d. condition; the exactly-once assertion below covers
# every condition, so the soak fails if the sublayer cracks under it.
_chaos_loss = float(os.environ.get("REPRO_CHAOS_LOSS", "0") or 0.0)
if _chaos_loss > 0.0:
    CONDITIONS.append((f"iid {_chaos_loss:.0%} (chaos)", _chaos_loss))


def _burst_plan() -> FaultPlan:
    """The adversary for the burst row: GE loss + duplication + reorder."""
    return FaultPlan([
        GilbertElliottLoss(p_gb=0.05, p_bg=0.5),
        DuplicateFrames(0.08),
        ReorderFrames(0.15, max_extra_delay=0.05),
    ])


def run_cell(loss_mode, reliable: bool, seed: int) -> dict:
    """One server/consumer chaos run; returns raw counts."""
    sim = Simulator(seed=seed)
    loss_rate = loss_mode if isinstance(loss_mode, float) else 0.0
    net = Network(sim, loss_rate=loss_rate)
    if loss_mode == "burst":
        net.use_faults(_burst_plan())
    config = dict(reliability_enabled=reliable, claim_timeout=CLAIM_TIMEOUT)
    server = TiamatInstance(sim, net, "server", config=TiamatConfig(**config))
    client = TiamatInstance(sim, net, "client", config=TiamatConfig(**config))
    net.visibility.set_visible("server", "client")

    for i in range(ITEMS):
        server.out(Tuple("item", i),
                   requester=SimpleLeaseRequester(
                       LeaseTerms(duration=ITEM_LEASE)))

    consumed: list[int] = []
    audit = {"ghosts": 0}

    def scenario():
        # Warm the MRU list so every measured op starts from the same
        # steady state (discovery is best-effort and may need a retry).
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        net.stats.reset()
        for i in range(ITEMS):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=IN_LEASE, max_remotes=8)))
            result = yield op.event
            if result is not None:
                consumed.append(i)
        # Let outstanding claim windows resolve (a lost CLAIM_ACCEPT is
        # put back ``claim_timeout`` after the offer), then audit against
        # sim-level ground truth *before* the deposit leases expire: an
        # item the client believes it consumed must be gone from the
        # serving space — anything still there is a duplicate-consumable
        # ghost, i.e. an exactly-once violation.
        yield sim.timeout(2.0 * CLAIM_TIMEOUT)
        audit["ghosts"] = sum(1 for i in consumed
                              if server.space.count(Pattern("item", i)) > 0)

    sim.spawn(scenario())
    sim.run(until=3000.0)
    ghosts = audit["ghosts"]
    return {
        "ops": ITEMS,
        "satisfied": len(consumed),
        "dup_consumes": ghosts,
        "messages": net.stats.total_messages,
        "retransmits": client.reliability.retransmits
        + server.reliability.retransmits,
        "dedup_drops": client.reliability.duplicates_dropped
        + server.reliability.duplicates_dropped,
        "registry": sim.obs.registry,
    }


def run_grid() -> dict:
    """All conditions x {reliable, best-effort}, aggregated over SEEDS."""
    grid = {}
    for label, loss_mode in CONDITIONS:
        for reliable in (True, False):
            total = {"ops": 0, "satisfied": 0, "dup_consumes": 0,
                     "messages": 0, "retransmits": 0, "dedup_drops": 0}
            for seed in SEEDS:
                cell = run_cell(loss_mode, reliable, seed)
                for key in total:
                    total[key] += cell[key]
            grid[(label, reliable)] = total
            # Keep the telemetry of the last (burst, reliable) style cell:
            # the report gets one full registry snapshot for cross-checking.
            grid["_registry"] = cell["registry"]
    return grid


def test_t10_fault_tolerance(benchmark, report):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    report.metrics(grid.pop("_registry"))

    table = Table(
        "T10: destructive `in` under chaos - reliability sublayer ablation",
        ["loss", "reliability", "success", "dup consumes", "msgs/op",
         "retransmits", "dedup drops"],
        caption=f"{ITEMS} ops x {len(SEEDS)} seeds per cell; burst = "
                "Gilbert-Elliott (mean burst 2 frames) + 8% duplication "
                "+ reordering",
    )
    for label, _ in CONDITIONS:
        for reliable in (True, False):
            cell = grid[(label, reliable)]
            table.add_row(
                label,
                "on" if reliable else "off",
                f"{cell['satisfied'] / cell['ops']:.3f}",
                cell["dup_consumes"],
                f"{cell['messages'] / cell['ops']:.1f}",
                cell["retransmits"],
                cell["dedup_drops"],
            )
    report.table(table)

    # --- acceptance: exactly-once everywhere the sublayer is on -------
    for label, _ in CONDITIONS:
        on = grid[(label, True)]
        assert on["dup_consumes"] == 0, (label, on)
    # ... with high success even under 20% i.i.d. loss and burst loss.
    assert grid[("iid 20%", True)]["satisfied"] >= 0.95 * grid[("iid 20%", True)]["ops"]
    assert grid[("burst", True)]["satisfied"] >= 0.95 * grid[("burst", True)]["ops"]
    # Clean network: both arms are perfect (the sublayer costs only acks).
    assert grid[("none", True)]["satisfied"] == grid[("none", True)]["ops"]
    assert grid[("none", False)]["dup_consumes"] == 0

    # --- ablation: best-effort measurably degrades under fire ---------
    off_20 = grid[("iid 20%", False)]
    off_burst = grid[("burst", False)]
    degraded = (off_20["dup_consumes"] + off_burst["dup_consumes"] > 0
                or off_20["satisfied"] < grid[("iid 20%", True)]["satisfied"]
                or off_burst["satisfied"] < grid[("burst", True)]["satisfied"])
    assert degraded, (off_20, off_burst)
