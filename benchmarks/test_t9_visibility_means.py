"""T9 (section 2.2 ablation): direct vs routed visibility.

"Another instance of Tiamat is considered visible if it can be
communicated with in some way.  The exact means of this communication may
be implemented in different ways, e.g., through direct communication only,
or routed through other instances.  The Tiamat model does not depend on
any particular implementation of visibility, only the concept."

The bench runs the same sparse-chain workload under three visibility
implementations — direct radio only (max_hops=1), and routed variants
(max_hops=2, 3) — and reports the fraction of producer/consumer pairs
that can coordinate plus the operation cost.  The model claim holds when
Tiamat's semantics are unchanged across implementations (everything that
is *visible* coordinates correctly); what changes is only how much of the
world each instance can see.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import MultiHopVisibilityDriver, Network, Position, StaticPlacement
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

NODES = 10
SPACING = 10.0   # chain neighbours exactly in radio range
RANGE = 10.0


def run_hops(max_hops: int, seed: int = 91) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    names = [f"c{i}" for i in range(NODES)]
    instances = {n: TiamatInstance(sim, net, n) for n in names}
    placement = StaticPlacement({f"c{i}": Position(i * SPACING, 0.0)
                                 for i in range(NODES)})
    MultiHopVisibilityDriver(sim, net.visibility, placement,
                             radio_range=RANGE, max_hops=max_hops).start()

    pairs = [(a, b) for a in range(NODES) for b in range(NODES) if a != b]
    coordinated = 0
    frames_before = net.stats.total_messages
    ops_done = 0

    def driver():
        nonlocal coordinated, ops_done
        for k, (src, dst) in enumerate(pairs):
            instances[f"c{src}"].out(
                Tuple("pair", k),
                requester=SimpleLeaseRequester(LeaseTerms(duration=30.0)))
            op = instances[f"c{dst}"].inp(
                Pattern("pair", k),
                requester=SimpleLeaseRequester(
                    LeaseTerms(duration=3.0, max_remotes=NODES)))
            result = yield op.event
            ops_done += 1
            if result is not None:
                coordinated += 1

    sim.spawn(driver())
    sim.run(until=100_000.0)
    frames = net.stats.total_messages - frames_before
    return {
        "coordinated": coordinated,
        "pairs": len(pairs),
        "rate": coordinated / len(pairs),
        "frames_per_op": frames / max(1, ops_done),
    }


def test_t9_visibility_means(benchmark, report):
    results = benchmark.pedantic(
        lambda: {h: run_hops(h) for h in (1, 2, 3)}, rounds=1, iterations=1)

    table = Table(
        "T9: visibility implementations over a 10-node radio chain",
        ["visibility", "pairs coordinated", "rate", "frames/op"],
        caption="every ordered pair tries one produce/consume; chain "
                "neighbours are exactly in radio range",
    )
    for hops, row in results.items():
        label = "direct (1 hop)" if hops == 1 else f"routed ({hops} hops)"
        table.add_row(label, f"{row['coordinated']}/{row['pairs']}",
                      row["rate"], row["frames_per_op"])
    report.table(table)

    # On a chain of N nodes, pairs within k hops = 2*sum_{d<=k}(N-d).
    def expected(k):
        return 2 * sum(NODES - d for d in range(1, k + 1))

    for hops in (1, 2, 3):
        assert results[hops]["coordinated"] == expected(hops), (
            f"hops={hops}: visibility semantics changed the outcome")
    # Wider visibility coordinates more, at higher per-op cost.
    assert (results[1]["coordinated"] < results[2]["coordinated"]
            < results[3]["coordinated"])
    assert results[3]["frames_per_op"] > results[1]["frames_per_op"]
