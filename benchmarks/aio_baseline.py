#!/usr/bin/env python
"""Asyncio-runtime perf baseline harness + CI regression gate.

Runs the ``repro.bench.aio`` suite and either records the result as the
committed baseline (``BENCH_aio.json``) or checks a fresh run against it.
Two planes ride in the document:

* ``metrics`` — gated, lower-is-better ns: the zero-copy codec hot path
  (pooled encode, buffer decode, frame round-trip).  The CI gate fails
  on a >25% median regression, same policy as ``BENCH_micro.json``.
* ``info`` — informational only: sustained echo round-trips/s over real
  UDP loopback sockets, plus buffer-pool hit counters.  Higher is
  better and runner-noisy, so the gate never reads it; it is committed
  for trajectory, reviewed by humans.

Usage::

    python benchmarks/aio_baseline.py                 # measure + print
    python benchmarks/aio_baseline.py --rebaseline    # rewrite BENCH_aio.json
    python benchmarks/aio_baseline.py --check         # gate: exit 1 on regression
    python benchmarks/aio_baseline.py --check --inject-slowdown 2
                                                      # prove the gate trips

**Rebaseline policy**: as for the micro-ops gate — rebaseline locally in
the same PR as the intentional perf change, explain it in the PR
description, and never rebaseline to silence a regression you cannot
explain.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from perf_baseline import (  # noqa: E402 - sibling harness, shared helpers
    load_baseline,
    runner_fingerprint,
)

from repro.bench import aio as bench_aio  # noqa: E402
from repro.bench import perf  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_aio.json")


def build_document(doc: dict) -> dict:
    return {
        "schema": perf.SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "runner": runner_fingerprint(),
        "units": {"*_ns": "median ns/op",
                  "*_ops_per_s": "sustained ops/s (informational)"},
        "metrics": doc["metrics"],
        "info": doc["info"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON path (default BENCH_aio.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the measured metrics as the new baseline")
    parser.add_argument("--tolerance", type=float,
                        default=perf.DEFAULT_TOLERANCE,
                        help="relative regression tolerated (default 0.25)")
    parser.add_argument("--inject-slowdown", type=int, default=1,
                        metavar="N",
                        help="run every timed operation N times per iteration "
                             "(gate-verification only)")
    parser.add_argument("--loopback-count", type=int, default=3000,
                        help="echo round-trips for the throughput figure")
    args = parser.parse_args(argv)

    if args.inject_slowdown != 1:
        print(f"[aio] synthetic slowdown x{args.inject_slowdown} "
              "(gate verification mode)")
    doc = bench_aio.collect(slowdown=args.inject_slowdown,
                            loopback_count=args.loopback_count)

    baseline = None
    if args.check or (os.path.exists(args.baseline) and not args.rebaseline):
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            baseline = None

    print(perf.render_table(doc["metrics"], baseline))
    info = doc["info"]
    print(f"\n[aio] loopback: {info['loopback_echo_ops_per_s']:,.0f} "
          f"pipelined echo ops/s, {info['loopback_sync_echo_ops_per_s']:,.0f} "
          "sync ops/s (informational, not gated)")
    target = bench_aio.ROUNDTRIP_TARGET_NS
    measured = doc["metrics"]["aio_codec_roundtrip_ns"]
    verdict = "OK" if measured <= target else "MISS"
    print(f"[aio] round-trip target {target:.0f} ns: measured "
          f"{measured:.0f} ns [{verdict}]")

    if args.rebaseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(build_document(doc), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[aio] baseline written to {args.baseline}")
        return 0

    if args.check:
        if baseline is None:
            print(f"\n[aio] FAIL: no baseline at {args.baseline} "
                  "(run --rebaseline and commit it)")
            return 1
        problems = perf.compare(baseline, doc["metrics"],
                                tolerance=args.tolerance)
        if problems:
            print("\n[aio] FAIL: regression gate tripped:")
            for line in problems:
                print(f"  - {line}")
            print("\nIf this change is intentional, rebaseline per the "
                  "policy in this script's docstring.")
            return 1
        print(f"\n[aio] OK: all metrics within {args.tolerance:.0%} "
              "of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
