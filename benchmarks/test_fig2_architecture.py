"""Figure 2: a Tiamat instance's architecture, exercised component by component.

The figure shows applications talking to the lease manager, local tuple
space, and communications manager, with the lease manager as "the first
point of contact for any operation.  If a lease is refused, no further work
is carried out on the operation."

The bench verifies that contract end-to-end — a refused lease produces
zero stored tuples, zero network frames, and zero serving effort — and
times the full negotiate+deposit+probe cycle as the instance's baseline
operation cost.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import DenyAllPolicy
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


def run_refusal_audit():
    """Count what happens below the lease manager when it refuses."""
    sim = Simulator(seed=2)
    net = Network(sim)
    deny = TiamatInstance(sim, net, "deny", policy=DenyAllPolicy())
    peer = TiamatInstance(sim, net, "peer")
    net.visibility.set_visible("deny", "peer")

    audit = {}
    for op_name, call in [
        ("out", lambda: deny.out(Tuple("x", 1))),
        ("rd", lambda: deny.rd(Pattern("x", int))),
        ("in", lambda: deny.in_(Pattern("x", int))),
        ("rdp", lambda: deny.rdp(Pattern("x", int))),
        ("inp", lambda: deny.inp(Pattern("x", int))),
        ("eval", lambda: deny.eval(lambda: Tuple("y"), compute_time=1.0)),
    ]:
        before_msgs = net.stats.total_messages
        before_tuples = deny.space.count()
        refused = False
        try:
            call()
        except LeaseError:
            refused = True
        sim.run(until=sim.now + 5.0)
        audit[op_name] = {
            "refused": refused,
            "messages": net.stats.total_messages - before_msgs,
            "tuples": deny.space.count() - before_tuples,
            "ops_started": deny.ops_started,
        }
    return audit


def run_grant_cycle():
    """One full grant path: negotiate, deposit, probe, consume."""
    sim = Simulator(seed=3)
    net = Network(sim)
    instance = TiamatInstance(sim, net, "solo")
    for i in range(100):
        instance.out(Tuple("item", i))
        op = instance.inp(Pattern("item", i))
        sim.run(until=sim.now + 3.0)
        assert op.result == Tuple("item", i)
    return instance.leases.grants, sim.obs.registry


def test_fig2_architecture(benchmark, report):
    audit = run_refusal_audit()
    grants, registry = benchmark.pedantic(run_grant_cycle, rounds=1,
                                          iterations=1)
    report.metrics(registry)

    table = Table(
        "Figure 2: lease manager is the first point of contact",
        ["operation", "lease refused", "network frames", "tuples stored",
         "ops started"],
        caption="Policy: DenyAll. Paper: 'If a lease is refused, no further "
                "work is carried out on the operation.'",
    )
    for op_name, row in audit.items():
        table.add_row(op_name, row["refused"], row["messages"], row["tuples"],
                      row["ops_started"])
    report.table(table)
    report.add(f"Grant path: {grants} leases negotiated for 100 out+inp "
               f"cycles (2 per cycle, as required)")

    for op_name, row in audit.items():
        assert row["refused"], f"{op_name} was not refused"
        assert row["messages"] == 0, f"{op_name} touched the network"
        assert row["tuples"] == 0, f"{op_name} stored a tuple"
        assert row["ops_started"] == 0, f"{op_name} started an operation"
    assert grants == 200
