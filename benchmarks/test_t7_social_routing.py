"""T7 (section 6, future work): social/backbone routing, implemented & ablated.

"The social characteristics of the instances may be exploited to provide a
routing mechanism in Tiamat.  Tiamat will also attempt to exploit the
relatively fixed and well connected portions of the network as a backbone
for more efficient communications."

Topology: mobile PDAs wander a courtyard (random waypoint) around a grid
of fixed, well-connected workstations.  Each trial, one PDA tries to
deliver a reply tuple to another PDA that is currently out of direct
range, using ``out_back(..., policy=ROUTE)``.  Ablation: random relay
selection vs the SocialRouter (degree + visibility-stability scoring).
The claim holds when the social router delivers more replies, and carries
them predominantly over the fixed backbone.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import (
    RandomRelayRouter,
    SocialRouter,
    TiamatConfig,
    TiamatInstance,
    UnavailablePolicy,
)
from repro.net import (
    Network,
    Position,
    RandomWaypointMobility,
    RangeVisibilityDriver,
    StaticPlacement,
)
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

PDAS = 10
WORKSTATIONS = 9
AREA = 150.0
RANGE = 40.0
TRIALS = 120

#: A connected 3x3 grid backbone (spacing 37.5 m < radio range) that also
#: covers the whole courtyard — every point is within ~27 m of some
#: workstation.
BACKBONE_SPOTS = [(x, y)
                  for y in (37.5, 75.0, 112.5)
                  for x in (37.5, 75.0, 112.5)]


class _Combined:
    def __init__(self, mobile, fixed):
        self.mobile, self.fixed = mobile, fixed

    def nodes(self):
        return self.mobile.nodes() + self.fixed.nodes()

    def position_of(self, node):
        return self.mobile.position_of(node) or self.fixed.position_of(node)

    def advance(self, dt):
        self.mobile.advance(dt)


def run_router(router_name: str, seed: int = 61) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous", relay_ttl=6)

    pda_names = [f"pda{i}" for i in range(PDAS)]
    ws_names = [f"ws{i}" for i in range(WORKSTATIONS)]
    mobile = RandomWaypointMobility(sim.rng("mob"), AREA, AREA,
                                    speed_min=1.0, speed_max=3.0, pause=5.0)
    for name in pda_names:
        mobile.add_node(name)
    fixed = StaticPlacement({n: Position(*BACKBONE_SPOTS[i])
                             for i, n in enumerate(ws_names)})

    instances = {}
    for name in pda_names + ws_names:
        router = (SocialRouter() if router_name == "social"
                  else RandomRelayRouter(sim.rng(f"rr/{name}")))
        instances[name] = TiamatInstance(sim, net, name, config=config,
                                         router=router)
    RangeVisibilityDriver(sim, net.visibility, _Combined(mobile, fixed),
                          radio_range=RANGE, tick=1.0).start()

    attempted = 0
    routed = 0
    expectations: list[tuple] = []  # (trial id, destination name)
    rng = sim.rng("trials")

    def trial_loop():
        nonlocal attempted, routed
        trial = 0
        while trial < TRIALS:
            yield sim.timeout(3.0)
            src_name, dst_name = rng.sample(pda_names, 2)
            src = instances[src_name]
            if src.iface.is_visible(dst_name):
                continue  # only out-of-range deliveries exercise routing
            if not net.visibility.is_up(src_name) or not net.visibility.is_up(dst_name):
                continue
            attempted += 1
            how = src.out_back(dst_name, Tuple("reply", trial),
                               policy=UnavailablePolicy.ROUTE,
                               duration=100_000.0)
            if how == "routed":
                routed += 1
                expectations.append((trial, dst_name))
            trial += 1

    sim.spawn(trial_loop())
    sim.run(until=TRIALS * 3.0 + 60.0)

    # A trial counts as delivered only if the reply reached its intended
    # destination's space (local fallbacks at the source do not count).
    delivered = sum(
        1 for trial, dst in expectations
        if instances[dst].space.count(Pattern("reply", trial)) > 0)
    backbone_hops = sum(instances[w].relays_forwarded for w in ws_names)
    pda_hops = sum(instances[p].relays_forwarded for p in pda_names)
    dropped = sum(inst.relays_dropped for inst in instances.values())
    return {
        "attempted": attempted,
        "routed": routed,
        "delivered": delivered,
        "delivery_rate": delivered / max(1, attempted),
        "backbone_hops": backbone_hops,
        "pda_hops": pda_hops,
        "dropped": dropped,
    }


def test_t7_social_routing(benchmark, report):
    results = benchmark.pedantic(
        lambda: {name: run_router(name) for name in ("random", "social")},
        rounds=1, iterations=1)

    table = Table(
        "T7: reply-tuple routing across a mixed fixed/mobile topology",
        ["router", "attempted", "handed to relay", "delivered",
         "delivery rate", "backbone hops", "pda hops", "dropped"],
        caption=f"{PDAS} mobile PDAs + {WORKSTATIONS} fixed workstations, "
                f"radio {RANGE:.0f}m in {AREA:.0f}m^2; out-of-range "
                "deliveries only",
    )
    for name, row in results.items():
        table.add_row(name, row["attempted"], row["routed"], row["delivered"],
                      row["delivery_rate"], row["backbone_hops"],
                      row["pda_hops"], row["dropped"])
    report.table(table)

    random_, social = results["random"], results["social"]
    # Paper shape: exploiting the fixed, well-connected backbone delivers
    # more replies, and the backbone carries the larger share of hops.
    assert social["delivery_rate"] > random_["delivery_rate"]
    assert social["backbone_hops"] > social["pda_hops"]
