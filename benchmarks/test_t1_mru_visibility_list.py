"""T1 (section 3.1.3): the cached visibility list vs multicast-per-operation.

"While the opportunistic construction of the logical spaces provides
adaptability it would be expensive to gather a list of visible hosts for
each and every operation via a multicast, particularly if the set of
visible hosts happens to change infrequently. ... This improves performance
because consistently visible instances work their way to the top of the
list and, therefore, will be the first to be contacted."

The bench runs the same probe workload (one node repeatedly ``rdp``-ing a
tuple that lives on a stable peer) under both comms strategies, in a
*stable* environment and a *churning* one, and reports discovery
multicasts, frames per operation, and mean operation latency.  The paper's
claim holds when the MRU list beats multicast-per-op in the stable
environment (fewer frames, lower latency) and remains correct under churn.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import ChurnInjector, Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

N_PEERS = 12
N_OPS = 60


def run_strategy(strategy: str, churn: bool, seed: int = 4) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(comms_strategy=strategy)
    names = ["origin", "holder"] + [f"peer{i}" for i in range(N_PEERS)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)

    # The tuple of interest lives on one consistently visible peer.
    instances["holder"].out(
        Tuple("wanted", 1),
        requester=SimpleLeaseRequester(LeaseTerms(duration=100_000.0)))

    if churn:
        injector = ChurnInjector(sim, net.visibility)
        for i in range(N_PEERS):
            injector.auto_churn(f"peer{i}", mean_uptime=10.0, mean_downtime=10.0)

    latencies = []
    satisfied = 0
    frames_before = net.stats.total_messages

    def driver():
        nonlocal satisfied
        for _ in range(N_OPS):
            started = sim.now
            op = instances["origin"].rdp(
                Pattern("wanted", int),
                requester=SimpleLeaseRequester(
                    LeaseTerms(duration=5.0, max_remotes=N_PEERS + 2)))
            result = yield op.event
            if result is not None:
                satisfied += 1
                latencies.append(sim.now - started)
            yield sim.timeout(1.0)

    sim.spawn(driver())
    sim.run(until=100_000.0)

    frames = net.stats.total_messages - frames_before
    return {
        "multicasts": instances["origin"].comms.multicasts,
        "frames_per_op": frames / N_OPS,
        "mean_latency": sum(latencies) / len(latencies) if latencies else float("inf"),
        "satisfied": satisfied,
        "holder_rank": (instances["origin"].comms.plan().index("holder")
                        if "holder" in instances["origin"].comms.plan() else -1),
    }


def run_all():
    results = {}
    for strategy in ("mru", "multicast"):
        for churn in (False, True):
            results[(strategy, churn)] = run_strategy(strategy, churn)
    return results


def test_t1_mru_visibility_list(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "T1: known-peer list (mru) vs discovery multicast per operation",
        ["strategy", "environment", "discovery multicasts", "frames/op",
         "mean latency (s)", "ops satisfied", "holder rank in list"],
        caption=f"{N_OPS} rdp operations, {N_PEERS} bystander peers; the "
                "tuple lives on one stable peer",
    )
    for (strategy, churn), row in results.items():
        table.add_row(strategy, "churning" if churn else "stable",
                      row["multicasts"], row["frames_per_op"],
                      row["mean_latency"], row["satisfied"],
                      row["holder_rank"])
    report.table(table)

    stable_mru = results[("mru", False)]
    stable_mc = results[("multicast", False)]
    # Paper shape: the cached list needs far fewer multicasts and frames.
    assert stable_mru["multicasts"] < stable_mc["multicasts"]
    assert stable_mru["frames_per_op"] < stable_mc["frames_per_op"]
    assert stable_mru["mean_latency"] <= stable_mc["mean_latency"]
    # Everyone stays correct: all operations satisfied in the stable case.
    assert stable_mru["satisfied"] == N_OPS
    assert stable_mc["satisfied"] == N_OPS
    # Consistently visible holder works its way toward the top of the list.
    churn_mru = results[("mru", True)]
    assert 0 <= churn_mru["holder_rank"] <= 2
    assert churn_mru["satisfied"] >= N_OPS * 0.9
