"""Micro-benchmarks: raw operation costs of the substrate.

Not a paper figure — these are the numbers a downstream user asks first
("how fast is a local out/in?  how does matching scale?").  They use
pytest-benchmark's timing machinery for real, not just as a harness.
"""

from __future__ import annotations

from repro.sim import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple, TupleStore


def test_local_out_inp_cycle(benchmark):
    """One leased-free out + inp pair on a local space."""
    sim = Simulator(seed=1)
    space = LocalTupleSpace(sim, name="micro")
    tup = Tuple("item", 42, "payload")
    pattern = Pattern("item", 42, str)

    def cycle():
        space.out(tup)
        assert space.inp(pattern) is not None

    benchmark(cycle)
    assert space.count() == 0


def test_store_find_in_populated_store(benchmark):
    """Pattern lookup among 10k resident tuples (indexed path)."""
    store = TupleStore()
    for i in range(10_000):
        store.add(Tuple("bulk", i % 100, f"body{i}"))
    store.add(Tuple("needle", 1))
    pattern = Pattern("needle", int)

    result = benchmark(lambda: store.find(pattern))
    assert result is not None


def test_store_find_all_hot_tag(benchmark):
    """find_all over a hot tag bucket (100 matches out of 10k)."""
    store = TupleStore()
    for i in range(10_000):
        store.add(Tuple("bulk", i % 100, f"body{i}"))
    pattern = Pattern("bulk", 7, str)

    result = benchmark(lambda: store.find_all(pattern))
    assert len(result) == 100


def test_blocking_waiter_wakeup(benchmark):
    """Register a waiter, deposit a match, deliver: the rendezvous path."""
    sim = Simulator(seed=2)
    space = LocalTupleSpace(sim, name="micro")
    pattern = Pattern("evt", int)

    def rendezvous():
        waiter = space.in_(pattern)
        space.out(Tuple("evt", 1))
        assert waiter.satisfied

    benchmark(rendezvous)


def test_simulator_event_throughput(benchmark):
    """Cost of scheduling + running 1000 zero-work callbacks."""

    def run_batch():
        sim = Simulator(seed=3)
        for i in range(1000):
            sim.schedule(float(i % 7), lambda: None)
        sim.run()

    benchmark(run_batch)


def test_distributed_in_roundtrip(benchmark):
    """Full remote in(): query, hold, offer, claim — one virtual roundtrip."""
    from repro.core import TiamatInstance
    from repro.net import Network

    def roundtrip():
        sim = Simulator(seed=4)
        net = Network(sim)
        a = TiamatInstance(sim, net, "a")
        b = TiamatInstance(sim, net, "b")
        net.visibility.set_visible("a", "b")
        b.out(Tuple("x", 1))
        op = a.in_(Pattern("x", int))
        sim.run(until=5.0)
        assert op.result is not None

    benchmark(roundtrip)
