"""Shared fixtures for the benchmark suite.

Each benchmark reproduces one figure/claim of the paper and reports its
rows through the ``report`` fixture; the collected tables are printed in
the terminal summary (so they survive pytest's output capture and land in
``bench_output.txt``) and also written under ``benchmarks/reports/``.

Benchmarks that pass their simulation's metrics registry to
:meth:`Reporter.metrics` additionally get a telemetry snapshot written
next to their table — ``<name>.metrics.prom`` (Prometheus text) and
``<name>.metrics.json`` — so every report row can be cross-checked against
the full ``repro.obs`` registry of the run that produced it.
"""

from __future__ import annotations

import json
import pathlib

import pytest

_REPORTS: list[str] = []
_REPORT_DIR = pathlib.Path(__file__).parent / "reports"


class Reporter:
    """Collects rendered tables/series for one benchmark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.chunks: list[str] = []
        self._metrics_prom: str | None = None
        self._metrics_json: str | None = None

    def add(self, text: str) -> None:
        """Record one rendered table or series line."""
        self.chunks.append(text)

    def table(self, table) -> None:
        """Record a :class:`repro.bench.Table`."""
        self.add(table.render())

    def metrics(self, registry) -> None:
        """Snapshot a :class:`repro.obs.MetricsRegistry` alongside the report.

        The snapshot is rendered immediately (registries read live
        component state, which may be torn down after the test returns)
        and written at flush time as ``<name>.metrics.prom`` /
        ``<name>.metrics.json``.
        """
        self._metrics_prom = registry.render_prometheus()
        self._metrics_json = json.dumps(registry.snapshot(), indent=2,
                                        sort_keys=True)

    def flush(self) -> None:
        body = "\n\n".join(self.chunks)
        banner = f"\n{'#' * 72}\n# {self.name}\n{'#' * 72}\n{body}"
        _REPORTS.append(banner)
        _REPORT_DIR.mkdir(exist_ok=True)
        (_REPORT_DIR / f"{self.name}.txt").write_text(body + "\n")
        if self._metrics_prom is not None:
            (_REPORT_DIR / f"{self.name}.metrics.prom").write_text(
                self._metrics_prom)
        if self._metrics_json is not None:
            (_REPORT_DIR / f"{self.name}.metrics.json").write_text(
                self._metrics_json + "\n")


@pytest.fixture()
def report(request):
    """Per-benchmark reporter; flushed (printed + saved) at teardown."""
    reporter = Reporter(request.node.name)
    yield reporter
    if reporter.chunks:
        reporter.flush()


def pytest_terminal_summary(terminalreporter):
    for banner in _REPORTS:
        terminalreporter.write_line(banner)
