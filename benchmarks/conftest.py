"""Shared fixtures for the benchmark suite.

Each benchmark reproduces one figure/claim of the paper and reports its
rows through the ``report`` fixture; the collected tables are printed in
the terminal summary (so they survive pytest's output capture and land in
``bench_output.txt``) and also written under ``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib

import pytest

_REPORTS: list[str] = []
_REPORT_DIR = pathlib.Path(__file__).parent / "reports"


class Reporter:
    """Collects rendered tables/series for one benchmark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.chunks: list[str] = []

    def add(self, text: str) -> None:
        """Record one rendered table or series line."""
        self.chunks.append(text)

    def table(self, table) -> None:
        """Record a :class:`repro.bench.Table`."""
        self.add(table.render())

    def flush(self) -> None:
        body = "\n\n".join(self.chunks)
        banner = f"\n{'#' * 72}\n# {self.name}\n{'#' * 72}\n{body}"
        _REPORTS.append(banner)
        _REPORT_DIR.mkdir(exist_ok=True)
        (_REPORT_DIR / f"{self.name}.txt").write_text(body + "\n")


@pytest.fixture()
def report(request):
    """Per-benchmark reporter; flushed (printed + saved) at teardown."""
    reporter = Reporter(request.node.name)
    yield reporter
    if reporter.chunks:
        reporter.flush()


def pytest_terminal_summary(terminalreporter):
    for banner in _REPORTS:
        terminalreporter.write_line(banner)
