"""T5 (section 4.7): Tiamat against the five related systems.

One request/response workload (each node deposits items addressed to
random peers and consumes items addressed to itself) drives all six
systems at several host counts, in a stable environment and under churn.
Reported per cell: consume success rate, network frames per operation, and
tuples stored per node at the end (the storage-burden axis).

Paper shapes to match:

* Tiamat and PeerSpaces scale with host count (no global consistency);
* the centralized system collapses under churn (the one machine that
  "must be visible to all others" keeps disappearing);
* LIME pays the atomic-engagement barrier under churn and cannot grow a
  federation past ~6 hosts;
* Limbo pays full-replica storage on every node;
* CoreLime's agent tours cost far more frames per operation.
"""

from __future__ import annotations


from repro.apps import RequestResponseWorkload
from repro.bench import SYSTEMS, Table, build_system
from repro.net import ChurnInjector

SIZES = (4, 8, 16)
DURATION = 60.0
PERIOD = 3.0
OP_TIMEOUT = 8.0


def run_cell(system: str, n: int, churn: bool, seed: int = 41) -> dict:
    sim, network, nodes = build_system(system, n, seed=seed)
    sim.run(until=5.0)  # LIME engagements, discovery, initial sync

    if churn:
        injector = ChurnInjector(sim, network.visibility, rng=sim.rng("churn5"))
        for name in sorted(nodes):
            injector.auto_churn(name, mean_uptime=20.0, mean_downtime=5.0)
        if system == "central":
            injector.auto_churn("server", mean_uptime=20.0, mean_downtime=5.0)
        if system == "lime":
            # LIME requires explicit, atomic engagement/disengagement on
            # every arrival and departure (section 4.4).
            hosts = nodes

            def relink(node, up):
                host = hosts.get(node)
                if host is None:
                    return
                if up:
                    host.engage()
                else:
                    host.disengage()

            network.visibility.on_node_change(relink)

    frames_before = network.stats.total_messages
    workload = RequestResponseWorkload(sim, nodes, sim.rng("wl"),
                                       period=PERIOD, op_timeout=OP_TIMEOUT)
    workload.start(duration=DURATION)
    sim.run(until=5.0 + DURATION + 2 * OP_TIMEOUT)

    stats = workload.stats
    ops = stats.produced + stats.consume_attempts
    frames = network.stats.total_messages - frames_before
    stored = [node.stored_tuples() for node in nodes.values()]
    return {
        "success": stats.success_rate,
        "frames_per_op": frames / max(1, ops),
        "stored_per_node": sum(stored) / len(stored),
    }


def run_matrix() -> dict:
    results = {}
    for system in SYSTEMS:
        for n in SIZES:
            for churn in (False, True):
                results[(system, n, churn)] = run_cell(system, n, churn)
    return results


def test_t5_system_comparison(benchmark, report):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    for churn in (False, True):
        env = "churning (up 20s / down 5s)" if churn else "stable"
        table = Table(
            f"T5: system comparison, {env}",
            ["system"] + [f"ok@{n}" for n in SIZES]
            + [f"frames/op@{n}" for n in SIZES]
            + [f"stored/node@{n}" for n in SIZES],
            caption=f"request/response workload, {DURATION:.0f}s, "
                    f"period {PERIOD}s, op timeout {OP_TIMEOUT}s",
        )
        for system in SYSTEMS:
            cells = [results[(system, n, churn)] for n in SIZES]
            table.add_row(system,
                          *[c["success"] for c in cells],
                          *[c["frames_per_op"] for c in cells],
                          *[c["stored_per_node"] for c in cells])
        report.table(table)

    stable = {k: v for k, v in results.items() if not k[2]}
    churny = {k: v for k, v in results.items() if k[2]}

    # Tiamat scales: success stays high at every size, stable and churning.
    for n in SIZES:
        assert stable[("tiamat", n, False)]["success"] > 0.7
        assert churny[("tiamat", n, True)]["success"] > 0.4

    # The central server is fine when permanently visible...
    assert stable[("central", 8, False)]["success"] > 0.7
    # ...but degrades under churn more than Tiamat does (mean over sizes,
    # robust to per-cell seed noise).
    central_churn = sum(churny[("central", n, True)]["success"]
                        for n in SIZES) / len(SIZES)
    tiamat_churn = sum(churny[("tiamat", n, True)]["success"]
                       for n in SIZES) / len(SIZES)
    assert central_churn < tiamat_churn

    # LIME cannot grow past its ~6-host federation: success degrades with
    # size as more hosts are stranded outside the federation.
    assert (stable[("lime", 16, False)]["success"]
            < stable[("lime", 4, False)]["success"])
    assert (stable[("lime", 16, False)]["success"]
            < stable[("tiamat", 16, False)]["success"])

    # Limbo pays full-replica storage: far more resident tuples per node
    # than Tiamat at every size.
    for n in SIZES:
        assert (stable[("limbo", n, False)]["stored_per_node"]
                > 2 * stable[("tiamat", n, False)]["stored_per_node"])

    # CoreLime's agent tours dominate frames/op at scale.
    assert (stable[("corelime", 16, False)]["frames_per_op"]
            > stable[("tiamat", 16, False)]["frames_per_op"])
