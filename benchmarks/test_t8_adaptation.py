"""T8 (sections 5.4-5.5, extension): adapting lease requests to behaviour.

DESIGN.md calls out the monitoring/adaptation programme as an
ablation-worthy design choice; this bench measures it.  A consumer issues
blocking ``in`` operations whose matches appear after a delay the
application author underestimated (their fixed lease is too short), in
three configurations:

* **fixed-short** — the author's guess (frequent unsatisfied expiries);
* **fixed-long**  — an over-provisioned lease (works, but holds waiter
  resources far longer than needed once matches are fast);
* **adaptive**    — :class:`LeaseTuner` feedback from the
  :class:`AppMonitor` behaviour model.

The adaptation claim holds when the tuner's success rate approaches the
over-provisioned lease's while requesting substantially less lease time
once the environment speeds up mid-run.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import AppMonitor, LeaseTuner, TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple

ROUNDS = 40
SLOW_DELAY = 12.0     # match latency in the first phase
FAST_DELAY = 1.0      # match latency after the environment improves
SHORT_LEASE = 6.0     # the author's underestimate
LONG_LEASE = 120.0    # over-provisioned


def run_mode(mode: str, seed: int = 71) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    consumer = TiamatInstance(sim, net, "consumer", config=config)
    producer = TiamatInstance(sim, net, "producer", config=config)
    net.visibility.set_visible("consumer", "producer")

    monitor = AppMonitor(sim)
    monitor.attach(consumer)
    tuner = LeaseTuner(monitor, base_duration=SHORT_LEASE,
                       min_duration=2.0, max_duration=LONG_LEASE)
    pattern = Pattern("part", Formal(int))

    satisfied = 0
    lease_time_requested = 0.0

    def producer_loop():
        for i in range(ROUNDS):
            delay = SLOW_DELAY if i < ROUNDS // 2 else FAST_DELAY
            yield sim.timeout(delay)
            producer.out(Tuple("part", i),
                         requester=SimpleLeaseRequester(
                             LeaseTerms(duration=300.0)))

    def consumer_loop():
        nonlocal satisfied, lease_time_requested
        for i in range(ROUNDS):
            if mode == "fixed-short":
                terms = LeaseTerms(duration=SHORT_LEASE, max_remotes=8)
            elif mode == "fixed-long":
                terms = LeaseTerms(duration=LONG_LEASE, max_remotes=8)
            else:
                suggested = tuner.suggest(pattern)
                terms = LeaseTerms(duration=suggested.duration, max_remotes=8)
            lease_time_requested += terms.duration
            op = consumer.in_(pattern, requester=SimpleLeaseRequester(terms))
            result = yield op.event
            if result is not None:
                satisfied += 1

    sim.spawn(producer_loop())
    sim.spawn(consumer_loop())
    sim.run(until=20_000.0)
    return {
        "satisfied": satisfied,
        "success": satisfied / ROUNDS,
        "mean_lease_requested": lease_time_requested / ROUNDS,
    }


def test_t8_adaptation(benchmark, report):
    results = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in ("fixed-short", "fixed-long",
                                          "adaptive")},
        rounds=1, iterations=1)

    table = Table(
        "T8: lease adaptation from the application behaviour model",
        ["mode", "satisfied", "success rate", "mean lease requested (s)"],
        caption=f"{ROUNDS} blocking in() ops; match latency {SLOW_DELAY:.0f}s "
                f"for the first half, {FAST_DELAY:.0f}s after",
    )
    for mode, row in results.items():
        table.add_row(mode, f"{row['satisfied']}/{ROUNDS}", row["success"],
                      row["mean_lease_requested"])
    report.table(table)

    short, long_, adaptive = (results["fixed-short"], results["fixed-long"],
                              results["adaptive"])
    # The underestimate loses operations; over-provisioning does not.
    assert short["success"] < 0.9
    assert long_["success"] >= 0.95
    # Adaptation approaches the over-provisioned success rate...
    assert adaptive["success"] >= long_["success"] - 0.1
    # ...while requesting much less lease time than the big hammer.
    assert adaptive["mean_lease_requested"] < long_["mean_lease_requested"] / 2
