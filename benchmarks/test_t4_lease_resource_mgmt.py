"""T4 (section 2.5): leasing as the resource-management mechanism.

Three claims, each measured:

* **tuple garbage** — "due to the asynchronous, identity-separated nature
  of generative communications, it is not normally possible to identify
  tuples as being garbage": a constant stream of never-consumed tuples
  grows without bound when deposits are unleased (PeerSpaces semantics),
  but occupancy plateaus at rate x lease-duration under Tiamat leases.
* **bounded blocking** — "in the case of the blocking operations, in and
  rd, [lease expiry] represents a slight semantic alteration which is
  necessary in order to avoid indefinite consumption of resources": the
  number of live waiters stays bounded with leases, grows without bound
  without them.
* **policy ablation** — the generous/conservative/adaptive granting
  policies trade storage pressure against refusals on a constrained
  device.
"""

from __future__ import annotations

from repro.baselines import build_peers_system
from repro.bench import Table
from repro.core import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import (
    AdaptivePolicy,
    ConservativePolicy,
    GenerousPolicy,
    LeaseTerms,
    SimpleLeaseRequester,
)
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

DEPOSIT_PERIOD = 1.0     # one orphan tuple per second
LEASE_DURATION = 30.0
HORIZON = 300.0
SAMPLE_EVERY = 50.0


def run_occupancy(leased: bool) -> list[tuple]:
    """(time, resident tuples) samples for leased vs unleased deposits."""
    sim = Simulator(seed=31)
    net = Network(sim)
    if leased:
        node = TiamatInstance(sim, net, "node")

        def deposit(i):
            node.out(Tuple("orphan", i),
                     requester=SimpleLeaseRequester(
                         LeaseTerms(duration=LEASE_DURATION)))

        def occupancy():
            return node.space.count(Pattern("orphan", int))
    else:
        nodes = build_peers_system(sim, net, ["node"])
        peer = nodes["node"]

        def deposit(i):
            peer.out(Tuple("orphan", i))

        def occupancy():
            return peer.space.count(Pattern("orphan", int))

    samples = []

    def producer():
        i = 0
        while sim.now < HORIZON:
            deposit(i)
            i += 1
            yield sim.timeout(DEPOSIT_PERIOD)

    def sampler():
        while sim.now < HORIZON:
            yield sim.timeout(SAMPLE_EVERY)
            samples.append((sim.now, occupancy()))

    sim.spawn(producer())
    sim.spawn(sampler())
    sim.run(until=HORIZON + 1.0)
    return samples


def run_waiter_bound() -> dict:
    """Live waiters after a burst of blocking ops that never match."""
    sim = Simulator(seed=32)
    net = Network(sim)
    node = TiamatInstance(sim, net, "node")
    for _ in range(50):
        node.in_(Pattern("never"),
                 requester=SimpleLeaseRequester(LeaseTerms(duration=10.0)))
    waiters_at_peak = node.space.waiter_count
    sim.run(until=60.0)
    return {"peak": waiters_at_peak, "after_expiry": node.space.waiter_count}


def run_policy_ablation() -> dict:
    """Each policy on a 16 KiB device under deposit pressure."""
    results = {}
    policies = {
        "generous": GenerousPolicy(max_duration=LEASE_DURATION),
        "conservative": ConservativePolicy(max_duration=LEASE_DURATION / 3,
                                           max_storage_bytes=512),
        "adaptive": AdaptivePolicy(base_duration=LEASE_DURATION),
    }
    for name, policy in policies.items():
        sim = Simulator(seed=33)
        net = Network(sim)
        node = TiamatInstance(sim, net, "node", policy=policy,
                              storage_capacity=16 * 1024)

        def producer():
            i = 0
            while sim.now < HORIZON:
                try:
                    node.out(Tuple("data", i, "x" * 200))
                except LeaseError:
                    pass
                i += 1
                yield sim.timeout(0.2)

        sim.spawn(producer())
        peak = 0

        def sampler():
            nonlocal peak
            while sim.now < HORIZON:
                yield sim.timeout(5.0)
                peak = max(peak, node.leases.storage_used)

        sim.spawn(sampler())
        sim.run(until=HORIZON + 1.0)
        results[name] = {
            "grants": node.leases.grants,
            "refusals": node.leases.refusals,
            "peak_storage": peak,
        }
    return results


def test_t4_lease_resource_mgmt(benchmark, report):
    leased, unleased = benchmark.pedantic(
        lambda: (run_occupancy(True), run_occupancy(False)),
        rounds=1, iterations=1)
    waiters = run_waiter_bound()
    ablation = run_policy_ablation()

    table = Table(
        "T4a: space occupancy, leased vs unleased deposits",
        ["t (s)", "tuples (lease=30s)", "tuples (no leases / PeerSpaces)"],
        caption="1 never-consumed tuple deposited per second",
    )
    for (t, leased_count), (_, unleased_count) in zip(leased, unleased):
        table.add_row(t, leased_count, unleased_count)
    report.table(table)

    table_b = Table(
        "T4b: blocking operations release resources at lease expiry",
        ["waiters at peak", "waiters after expiry"],
        caption="50 in() ops on a pattern that never matches, 10s leases",
    )
    table_b.add_row(waiters["peak"], waiters["after_expiry"])
    report.table(table_b)

    table_c = Table(
        "T4c: granting-policy ablation on a 16 KiB device",
        ["policy", "grants", "refusals", "peak storage (B)"],
        caption="5 deposits/s of ~220 B tuples for 300 s",
    )
    for name, row in ablation.items():
        table_c.add_row(name, row["grants"], row["refusals"],
                        row["peak_storage"])
    report.table(table_c)

    # Paper shapes.
    plateau = LEASE_DURATION / DEPOSIT_PERIOD
    assert all(count <= plateau + 2 for _, count in leased)  # bounded
    assert unleased[-1][1] >= HORIZON / DEPOSIT_PERIOD - 2   # unbounded growth
    assert waiters["peak"] == 50 and waiters["after_expiry"] == 0
    for row in ablation.values():
        assert row["peak_storage"] <= 16 * 1024  # capacity never exceeded
    # Shorter leases (conservative) reclaim storage faster, so fewer
    # deposits hit a full device; adaptive shrinks leases under pressure
    # and refuses pre-emptively near the threshold.
    assert ablation["conservative"]["refusals"] < ablation["generous"]["refusals"]
    assert ablation["adaptive"]["grants"] > ablation["generous"]["grants"]
