"""Figure 1: logical tuple space composition under visibility change.

Reproduces the three states of the paper's Figure 1 with live instances:

(a) two isolated instances — each logical space is its local space only;
(b) A and B become visible — each sees the union of the two local spaces;
(c) C becomes visible to B only — B sees A∪B∪C while A sees A∪B and C
    sees B∪C (Tiamat defines no global consistency).

The bench probes each instance for every other instance's marker tuple and
prints the reachability matrix per state; the paper's figure is matched
when the matrices equal the three depicted configurations.
"""

from __future__ import annotations

from repro.bench import Table
from repro.core import TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

NAMES = ["A", "B", "C"]


def _reachability(sim, instances) -> dict:
    """For each instance: which instances' marker tuples it can reach."""
    view = {}
    for reader in NAMES:
        reachable = []
        for origin in NAMES:
            op = instances[reader].rdp(Pattern("marker", origin))
            sim.run(until=sim.now + 5.0)
            if op.result is not None:
                reachable.append(origin)
        view[reader] = reachable
    return view


def run_scenario():
    sim = Simulator(seed=1)
    net = Network(sim)
    instances = {name: TiamatInstance(sim, net, name) for name in NAMES}
    for name in NAMES:
        # A lease long enough to survive all three probing phases.
        instances[name].out(
            Tuple("marker", name),
            requester=SimpleLeaseRequester(LeaseTerms(duration=3600.0)))

    views = {}
    # (a) isolated
    views["a"] = _reachability(sim, instances)
    # (b) A-B visible
    net.visibility.set_visible("A", "B")
    views["b"] = _reachability(sim, instances)
    # (c) C visible to B only
    net.visibility.set_visible("B", "C")
    views["c"] = _reachability(sim, instances)
    return views


EXPECTED = {
    "a": {"A": ["A"], "B": ["B"], "C": ["C"]},
    "b": {"A": ["A", "B"], "B": ["A", "B"], "C": ["C"]},
    "c": {"A": ["A", "B"], "B": ["A", "B", "C"], "C": ["B", "C"]},
}


def test_fig1_logical_spaces(benchmark, report):
    views = benchmark.pedantic(run_scenario, rounds=1, iterations=1)

    table = Table(
        "Figure 1: logical tuple space per instance",
        ["state", "instance", "logical space spans", "paper"],
        caption="(a) isolated  (b) A-B visible  (c) C visible to B only",
    )
    for state in ("a", "b", "c"):
        for name in NAMES:
            table.add_row(state, name,
                          "{" + ", ".join(views[state][name]) + "}",
                          "{" + ", ".join(EXPECTED[state][name]) + "}")
    report.table(table)

    assert views == EXPECTED
