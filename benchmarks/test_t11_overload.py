"""T11: goodput vs offered load — admission control turns congestion
collapse into a plateau.

The scenario (shared with ``python -m repro.cli overload``; see
:mod:`repro.bench.overload`): one server whose dispatch workers spend
``serve_cost`` virtual seconds per query fields deadline-bearing blocking
reads from eight Poisson clients.  Offered load sweeps 0.25x to 2x the
server's capacity; both arms share identical workload randomness.

Measured per point and arm:

* **goodput** — operations satisfied *within their deadline* per second
  (replies to already-expired origins count for nothing);
* **served / shed / stale** — where the server spent (or refused to
  spend) its worker time;
* **refusals** — structured QUERY_REFUSED frames clients received
  (each carries ``reason`` + ``retry_after``).

Acceptance (the paper-shaped claim this PR exists to prove):

* the uncontrolled server **collapses** — goodput at 2x saturation falls
  below half its peak;
* the admission-controlled server **plateaus** — goodput at 2x stays at
  >= 80% of its peak, and above the uncontrolled arm's by a wide margin;
* below saturation the controller is invisible (within a few percent of
  the uncontrolled arm).
"""

from __future__ import annotations

from repro.bench import Table
from repro.bench.overload import (
    CLIENTS,
    DURATION,
    OP_DEADLINE,
    QUEUE_BOUND,
    SERVE_COST,
    SERVE_WORKERS,
    run_overload_point,
)

SEED = 11
MULTIPLIERS = (0.25, 0.5, 1.0, 1.5, 2.0)
CAPACITY = SERVE_WORKERS / SERVE_COST


def run_sweeps() -> dict:
    """Both arms across the load sweep; keeps the 2x admission registry."""
    arms: dict = {False: [], True: []}
    registry_sink: list = []
    for admission in (False, True):
        for mult in MULTIPLIERS:
            sink = (registry_sink
                    if admission and mult == MULTIPLIERS[-1] else None)
            arms[admission].append(run_overload_point(
                SEED, mult * CAPACITY, admission=admission,
                registry_sink=sink))
    arms["_registry"] = registry_sink[0]
    return arms


def test_t11_overload(benchmark, report):
    arms = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    report.metrics(arms.pop("_registry"))

    table = Table(
        "T11: goodput vs offered load - admission control ablation",
        ["offered (x cap)", "admission", "started", "goodput (q/s)",
         "served", "shed", "stale", "refusals", "mean latency"],
        caption=f"capacity {CAPACITY:.0f} q/s ({SERVE_WORKERS} workers x "
                f"{SERVE_COST}s/query); {CLIENTS} clients, deadline "
                f"{OP_DEADLINE}s, queue bound {QUEUE_BOUND}, "
                f"{DURATION}s per point, seed {SEED}",
    )
    for mult, uncontrolled, controlled in zip(
            MULTIPLIERS, arms[False], arms[True]):
        for point in (uncontrolled, controlled):
            table.add_row(
                f"{mult:.2f}",
                "on" if point.admission else "off",
                point.started,
                f"{point.goodput:.2f}",
                point.served,
                point.sheds,
                point.stale_dropped,
                point.refusals_seen,
                f"{point.mean_latency * 1e3:.0f} ms",
            )
    report.table(table)

    peak_off = max(p.goodput for p in arms[False])
    peak_on = max(p.goodput for p in arms[True])
    at2_off = arms[False][-1].goodput
    at2_on = arms[True][-1].goodput

    # --- collapse: the uncontrolled server falls off a cliff ----------
    assert at2_off < 0.5 * peak_off, (at2_off, peak_off)

    # --- plateau: the controlled server holds its peak at 2x ----------
    assert at2_on >= 0.8 * peak_on, (at2_on, peak_on)
    assert at2_on >= 0.8 * CAPACITY, (at2_on, CAPACITY)
    assert at2_on > 2.0 * at2_off, (at2_on, at2_off)

    # --- and is invisible below saturation ----------------------------
    for mult, uncontrolled, controlled in zip(
            MULTIPLIERS, arms[False], arms[True]):
        if mult <= 0.5:
            assert controlled.satisfied == uncontrolled.satisfied, mult
            assert controlled.sheds == 0, (mult, controlled.sheds)

    # Every shed is structurally attributed, and clients saw the shape.
    total_sheds = sum(p.sheds for p in arms[True])
    attributed = sum(sum(p.shed_by_reason.values()) for p in arms[True])
    assert total_sheds == attributed, (total_sheds, attributed)
    assert sum(p.refusals_seen for p in arms[True]) > 0
