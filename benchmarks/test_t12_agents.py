"""T12: multi-agent blackboard vs centralized master under 20% churn.

The scenario (shared with ``python -m repro.cli agents``; see
:mod:`repro.bench.agents`): six agents work a streaming task supply and
settle three spread-out ballots for 24 virtual seconds, once with every
agent up and once with each agent spending ~20% of its time crashed
(exponential up/down cycling, fresh empty instance on revival).

* **blackboard** — tasks are durable tuples on an admission-controlled
  board; agents bid/claim with leased ``inp``; lease expiry re-offers
  abandoned work; a completion token makes duplicates *structurally*
  impossible; ballots settle by rd-quorum + decision token.
* **central** — a master assigns each task to a named worker and learns
  about crashes only through reassignment timeouts; a stale assignment
  consumed after revival can complete twice.

Acceptance (the paper-shaped claim this PR exists to prove):

* the blackboard at 20% churn keeps >= 70% of its zero-churn goodput;
* the blackboard never records a duplicate completion, with or without
  churn — while the centralized baseline is *allowed* to (and under
  churn typically does);
* every opened ballot reaches a decision in both blackboard arms;
* churn actually happened (crashes observed) and the central master
  actually paid recovery timeouts (reassignments observed).

Set ``REPRO_BENCH_SMOKE=1`` to shorten each point to 12 virtual seconds.

Under ``REPRO_CHAOS_LOSS`` (the nightly soak injects 25% i.i.d. frame
loss) the performance claims are waived and only the *safety* claims are
asserted: non-blocking probes are deliberately single-round ("leases
remain the only effort budget"), so heavy loss degrades throughput by
design — what must survive is exactly-once completion and agreed,
non-split ballots.
"""

from __future__ import annotations

import os

from repro.bench import Table
from repro.bench.agents import (
    AGENTS,
    BALLOTS,
    CHURN,
    DURATION,
    MEAN_DOWNTIME,
    WORK_MEAN,
    run_t12,
)

SEED = 12
T12_DURATION = 12.0 if os.environ.get("REPRO_BENCH_SMOKE") else DURATION


def run_points() -> dict:
    registry_sink: list = []
    result = run_t12(SEED, duration=T12_DURATION,
                     registry_sink=registry_sink)
    return {"result": result, "_registry": registry_sink[0]}


def test_t12_agents(benchmark, report):
    out = benchmark.pedantic(run_points, rounds=1, iterations=1)
    report.metrics(out.pop("_registry"))
    result = out["result"]

    table = Table(
        "T12: blackboard vs centralized master under churn",
        ["arm", "churn", "completed", "goodput (t/s)", "dup", "fairness",
         "peer debt", "consensus", "ttc (s)", "recoveries", "crashes"],
        caption=f"{AGENTS} agents, {T12_DURATION:.0f}s per point, "
                f"work mean {WORK_MEAN}s, {BALLOTS} ballots, churn target "
                f"{CHURN:.0%} (mean outage {MEAN_DOWNTIME}s), seed {SEED}; "
                "recoveries = re-offers (blackboard) / reassignments "
                "(central)",
    )
    for point in result.points:
        decided = f"{point.consensus_decided}/{point.consensus_opened}"
        table.add_row(
            point.arm, f"{point.churn:.0%}", point.completed,
            f"{point.goodput:.2f}", point.duplicates,
            f"{point.fairness:.3f}", f"{point.max_peer_debt:.3f}",
            decided, f"{point.consensus_mean:.2f}",
            point.recoveries, point.crashes,
        )
    report.table(table)
    report.add(f"blackboard churn/zero goodput ratio: "
               f"{result.blackboard_goodput_ratio:.3f}   "
               f"central: {result.central_goodput_ratio:.3f}")

    bb_zero, bb_churn = result.blackboard_zero, result.blackboard_churn
    chaos = float(os.environ.get("REPRO_CHAOS_LOSS", "0") or "0") > 0

    # --- churn actually happened, and work still flowed ---------------
    assert bb_churn.crashes > 0
    assert result.central_churn.crashes > 0
    assert bb_zero.completed > 0 and bb_churn.completed > 0

    # --- exactly-once: the token gate structurally forbids duplicates -
    assert bb_zero.duplicates == 0
    assert bb_churn.duplicates == 0

    # --- consensus safety: ballots never over-decide or split ---------
    for point in (bb_zero, bb_churn):
        assert point.consensus_decided <= point.consensus_opened, point

    if chaos:
        # Soak mode: safety held under injected frame loss; the
        # performance claims below are calibrated for a clean wire.
        return

    # --- goodput holds: >= 70% of the zero-churn arm ------------------
    assert result.blackboard_goodput_ratio >= 0.70, (
        bb_churn.goodput, bb_zero.goodput)

    # --- consensus liveness: every opened ballot decided --------------
    for point in (bb_zero, bb_churn):
        assert point.consensus_decided == point.consensus_opened, point

    # --- claims spread across the swarm (no starvation) ---------------
    assert bb_churn.fairness >= 0.70, bb_churn.completed_by

    # --- the centralized arm paid for recovery with timeouts ----------
    assert result.central_churn.recoveries > 0
