"""T2 (section 3.2.1): the web client/proxy application's three claims.

(a) **dynamic load balancing** — "proxy servers can be dynamically added
    without the clients' knowledge ... to handle increases in demand":
    fixed offered load, 1/2/4 proxies; throughput rises and latency falls,
    while client code and client-visible failures stay untouched.
(b) **failure replacement** — "in the case of failure, to replace the
    failed server.  Neither of these actions is visible to, nor perturbs,
    the clients": kill the only proxy mid-run and add a replacement; all
    requests still complete.
(c) **disconnected operation** — "the client can still make requests even
    in the absence of any servers ... once a server becomes visible it
    will see the tuple (assuming the lease has not expired)": reconnect
    before vs after the request lease expires.  Also ablates the paper's
    prototype limitation (propagate="start") against the full model
    ("continuous").
"""

from __future__ import annotations

from repro.apps import OriginFabric, WebScenario
from repro.bench import Table
from repro.core import TiamatConfig
from repro.net import Network
from repro.sim import Simulator

URLS_PER_CLIENT = 6
CLIENTS = 4


def run_scaling(proxies: int, seed: int = 11) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    scenario = WebScenario(sim, net, fabric=OriginFabric(fetch_time=2.0))
    for i in range(CLIENTS):
        scenario.add_client(f"client{i}")
    for i in range(proxies):
        scenario.add_proxy(f"proxy{i}")
    scenario.connect_all()
    for name, client in scenario.clients.items():
        urls = [f"http://{name}/{i}" for i in range(URLS_PER_CLIENT)]
        sim.spawn(client.browse(urls, think_time=0.5))
    sim.run(until=600.0)
    latencies = [lat for c in scenario.clients.values() for lat in c.latencies]
    return {
        "satisfied": scenario.total_satisfied(),
        "failed": scenario.total_failed(),
        "mean_latency": sum(latencies) / len(latencies) if latencies else float("inf"),
        "makespan": max(latencies) if latencies else float("inf"),
    }


def run_failure_replacement(seed: int = 12) -> dict:
    sim = Simulator(seed=seed)
    net = Network(sim)
    scenario = WebScenario(sim, net, fabric=OriginFabric(fetch_time=1.0))
    client = scenario.add_client("client0")
    scenario.add_proxy("proxy0")
    scenario.connect_all()
    urls = [f"http://site/{i}" for i in range(8)]
    sim.spawn(client.browse(urls, think_time=2.0))

    def kill_and_replace():
        scenario.proxies["proxy0"].stop()
        net.visibility.set_up("proxy0", False)
        scenario.add_proxy("replacement")
        scenario.connect_all()

    sim.schedule(6.0, kill_and_replace)
    sim.run(until=600.0)
    return {
        "satisfied": client.satisfied,
        "failed": client.failed,
        "replacement_handled": scenario.proxies["replacement"].handled,
    }


def run_disconnected(reconnect_at: float, request_lease: float,
                     propagate_mode: str, seed: int = 13) -> bool:
    """True iff the parked request was eventually served."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode=propagate_mode)
    scenario = WebScenario(sim, net, config=config)
    client = scenario.add_client("client0", request_lease=request_lease,
                                 response_wait=reconnect_at + 30.0)
    scenario.add_proxy("proxy0")
    # client0 starts between networks: no visibility at all.
    process = sim.spawn(client.fetch("http://queued/"))
    sim.schedule(reconnect_at, net.visibility.set_visible,
                 "client0", "proxy0", True)
    sim.run(until=reconnect_at + 60.0)
    return process.triggered and process.value is not None


def count_glue_lines() -> int:
    """Effective code lines of the web app's tuple-space glue.

    The paper: "Around two hundred lines of supplemental code was required
    in order to integrate the web communication with the logical tuple
    space."  We count our equivalent — the webproxy module minus blank
    lines, comments, and docstrings.
    """
    import io
    import pathlib
    import tokenize

    import repro.apps.webproxy as module

    source = pathlib.Path(module.__file__).read_text()
    code_lines = set()
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                          tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER):
            continue
        if token.type == tokenize.STRING and token.string.startswith(('"""', "'''")):
            continue  # docstring
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
    return len(code_lines)


def test_t2_webproxy(benchmark, report):
    scaling = benchmark.pedantic(
        lambda: {n: run_scaling(n) for n in (1, 2, 4)}, rounds=1, iterations=1)

    table = Table(
        "T2a: proxies added for load balancing (clients unchanged)",
        ["proxies", "satisfied", "failed", "mean latency (s)",
         "max latency (s)"],
        caption=f"{CLIENTS} clients x {URLS_PER_CLIENT} requests, 2s fetches",
    )
    for n, row in scaling.items():
        table.add_row(n, row["satisfied"], row["failed"],
                      row["mean_latency"], row["makespan"])
    report.table(table)

    replacement = run_failure_replacement()
    table_b = Table(
        "T2b: failed proxy replaced without client perturbation",
        ["satisfied", "failed", "handled by replacement"],
        caption="The only proxy dies at t=6s; a replacement appears at once",
    )
    table_b.add_row(replacement["satisfied"], replacement["failed"],
                    replacement["replacement_handled"])
    report.table(table_b)

    cases = {
        ("live lease", "continuous"): run_disconnected(
            reconnect_at=10.0, request_lease=60.0, propagate_mode="continuous"),
        ("expired lease", "continuous"): run_disconnected(
            reconnect_at=30.0, request_lease=10.0, propagate_mode="continuous"),
        ("live lease", "start"): run_disconnected(
            reconnect_at=10.0, request_lease=60.0, propagate_mode="start"),
    }
    table_c = Table(
        "T2c: disconnected client, served after reconnect?",
        ["request lease", "propagation", "served"],
        caption="Client issues a request while isolated, reconnects later",
    )
    for (lease_state, mode), served in cases.items():
        table_c.add_row(lease_state, mode, served)
    report.table(table_c)

    glue = count_glue_lines()
    report.add(f"Coordination glue: {glue} effective code lines in "
               f"repro.apps.webproxy (paper: 'around two hundred lines of "
               f"supplemental code')")

    # Paper shapes.
    assert glue < 300, "the glue should stay in the paper's ~200-line class"
    assert all(row["satisfied"] == CLIENTS * URLS_PER_CLIENT
               for row in scaling.values())
    assert scaling[4]["mean_latency"] < scaling[1]["mean_latency"]
    assert replacement["satisfied"] == 8 and replacement["failed"] == 0
    assert replacement["replacement_handled"] > 0
    assert cases[("live lease", "continuous")] is True
    assert cases[("expired lease", "continuous")] is False
    # The prototype's start-only propagation misses the reconnection —
    # the limitation the paper itself flags as future work.
    assert cases[("live lease", "start")] is False
