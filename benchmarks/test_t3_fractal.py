"""T3 (section 3.2.2): the fractal generator over the tuple space.

"The load balancing server was removed and the data producers communicated
with the entities performing the calculations through the space ...  the
number of entities performing calculations could be increased and decreased
without perturbing the clients."

The bench renders a fixed Mandelbrot job with farms of 1/2/4/8 workers
(identical checksum, near-linear speedup until tile starvation) and an
*elastic* run where the farm grows and shrinks mid-render with no effect on
the master beyond the completion time.
"""

from __future__ import annotations

from repro.apps import FractalMaster, FractalWorker
from repro.bench import Table
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator

TILES = 16
RESOLUTION = 48
MAX_ITER = 100
TPI = 2e-4  # virtual seconds per iteration


def build_farm(workers: int, seed: int):
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = ["master"] + [f"worker{i}" for i in range(workers)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    master = FractalMaster(sim, instances["master"], job="bench", tiles=TILES,
                           resolution=RESOLUTION, max_iter=MAX_ITER)
    pool = [FractalWorker(sim, instances[f"worker{i}"], time_per_iteration=TPI)
            for i in range(workers)]
    for worker in pool:
        worker.start()
    return sim, net, instances, master, pool


def run_scaling() -> dict:
    results = {}
    for workers in (1, 2, 4, 8):
        sim, net, instances, master, pool = build_farm(workers, seed=21)
        sim.spawn(master.run())
        sim.run(until=50_000.0)
        assert master.complete
        results[workers] = {
            "elapsed": master.finished_at - master.started_at,
            "checksum": master.checksum,
            "tiles": sorted((w.tiles_done for w in pool), reverse=True),
        }
    return results


def run_elastic() -> dict:
    sim, net, instances, master, pool = build_farm(1, seed=22)
    sim.spawn(master.run())

    def grow():
        for i in (1, 2, 3):
            inst = TiamatInstance(sim, net, f"late{i}",
                                  config=TiamatConfig(propagate_mode="continuous"))
            instances[f"late{i}"] = inst
            net.visibility.connect_clique(list(instances))
            worker = FractalWorker(sim, inst, time_per_iteration=TPI)
            worker.start()
            pool.append(worker)

    def shrink():
        pool[0].stop()
        net.visibility.set_up("worker0", False)

    sim.schedule(1.0, grow)
    sim.schedule(4.0, shrink)
    sim.run(until=50_000.0)
    assert master.complete
    return {
        "elapsed": master.finished_at - master.started_at,
        "checksum": master.checksum,
        "late_tiles": sum(w.tiles_done for w in pool[1:]),
    }


def test_t3_fractal(benchmark, report):
    scaling = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    elastic = run_elastic()

    base = scaling[1]["elapsed"]
    table = Table(
        "T3: fractal farm scaling (no load-balancing server anywhere)",
        ["workers", "elapsed (s)", "speedup", "checksum", "tiles per worker"],
        caption=f"{TILES} tiles, {RESOLUTION}px, max_iter={MAX_ITER}",
    )
    for workers, row in scaling.items():
        table.add_row(workers, row["elapsed"], base / row["elapsed"],
                      row["checksum"], str(row["tiles"]))
    report.table(table)

    table2 = Table(
        "T3 elastic: workers added (t=1s) and removed (t=4s) mid-render",
        ["elapsed (s)", "checksum", "tiles by late workers"],
        caption="Master code identical; it never observes the farm changing",
    )
    table2.add_row(elastic["elapsed"], elastic["checksum"],
                   elastic["late_tiles"])
    report.table(table2)

    checksums = {row["checksum"] for row in scaling.values()}
    assert len(checksums) == 1, "render result must not depend on farm size"
    assert elastic["checksum"] in checksums
    assert scaling[4]["elapsed"] < scaling[2]["elapsed"] < scaling[1]["elapsed"]
    # Speedup is near-linear at small farm sizes.
    assert base / scaling[2]["elapsed"] > 1.5
    assert base / scaling[4]["elapsed"] > 2.5
    assert elastic["late_tiles"] > 0
