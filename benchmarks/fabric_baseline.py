#!/usr/bin/env python
"""Fabric scalability baseline harness + CI gate (O(k) contact cost).

Runs the T5b fabric arm's 100-host scenario — the request/response
workload over the sharded + replicated fabric, plus the union-scan
control — and either records the result as the committed baseline or
checks a fresh run against it.  The metrics come from a seeded
discrete-event simulation, so they are exactly reproducible; the gate's
tolerance only absorbs deliberate protocol changes, not runner noise.

What the gate proves: a ground-prefix consume contacts the O(k) shard
owner set (``fabric_scatter_width``), total wire cost per logical
operation stays bounded (``fabric_frames_per_op``, vs the union scan's
~n), and routing does not cost availability (success tracked via
``fabric_timeout_rate``).

Usage::

    python benchmarks/fabric_baseline.py                # measure + print
    python benchmarks/fabric_baseline.py --rebaseline   # rewrite BENCH_fabric.json
    python benchmarks/fabric_baseline.py --check        # gate: exit 1 on >25% regression

**Rebaseline policy**: same as ``perf_baseline.py`` — when a PR
intentionally changes fabric wire cost, run ``--rebaseline``, commit the
updated ``BENCH_fabric.json`` in the same PR, and say why in the PR
description.  Never rebaseline to silence a regression you cannot
explain.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.bench import perf  # noqa: E402

from test_t5b_tiamat_scalability import FABRIC_DURATION, run_size  # noqa: E402
from perf_baseline import runner_fingerprint  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_fabric.json")

#: Gate scenario size: large enough that the union scan visibly pays O(n),
#: small enough for a per-PR CI job.
HOSTS = 100


def collect() -> dict:
    """Measure the gated metrics (all lower-is-better, all deterministic)."""
    fabric = run_size(HOSTS, fabric=True, duration=FABRIC_DURATION)
    union = run_size(HOSTS, fabric=False, duration=FABRIC_DURATION)
    return {
        "fabric_frames_per_op": fabric["frames_per_op"],
        "fabric_scatter_width": fabric["scatter_width"],
        "fabric_latency_s": fabric["latency"],
        "fabric_timeout_rate": 1.0 - fabric["success"],
        "union_frames_per_op": union["frames_per_op"],
    }


def build_document(metrics: dict) -> dict:
    return {
        "schema": perf.SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "runner": runner_fingerprint(),
        "scenario": {"hosts": HOSTS, "duration_s": FABRIC_DURATION,
                     "workload": "request_response"},
        "units": {"*_per_op": "frames per logical operation",
                  "*_width": "mean peers contacted per planned operation",
                  "*_s": "mean virtual seconds",
                  "*_rate": "fraction of consume attempts"},
        "metrics": metrics,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON path (default BENCH_fabric.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the measured metrics as the new baseline")
    parser.add_argument("--tolerance", type=float,
                        default=perf.DEFAULT_TOLERANCE,
                        help="relative regression tolerated (default 0.25)")
    args = parser.parse_args(argv)

    metrics = collect()

    baseline = None
    if args.check or (os.path.exists(args.baseline) and not args.rebaseline):
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            baseline = None

    print(perf.render_table(metrics, baseline))

    if args.rebaseline:
        doc = build_document(metrics)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[fabric] baseline written to {args.baseline}")
        return 0

    if args.check:
        if baseline is None:
            print(f"\n[fabric] FAIL: no baseline at {args.baseline} "
                  "(run --rebaseline and commit it)")
            return 1
        problems = perf.compare(baseline, metrics, tolerance=args.tolerance)
        # The headline claim is absolute, not just regression-relative:
        # routed consumes must beat the union scan by a wide margin.
        if metrics["fabric_frames_per_op"] > 8.0:
            problems.append(
                f"fabric_frames_per_op {metrics['fabric_frames_per_op']:.2f} "
                "exceeds the absolute O(k) budget of 8.0")
        if metrics["union_frames_per_op"] < 3 * metrics["fabric_frames_per_op"]:
            problems.append(
                "fabric no longer beats the union scan 3x: "
                f"{metrics['fabric_frames_per_op']:.2f} vs "
                f"{metrics['union_frames_per_op']:.2f}")
        if problems:
            print("\n[fabric] FAIL: scalability gate tripped:")
            for line in problems:
                print(f"  - {line}")
            print("\nIf this change is intentional, rebaseline per the "
                  "policy in this script's docstring.")
            return 1
        print(f"\n[fabric] OK: all metrics within {args.tolerance:.0%} "
              "of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
