"""T5b (section 4.7 corollary): Tiamat alone, pushed to 64 hosts.

"Neither Peers nor Tiamat attempt to provide global consistency and, as a
result, are more likely to scale to allow a greater number of devices
simultaneous access to resources."  T5 compares systems at up to 16 hosts;
this bench drives Tiamat itself to 64 and reports the scaling curve:
consume success rate, frames per operation, and mean match latency.

The claim holds when success stays flat as hosts grow (no consistency
machinery to collapse) while per-operation cost grows at most linearly
with the host count — a blocking operation granted a full-population
remote budget contacts each peer once.  (The lease budget is the knob
between coverage and cost: T5 runs the same workload under the default
32-contact budget, where cost is capped instead.)
"""

from __future__ import annotations

from repro.apps import RequestResponseWorkload
from repro.bench import Table, build_system
from repro.core import TiamatConfig

SIZES = (4, 8, 16, 32, 64)
DURATION = 60.0


def run_size(n: int, seed: int = 77) -> dict:
    # The remote-contact lease budget must cover the population, or the
    # lease (correctly) bounds coverage before the workload is satisfied.
    sim, network, nodes = build_system(
        "tiamat", n, seed=seed,
        config=TiamatConfig(propagate_mode="continuous"),
        max_remotes=n + 4)
    sim.run(until=2.0)
    frames_before = network.stats.total_messages
    workload = RequestResponseWorkload(sim, nodes, sim.rng("wl"),
                                       period=4.0, op_timeout=8.0)
    workload.start(duration=DURATION)
    sim.run(until=2.0 + DURATION + 16.0)
    stats = workload.stats
    ops = max(1, stats.produced + stats.consume_attempts)
    frames = network.stats.total_messages - frames_before
    return {
        "success": stats.success_rate,
        "frames_per_op": frames / ops,
        "consumed": stats.consumed,
    }


def test_t5b_tiamat_scalability(benchmark, report):
    results = benchmark.pedantic(
        lambda: {n: run_size(n) for n in SIZES}, rounds=1, iterations=1)

    table = Table(
        "T5b: Tiamat scaling curve (no global consistency to collapse)",
        ["hosts", "success rate", "frames/op", "items consumed"],
        caption=f"request/response workload, {DURATION:.0f}s, continuous "
                "propagation",
    )
    for n, row in results.items():
        table.add_row(n, row["success"], row["frames_per_op"], row["consumed"])
    report.table(table)

    # Success stays flat from 4 to 64 hosts — no consistency machinery to
    # collapse, the paper's scaling argument.
    for n in SIZES:
        assert results[n]["success"] > 0.7, f"success collapsed at {n} hosts"
    # Per-operation cost is at most linear in the population: a
    # full-coverage blocking op contacts every peer once (and the lease's
    # remote budget is the knob that trades coverage for cost — see T5,
    # where the default budget caps frames/op instead of success).
    growth = results[64]["frames_per_op"] / results[4]["frames_per_op"]
    assert growth < 2 * (64 / 4)
