"""T5b (section 4.7 corollary): Tiamat alone, pushed to 64 hosts.

"Neither Peers nor Tiamat attempt to provide global consistency and, as a
result, are more likely to scale to allow a greater number of devices
simultaneous access to resources."  T5 compares systems at up to 16 hosts;
this bench drives Tiamat itself to 64 and reports the scaling curve:
consume success rate, frames per operation, and mean match latency.

The claim holds when success stays flat as hosts grow (no consistency
machinery to collapse) while per-operation cost grows at most linearly
with the host count — a blocking operation granted a full-population
remote budget contacts each peer once.  (The lease budget is the knob
between coverage and cost: T5 runs the same workload under the default
32-contact budget, where cost is capped instead.)

The **fabric arm** re-runs the same workload with ``repro.fabric``
enabled: tuples shard across the population by (arity, leading-field)
signature with k-way replication, so a ground-prefix consume contacts the
O(k) owner set instead of scanning the union.  The arm drives 100, 500
and 1000 hosts and must show frames/op *flat* in the population — the
scalability gate CI enforces via ``benchmarks/fabric_baseline.py``.
Set ``REPRO_BENCH_SMOKE=1`` to limit the fabric arm to 100 hosts.
"""

from __future__ import annotations

import os

from repro.apps import RequestResponseWorkload
from repro.bench import Table, build_system
from repro.core import TiamatConfig
from repro.fabric import FabricConfig

SIZES = (4, 8, 16, 32, 64)
DURATION = 60.0

FABRIC_SIZES = (100, 500, 1000)
if os.environ.get("REPRO_BENCH_SMOKE"):
    FABRIC_SIZES = (100,)
#: Shorter soak for the large fabric sizes: frames/op and latency are
#: rates, so the arm does not need the full 60s to stabilise.
FABRIC_DURATION = 30.0


def run_size(n: int, seed: int = 77, fabric: bool = False,
             duration: float = DURATION) -> dict:
    # The remote-contact lease budget must cover the population, or the
    # lease (correctly) bounds coverage before the workload is satisfied.
    # (With the fabric on, routing contacts O(k) owners and the budget is
    # never binding — it is kept identical so the arms differ in exactly
    # one knob.)
    config = TiamatConfig(
        propagate_mode="continuous",
        fabric=FabricConfig(key_fields=2) if fabric else None)
    sim, network, nodes = build_system(
        "tiamat", n, seed=seed, config=config, max_remotes=n + 4)
    sim.run(until=2.0)
    frames_before = network.stats.total_messages
    workload = RequestResponseWorkload(sim, nodes, sim.rng("wl"),
                                       period=4.0, op_timeout=8.0)
    workload.start(duration=duration)
    sim.run(until=2.0 + duration + 16.0)
    stats = workload.stats
    ops = max(1, stats.produced + stats.consume_attempts)
    frames = network.stats.total_messages - frames_before
    scatter_ops = scatter_sum = 0
    if fabric:
        for node in nodes.values():
            scatter_ops += node.instance.fabric.scatter_ops
            scatter_sum += node.instance.fabric.scatter_width_sum
    return {
        "success": stats.success_rate,
        "frames_per_op": frames / ops,
        "latency": stats.mean_latency,
        "consumed": stats.consumed,
        "scatter_width": scatter_sum / max(1, scatter_ops),
    }


def test_t5b_tiamat_scalability(benchmark, report):
    results = benchmark.pedantic(
        lambda: {n: run_size(n) for n in SIZES}, rounds=1, iterations=1)

    table = Table(
        "T5b: Tiamat scaling curve (no global consistency to collapse)",
        ["hosts", "success rate", "frames/op", "items consumed"],
        caption=f"request/response workload, {DURATION:.0f}s, continuous "
                "propagation",
    )
    for n, row in results.items():
        table.add_row(n, row["success"], row["frames_per_op"], row["consumed"])
    report.table(table)

    # Success stays flat from 4 to 64 hosts — no consistency machinery to
    # collapse, the paper's scaling argument.
    for n in SIZES:
        assert results[n]["success"] > 0.7, f"success collapsed at {n} hosts"
    # Per-operation cost is at most linear in the population: a
    # full-coverage blocking op contacts every peer once (and the lease's
    # remote budget is the knob that trades coverage for cost — see T5,
    # where the default budget caps frames/op instead of success).
    growth = results[64]["frames_per_op"] / results[4]["frames_per_op"]
    assert growth < 2 * (64 / 4)


def test_t5b_fabric_scalability(benchmark, report):
    """Sharded fabric arm: contact cost is O(k), flat in the population.

    The union-scan baseline at 100 hosts pays ~n frames per blocking
    consume; the fabric routes the same ground-prefix pattern to its
    k-owner shard, so frames/op must stay bounded (≤ 8) and essentially
    flat from 100 to 1000 hosts.
    """
    def run_all():
        rows = {("union", 100): run_size(100, duration=FABRIC_DURATION)}
        for n in FABRIC_SIZES:
            rows[("fabric", n)] = run_size(n, fabric=True,
                                           duration=FABRIC_DURATION)
        return rows

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "T5b fabric arm: O(k) contact cost vs the union scan",
        ["arm", "hosts", "success rate", "frames/op", "mean latency (s)",
         "items consumed"],
        caption=f"request/response workload, {FABRIC_DURATION:.0f}s, "
                "fabric k=2 replication, shard key = arity + 2 fields",
    )
    for (arm, n), row in results.items():
        table.add_row(arm, n, row["success"], row["frames_per_op"],
                      row["latency"], row["consumed"])
    report.table(table)

    union = results[("union", 100)]
    small = results[("fabric", 100)]
    # The headline: routed consumes beat the union scan by worse than 3x
    # at 100 hosts and stay under the absolute budget.
    assert small["frames_per_op"] <= 8.0, small
    assert union["frames_per_op"] >= 3 * small["frames_per_op"]
    for n in FABRIC_SIZES:
        row = results[("fabric", n)]
        assert row["success"] > 0.7, f"fabric success collapsed at {n} hosts"
        # O(k), not O(n): growing the population 10x must not move
        # frames/op by more than 2x (slack for gossip/heartbeat overhead).
        assert row["frames_per_op"] < 2 * small["frames_per_op"], (n, row)
