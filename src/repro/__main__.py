"""``python -m repro`` — delegates to the scenario CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
