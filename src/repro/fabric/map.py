"""The gossiped shard map: lease-governed fabric membership.

Each member's entry is a lease expiry (absolute virtual time); a member
that stops renewing lapses off the map — and therefore off the ring — and
its shards hand off to the successors.  Maps merge by per-member
``max(expiry)``, which is commutative, associative, and idempotent, so
gossip converges regardless of delivery order or duplication.

``digest()`` condenses the live member *name set* into a short stable hex
string that piggybacks on ordinary protocol frames (the ``"fmd"`` payload
key); a receiver whose own digest differs pushes its full map back, so any
two communicating members converge on membership within one round trip
even between heartbeats.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fabric.ring import HashRing, stable_hash


class ShardMap:
    """Membership (name -> lease expiry) plus the derived hash ring."""

    def __init__(self, vnodes: int = 8) -> None:
        self.vnodes = vnodes
        self.members: Dict[str, float] = {}
        #: Bumped on every local mutation; exported as a gauge so operators
        #: can see map churn (and skew between nodes) directly.
        self.version = 0
        self._ring: HashRing = HashRing([], vnodes)
        self._ring_members: tuple = ()
        self._digest_value = ""
        self._digest_version = -1
        self._digest_until = 0.0

    # ------------------------------------------------------------------
    def live(self, now: float) -> List[str]:
        """Members whose lease is still running, sorted by name."""
        return sorted(n for n, exp in self.members.items() if exp > now)

    def is_live(self, name: str, now: float) -> bool:
        return self.members.get(name, 0.0) > now

    def renew(self, name: str, expires_at: float) -> bool:
        """Extend (or add) one member's lease; True if anything changed."""
        if self.members.get(name, 0.0) >= expires_at:
            return False
        self.members[name] = expires_at
        self.version += 1
        return True

    def drop(self, name: str) -> bool:
        """Remove a member outright (local sweep of a lapsed lease)."""
        if name not in self.members:
            return False
        del self.members[name]
        self.version += 1
        return True

    def sweep(self, now: float) -> List[str]:
        """Drop every lapsed member; returns the names dropped."""
        lapsed = [n for n, exp in self.members.items() if exp <= now]
        for name in lapsed:
            del self.members[name]
        if lapsed:
            self.version += 1
        return sorted(lapsed)

    def merge(self, entries: Dict[str, float]) -> bool:
        """Fold another map's entries in (per-member max expiry)."""
        changed = False
        for name, expires_at in entries.items():
            if self.members.get(name, 0.0) < expires_at:
                self.members[name] = expires_at
                changed = True
        if changed:
            self.version += 1
        return changed

    # ------------------------------------------------------------------
    def ring(self, now: float) -> HashRing:
        """The consistent-hash ring over the currently-live members.

        Rebuilt only when the live set actually changes (renewals that
        keep a member live do not churn placement).
        """
        live = tuple(self.live(now))
        if live != self._ring_members:
            self._ring = HashRing(live, self.vnodes)
            self._ring_members = live
        return self._ring

    def digest(self, now: float) -> str:
        """A short stable digest of the live membership for piggybacking.

        Deliberately covers the live *names* only — exactly what the ring
        (and therefore routing) depends on.  Expiries are excluded: lease
        renewals reach different members at different times, so including
        them would make any two maps perpetually "different" and turn the
        digest exchange into a full-map push on every frame.

        The digest piggybacks on *every* frame sent, so it is cached: the
        value can only change when the map version bumps or the earliest
        live lease lapses.
        """
        if self.version != self._digest_version or now >= self._digest_until:
            live = self.live(now)
            self._digest_value = format(stable_hash("|".join(live)), "016x")
            self._digest_version = self.version
            self._digest_until = min((self.members[n] for n in live),
                                     default=float("inf"))
        return self._digest_value

    def to_payload(self) -> dict:
        """Wire form: every entry (live and lapsed alike merge fine)."""
        return {name: expires_at for name, expires_at in self.members.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardMap v{self.version} members={len(self.members)}>"
