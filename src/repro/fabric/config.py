"""Configuration for the sharded + replicated tuple-space fabric.

Deliberately dependency-free (plain dataclass, no repro imports) so
:class:`~repro.core.config.TiamatConfig` can reference it without import
cycles: ``TiamatConfig(fabric=FabricConfig(...))`` switches an instance
from the union-scan logical space to consistent-hash routing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FabricConfig:
    """Tunables for one instance's fabric layer.

    Attributes
    ----------
    replication:
        Owner-set size ``k``: one primary plus ``k - 1`` quarantined
        replicas per shard key.  Ground lookups contact at most ``k``
        nodes.
    key_fields:
        How many leading tuple fields feed the shard key (alongside the
        arity, always part of the key).  A pattern routes O(k) only when
        its first ``key_fields`` specs are all actuals; otherwise it falls
        back to the bounded scatter.  Workloads that tag tuples with a
        constant first field and address them with the second should use
        ``key_fields=2`` so the shard key actually spreads.
    vnodes:
        Virtual nodes per member on the consistent-hash ring (placement
        smoothing).
    scatter_limit:
        Upper bound on members contacted by a wildcard-first pattern (the
        bounded scatter).  Coverage beyond the limit is deliberately
        sacrificed for O(1) cost; raise it when wildcard reads must see
        more of the space.
    membership_lease:
        Seconds a gossiped membership entry stays live without renewal —
        the fabric's ownership lease.  When it lapses the member drops off
        the ring and its shards hand off to the successors.
    heartbeat_period:
        Seconds between a member's renewal + anti-entropy beats (renew own
        lease, sweep expired members, rebalance misplaced primaries,
        gossip the map).
    gossip_fanout:
        How many live members each heartbeat pushes the shard map to.
    gossip_idle_beats:
        Anti-entropy backoff: when the live member set has not changed
        since the last push, gossip only every this-many heartbeats.  The
        digest piggybacked on ordinary frames already converges active
        pairs, so steady-state background gossip is pure insurance.
    migrate_timeout:
        Seconds a migrating owner keeps the handed-off entry held awaiting
        the successor's ack before dropping it (never releasing: a
        released copy could race the delivered one into a double consume).
    """

    replication: int = 2
    key_fields: int = 1
    vnodes: int = 8
    scatter_limit: int = 8
    membership_lease: float = 10.0
    heartbeat_period: float = 3.0
    gossip_fanout: int = 2
    gossip_idle_beats: int = 4
    migrate_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.key_fields < 1:
            raise ValueError("key_fields must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.scatter_limit < 1:
            raise ValueError("scatter_limit must be >= 1")
        if self.membership_lease <= 0:
            raise ValueError("membership_lease must be > 0")
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be > 0")
        if self.heartbeat_period >= self.membership_lease:
            raise ValueError("heartbeat_period must be < membership_lease "
                             "(a member must renew before its lease lapses)")
        if self.gossip_fanout < 1:
            raise ValueError("gossip_fanout must be >= 1")
        if self.gossip_idle_beats < 1:
            raise ValueError("gossip_idle_beats must be >= 1")
        if self.migrate_timeout <= 0:
            raise ValueError("migrate_timeout must be > 0")
