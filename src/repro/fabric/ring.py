"""A consistent-hash ring with virtual nodes.

Placement must agree across processes and runs, so every hash comes from
``hashlib.blake2b`` — never Python's builtin ``hash()``, which is
randomized per process and would make two instances of the same fabric
disagree about ownership (and break the differential harness's replay
guarantees).
"""

from __future__ import annotations

from bisect import bisect_right
from functools import lru_cache
from hashlib import blake2b
from typing import Iterable, List, Tuple


def stable_hash(text: str) -> int:
    """A 64-bit process-independent hash of ``text``."""
    return int.from_bytes(blake2b(text.encode("utf-8"), digest_size=8).digest(),
                          "big")


@lru_cache(maxsize=16384)
def _member_points(member: str, vnodes: int) -> Tuple[int, ...]:
    """One member's ring points — cached, since every instance of a fabric
    hashes the same names (n instances × n members would otherwise redo
    the same n² blake2b calls on every ring rebuild)."""
    return tuple(stable_hash(f"{member}#{v}") for v in range(vnodes))


class HashRing:
    """Members placed on a 64-bit ring, ``vnodes`` points each."""

    def __init__(self, members: Iterable[str], vnodes: int = 8) -> None:
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        seen = sorted(set(members))
        self.members = seen
        points = []
        for member in seen:
            for point in _member_points(member, vnodes):
                points.append((point, member))
        # Ties (astronomically unlikely) break by name for determinism.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [m for _, m in points]

    def owners(self, key: str, k: int) -> List[str]:
        """The first ``k`` distinct members clockwise from ``key``'s point.

        Deterministic for any member set; returns fewer than ``k`` names
        when the ring has fewer members.
        """
        if not self._points:
            return []
        want = min(k, len(self.members))
        start = bisect_right(self._points, stable_hash(key))
        chosen: List[str] = []
        n = len(self._points)
        for i in range(n):
            owner = self._owners[(start + i) % n]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return chosen

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HashRing members={len(self.members)} vnodes={self.vnodes}>"
