"""`repro.fabric`: the sharded + replicated tuple-space fabric.

Opt-in (``TiamatConfig(fabric=FabricConfig(...))``): replaces the
union-scan logical space with consistent-hash routing — ground-prefix
patterns contact an O(k) owner set, wildcard patterns a bounded scatter —
plus k-way quarantined replication and lease-governed shard handoff on
churn.  With ``fabric=None`` (the default) nothing in this package is
imported at runtime and instances behave bit-identically to the seed.

See ``docs/PROTOCOL.md`` section 11 for the wire protocol and the
handoff state machine.
"""

from repro.fabric.config import FabricConfig
from repro.fabric.keys import (
    is_infrastructure,
    pattern_is_infrastructure,
    pattern_shard_key,
    shard_key,
)
from repro.fabric.manager import FabricManager
from repro.fabric.map import ShardMap
from repro.fabric.ring import HashRing, stable_hash

__all__ = [
    "FabricConfig",
    "FabricManager",
    "HashRing",
    "ShardMap",
    "is_infrastructure",
    "pattern_is_infrastructure",
    "pattern_shard_key",
    "shard_key",
    "stable_hash",
]
