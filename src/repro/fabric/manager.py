"""The fabric manager: sharded + replicated placement over live instances.

One :class:`FabricManager` rides inside each fabric-enabled
:class:`~repro.core.instance.TiamatInstance` and turns the union-scan
logical space into a consistent-hash fabric (``docs/PROTOCOL.md``
section 11):

* **Routing** — ``plan(pattern)`` maps a ground-prefix pattern to its
  O(k) owner set on the ring; wildcard-first patterns fall back to a
  ``scatter_limit``-bounded member scatter.  ``route_out`` sends a
  deposit to the key's primary owner (``FABRIC_OUT``) instead of storing
  it locally.
* **Membership** — the gossiped :class:`~repro.fabric.map.ShardMap` of
  lease-governed members: every heartbeat renews this node's lease,
  sweeps lapsed peers, and pushes the map to ``gossip_fanout``
  successors; a map digest (``"fmd"``) piggybacks on ordinary frames so
  skewed peers converge between heartbeats.
* **Replication** — each primary is copied (``FABRIC_REPL``) to the
  ``k - 1`` successor owners, where it is *quarantined* (held,
  invisible): replicas emit ``space.restore``, never ``space.deposit``,
  so the exactly-once oracle keeps counting one deposit per tuple.
  Consumed or expired primaries invalidate their replicas
  (``FABRIC_INVAL``, reliable).
* **Handoff** — when the ring changes, primaries this node no longer
  owns migrate to a current owner (two-phase ``FABRIC_MIGRATE``: hold →
  transfer → remove-on-ack, with *drop* — never release — on timeout, so
  a racing retransmission can never yield two visible copies).  When a
  member's lease lapses and it is genuinely unreachable, its replicas
  are **promoted** — but only after a witness sync (``SYNC_REQUEST``
  with an ``owner`` field) confirms no live peer witnessed the tuple
  being consumed, the same anti-entropy that guards durable rejoin.

Failure envelope: with crash-stop failures every handoff preserves
exactly-once.  Under a *partition* (a live owner unreachable from its
successor but reachable from consumers) the visibility guard suppresses
promotion; if the map nevertheless lapses a reachable member, the worst
case is bounded duplicate *delivery*, never a duplicate destructive
consume of a surviving copy — see PROTOCOL.md section 11.4.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple as Tup

from repro.core import protocol
from repro.fabric.keys import (
    is_infrastructure,
    pattern_is_infrastructure,
    pattern_shard_key,
    shard_key,
)
from repro.fabric.map import ShardMap
from repro.fabric.ring import stable_hash
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS
from repro.tuples import Pattern
from repro.tuples.serialization import decode_tuple, encode_tuple

_sids = itertools.count(1)

#: Wire key for the piggybacked shard-map digest.
DIGEST_KEY = "fmd"

#: Bound on remembered invalidated uids per member (see ``_tombstone``).
TOMBSTONE_CAP = 4096


class FabricManager:
    """Sharding, replication and handoff for one instance."""

    def __init__(self, instance) -> None:
        self.instance = instance
        self.sim = instance.sim
        self.config = instance.config.fabric
        self.map = ShardMap(vnodes=self.config.vnodes)
        #: Incarnation token: entry uids must never collide across a
        #: name's crash/restart cycles, so the uid's first half is
        #: name + construction time, not the bare name.
        self.epoch = f"{instance.name}@{self.sim.now:.6f}"
        # Placement indexes (uid = (epoch_token, primary_entry_id)).
        self._primaries: Dict[Tup[str, int], int] = {}
        self._replicas: Dict[Tup[str, int], int] = {}
        self._replica_primary: Dict[Tup[str, int], str] = {}
        self._replica_peers: Dict[Tup[str, int], List[str]] = {}
        self._holders: Dict[Tup[str, int], Set[str]] = {}
        # In-flight two-phase migrations: uid -> (entry_id, target, timer).
        self._migrating: Dict[Tup[str, int], tuple] = {}
        # In-flight witness-verified promotions: sid -> state dict.
        self._promotions_pending: Dict[int, dict] = {}
        # Invalidated uids (bounded, insertion-ordered).  Reliable frames
        # are not ordered: a replica frame sent at deposit time can arrive
        # *after* the invalidation sent at consume time, and restoring it
        # then would plant a stale copy that a later promotion resurrects
        # into a double consume.  A tombstoned uid refuses re-replication
        # forever — safe, because a uid names exactly one deposit.
        self._tombstones: Dict[Tup[str, int], None] = {}
        self._change_cbs: List[Callable[[], None]] = []
        self._last_push: Dict[str, float] = {}
        # Earliest time any member's lease can lapse (see _grace_visible).
        self._next_lapse = 0.0
        # Gossip idle-backoff state (see _gossip).
        self._gossiped_roster: tuple = ()
        self._gossip_beats = 0
        self._stopped = False
        # statistics
        self.deposits_routed = 0
        self.deposits_owned = 0
        self.replicas_stored = 0
        self.invalidations = 0
        self.migrations_out = 0
        self.migrations_in = 0
        self.migrations_dropped = 0
        self.promotions = 0
        self.promotion_purges = 0
        self.map_pushes = 0
        self.scatter_ops = 0
        self.scatter_width_sum = 0
        self._scatter_hist = self.sim.obs.registry.histogram(
            "fabric_scatter_width",
            help="Peers contacted per fabric-planned operation.",
            labels=("node",), buckets=DEFAULT_COUNT_BUCKETS)
        self.map.renew(instance.name, self.sim.now + self.config.membership_lease)
        instance.space.on_removed(self._on_entry_removed)
        self._timer = self.sim.schedule(self.config.heartbeat_period,
                                        self._heartbeat)

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def bootstrap(self, names) -> None:
        """Seed the map with a known member list (deployment/bench helper).

        Gossip would converge on its own; seeding skips the O(diameter)
        warm-up and the join-migration churn it causes.
        """
        now = self.sim.now
        changed = False
        for name in names:
            changed |= self.map.renew(name, now + self.config.membership_lease)
        if changed:
            self._next_lapse = 0.0
            self._notify_change()

    def stop(self) -> None:
        """Cancel timers (instance shutting down)."""
        if self._stopped:
            return
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for _, _, timer in self._migrating.values():
            if timer is not None:
                timer.cancel()
        self._migrating.clear()
        for state in self._promotions_pending.values():
            if state["timer"] is not None:
                state["timer"].cancel()
        self._promotions_pending.clear()

    def on_change(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Subscribe to shard-map changes; returns an unsubscriber."""
        self._change_cbs.append(callback)

        def unsubscribe() -> None:
            if callback in self._change_cbs:
                self._change_cbs.remove(callback)

        return unsubscribe

    def _notify_change(self) -> None:
        for callback in list(self._change_cbs):
            callback()

    # ==================================================================
    # Routing
    # ==================================================================
    def active(self) -> bool:
        """True when the fabric knows at least one live peer to route to."""
        live = self.map.live(self.sim.now)
        return len(live) >= 2 or (len(live) == 1
                                  and live[0] != self.instance.name)

    def routes(self, pattern: Pattern) -> bool:
        """Whether the fabric handles this pattern (infra stays local)."""
        return not pattern_is_infrastructure(pattern)

    def plan(self, pattern: Pattern, record: bool = True) -> List[str]:
        """Peers to contact for ``pattern``, in contact order.

        A ground-prefix pattern yields its shard's owner set (≤ k peers);
        anything else yields the bounded scatter.  ``record=False`` skips
        the scatter-width sample (used by blocking re-plans so one
        logical operation is measured once).
        """
        now = self.sim.now
        self._grace_visible(now)
        me = self.instance.name
        key = pattern_shard_key(pattern, self.config.key_fields)
        if key is not None:
            ring = self.map.ring(now)
            peers = [o for o in ring.owners(key, self.config.replication)
                     if o != me]
        else:
            peers = [m for m in self.map.live(now) if m != me]
            peers = peers[:self.config.scatter_limit]
        if record:
            self.scatter_ops += 1
            self.scatter_width_sum += len(peers)
            self._scatter_hist.labels(node=me).observe(float(len(peers)))
        return peers

    def route_out(self, tup) -> bool:
        """Send a deposit to its shard's primary owner.

        Returns True when the tuple left for a remote owner (the caller
        must not also store it locally); False when the deposit should
        proceed locally — because this node owns the shard, the tuple is
        infrastructure, the fabric is not yet live, or no owner is
        reachable (local fallback: the next rebalance migrates it home).
        """
        if is_infrastructure(tup) or not self.active():
            return False
        self._grace_visible(self.sim.now)
        key = shard_key(tup, self.config.key_fields)
        owners = self.map.ring(self.sim.now).owners(key,
                                                    self.config.replication)
        if not owners or self.instance.name in owners:
            self.deposits_owned += 1
            return False
        for owner in owners:
            if self.instance.iface.is_visible(owner):
                self.instance.send_reliable(owner, {
                    "kind": protocol.FABRIC_OUT,
                    "tuple": encode_tuple(tup),
                }, deadline=self.sim.now + 2 * self.instance.config.peer_timeout)
                self.deposits_routed += 1
                return True
        return False

    # ==================================================================
    # Primary registration and replication
    # ==================================================================
    def register_primary(self, entry) -> None:
        """Adopt a locally-stored entry as a fabric primary and replicate.

        Skips transient entries (consumed in flight by a waiter — their
        deposit/consume pair is already complete) and infrastructure.
        """
        if entry.removed or is_infrastructure(entry.tuple):
            return
        uid = entry.meta.get("fabric_uid")
        if uid is None:
            uid = (self.epoch, entry.entry_id)
            entry.meta["fabric_uid"] = uid
        uid = tuple(uid)
        self._primaries[uid] = entry.entry_id
        self._replicate(uid, entry)

    def _replicate(self, uid, entry) -> None:
        key = shard_key(entry.tuple, self.config.key_fields)
        owners = self.map.ring(self.sim.now).owners(key,
                                                    self.config.replication)
        targets = [o for o in owners if o != self.instance.name]
        targets = targets[:self.config.replication - 1]
        sent = self._holders.setdefault(uid, set())
        if not targets:
            return
        payload = {
            "kind": protocol.FABRIC_REPL,
            "uid": list(uid),
            "holder": self.instance.name,
            "peers": sorted(targets),
            "tuple": encode_tuple(entry.tuple),
            "expires_at": entry.meta.get("expires_at"),
        }
        for target in targets:
            if target in sent or not self.instance.iface.is_visible(target):
                continue
            self.instance.send_reliable(
                target, payload,
                deadline=self.sim.now + 2 * self.instance.config.peer_timeout)
            sent.add(target)

    def _on_entry_removed(self, entry, reason: str) -> None:
        uid = entry.meta.get("fabric_uid")
        if uid is None:
            return
        uid = tuple(uid)
        if self._primaries.get(uid) == entry.entry_id:
            del self._primaries[uid]
            holders = self._holders.pop(uid, set())
            # Tell every replica holder the copy is dead — reliably: a
            # lost invalidation would leave a stale replica that a later
            # promotion could resurrect into a double consume.
            for holder in sorted(holders):
                if self.instance.iface.is_visible(holder):
                    self.instance.send_reliable(holder, {
                        "kind": protocol.FABRIC_INVAL,
                        "uid": list(uid),
                    }, deadline=self.sim.now
                        + 2 * self.instance.config.peer_timeout)
        if self._replicas.get(uid) == entry.entry_id:
            del self._replicas[uid]
            self._replica_primary.pop(uid, None)
            self._replica_peers.pop(uid, None)

    # ==================================================================
    # Frame dispatch (called from the instance's _on_message)
    # ==================================================================
    def handle(self, kind: str, src: str, payload: dict) -> None:
        if self._stopped:
            return
        if kind == protocol.FABRIC_MAP:
            self._handle_map(src, payload)
        elif kind == protocol.FABRIC_OUT:
            self._handle_out(src, payload)
        elif kind == protocol.FABRIC_REPL:
            self._handle_repl(src, payload)
        elif kind == protocol.FABRIC_INVAL:
            self._handle_inval(src, payload)
        elif kind == protocol.FABRIC_MIGRATE:
            self._handle_migrate(src, payload)
        elif kind == protocol.FABRIC_MIGRATE_ACK:
            self._handle_migrate_ack(src, payload)

    def _grace_visible(self, now: float) -> None:
        """Visibility is direct evidence of liveness: a *reachable* member
        whose lease lapsed is a gossip-lag artifact (renewals spread a few
        hops per heartbeat), not a departure.  Grace it locally; the
        max-expiry merge spreads the extension.  Without this, members far
        apart on the gossip walk sweep each other in large fabrics.

        Cheap in steady state: a tracked next-lapse time skips the member
        scan entirely until some lease actually runs out.
        """
        if now < self._next_lapse:
            return
        me = self.instance.name
        next_lapse = float("inf")
        for name, expires_at in list(self.map.members.items()):
            if expires_at <= now:
                if name != me and self.instance.iface.is_visible(name):
                    self.map.renew(name,
                                   now + self.config.membership_lease)
                    next_lapse = min(next_lapse,
                                     now + self.config.membership_lease)
                # else: genuinely unreachable — left for the sweep.
            else:
                next_lapse = min(next_lapse, expires_at)
        self._next_lapse = next_lapse

    def digest(self) -> str:
        now = self.sim.now
        self._grace_visible(now)
        return self.map.digest(now)

    def on_digest(self, src: str, digest: str) -> None:
        """A piggybacked map digest disagrees: push our map (rate-limited)."""
        if digest == self.digest():
            return
        now = self.sim.now
        floor = self.config.heartbeat_period / 2
        if now - self._last_push.get(src, -floor) < floor:
            return
        self._last_push[src] = now
        self._push_map(src)

    def _push_map(self, peer: str) -> None:
        self.map_pushes += 1
        self.instance.send(peer, {"kind": protocol.FABRIC_MAP,
                                  "map": self.map.to_payload()})

    def _handle_map(self, src: str, payload: dict) -> None:
        self.instance.comms.note_alive(src)
        entries = {str(n): float(exp) for n, exp in payload["map"].items()}
        if self.map.merge(entries):
            # Merged entries may lapse before anything we already track.
            self._next_lapse = 0.0
            self._notify_change()

    def _handle_out(self, src: str, payload: dict) -> None:
        # Always deposit locally, even if our map says the shard belongs
        # elsewhere: forwarding under skew could loop.  A misplaced
        # deposit converges via the next rebalance migration.
        tup = decode_tuple(payload["tuple"])
        try:
            self.instance._deposit_local(tup)
        except Exception:
            pass  # lease refused: the deposit is lost, like a full node

    def _tombstone(self, uid) -> None:
        self._tombstones[uid] = None
        while len(self._tombstones) > TOMBSTONE_CAP:
            del self._tombstones[next(iter(self._tombstones))]

    def _handle_repl(self, src: str, payload: dict) -> None:
        uid = tuple(payload["uid"])
        if uid in self._tombstones:
            return  # invalidated already; this frame was reordered past it
        self._replica_primary[uid] = payload.get("holder", src)
        self._replica_peers[uid] = list(payload.get("peers", []))
        if uid in self._replicas or uid in self._primaries:
            return  # refresh of a copy we already hold
        tup = decode_tuple(payload["tuple"])
        entry = self.instance.space.restore_entry(
            tup, expires_at=payload.get("expires_at"),
            meta={"fabric_uid": uid, "fabric_replica": True},
            quarantine=True)
        self._replicas[uid] = entry.entry_id
        self.replicas_stored += 1

    def _handle_inval(self, src: str, payload: dict) -> None:
        uid = tuple(payload["uid"])
        self._tombstone(uid)
        entry_id = self._replicas.get(uid)
        if entry_id is None:
            self._replica_primary.pop(uid, None)
            self._replica_peers.pop(uid, None)
            return
        self.invalidations += 1
        self._drop_entry(entry_id, "reconciled")

    def _drop_entry(self, entry_id: int, reason: str) -> None:
        space = self.instance.space
        entry = space.store.get(entry_id)
        if entry is None or entry.removed:
            return
        space.store.remove(entry_id)
        space._notify_removed(entry, reason)

    # ==================================================================
    # Two-phase migration (hold -> transfer -> remove-on-ack)
    # ==================================================================
    def _migrate(self, uid, target: str) -> None:
        entry_id = self._primaries.get(uid)
        if entry_id is None or uid in self._migrating:
            return
        entry = self.instance.space.store.get(entry_id)
        if entry is None or entry.removed:
            return
        if entry.held:
            return  # offered to an `in` right now; retry next heartbeat
        if not self.instance.iface.is_visible(target):
            return
        self.instance.space.store.hold(entry_id)
        timer = self.sim.schedule(self.config.migrate_timeout,
                                  self._migrate_timeout, uid)
        self._migrating[uid] = (entry_id, target, timer)
        self.instance.send_reliable(target, {
            "kind": protocol.FABRIC_MIGRATE,
            "uid": list(uid),
            "tuple": encode_tuple(entry.tuple),
            "expires_at": entry.meta.get("expires_at"),
        }, deadline=self.sim.now + self.config.migrate_timeout)

    def _handle_migrate(self, src: str, payload: dict) -> None:
        uid = tuple(payload["uid"])
        if uid in self._primaries:
            pass  # duplicate transfer: we already own it, just re-ack
        elif uid in self._replicas:
            self._adopt_replica(uid)
        else:
            # A migrate is a positive transfer of a live copy (the sender
            # holds theirs until our ack), so it overrides any tombstone
            # left by an earlier invalidation of a *previous* placement.
            self._tombstones.pop(uid, None)
            tup = decode_tuple(payload["tuple"])
            entry = self.instance.space.restore_entry(
                tup, expires_at=payload.get("expires_at"),
                meta={"fabric_uid": uid})
            self.migrations_in += 1
            if not entry.removed:
                # May have been consumed in flight by a blocked `in`
                # waiter — then the handoff and the take composed into
                # one consume, nothing left to own.
                self._primaries[uid] = entry.entry_id
                self._replicate(uid, entry)
        self.instance.send_reliable(src, {
            "kind": protocol.FABRIC_MIGRATE_ACK,
            "uid": list(uid),
        }, deadline=self.sim.now + self.config.migrate_timeout)

    def _adopt_replica(self, uid) -> None:
        """A migrate arrived for a uid we already hold quarantined:
        release our replica into visibility and take over as primary —
        no second copy ever materializes."""
        entry_id = self._replicas.pop(uid, None)
        self._replica_primary.pop(uid, None)
        self._replica_peers.pop(uid, None)
        if entry_id is None:
            return
        entry = self.instance.space.store.get(entry_id)
        if entry is None or entry.removed or not entry.held:
            return
        released = self.instance.space.release(entry_id)
        self.migrations_in += 1
        if released is None:
            return  # expired on release, or consumed by a blocked waiter
        self._primaries[uid] = entry_id
        self._replicate(uid, entry)

    def _handle_migrate_ack(self, src: str, payload: dict) -> None:
        uid = tuple(payload["uid"])
        state = self._migrating.pop(uid, None)
        if state is None:
            return  # timeout already resolved this handoff
        entry_id, _, timer = state
        if timer is not None:
            timer.cancel()
        self.migrations_out += 1
        self._drop_entry(entry_id, "migrated")

    def _migrate_timeout(self, uid) -> None:
        state = self._migrating.pop(uid, None)
        if state is None:
            return
        entry_id, _, _ = state
        # Drop, never release: the transfer frame may still be in flight,
        # and releasing our copy alongside a delivered one would let the
        # same deposit be consumed twice.  Safety over availability.
        self.migrations_dropped += 1
        self._drop_entry(entry_id, "reconciled")

    # ==================================================================
    # Member death: witness-verified replica promotion
    # ==================================================================
    def _on_members_dropped(self, names: List[str]) -> None:
        for name in names:
            # Their replicas died with them; re-replication will re-send.
            for holders in self._holders.values():
                holders.discard(name)
        for name in names:
            if self.instance.iface.is_visible(name):
                # Reachable: a gossip hiccup lapsed the lease, not a
                # crash.  Keep the replicas quarantined; the member's next
                # renewal reinstates it.
                continue
            uids = [uid for uid, holder in self._replica_primary.items()
                    if holder == name and uid in self._replicas
                    and self._should_promote(uid)]
            if uids:
                self._begin_promotion(name, uids)

    def _should_promote(self, uid) -> bool:
        """Deterministic single-promoter election among replica holders.

        Every holder got the same ``peers`` list from the primary, so
        ranking live holders by a stable hash picks the same winner
        everywhere without coordination.
        """
        now = self.sim.now
        me = self.instance.name
        holders = set(self._replica_peers.get(uid, [])) | {me}
        live = [h for h in holders if h == me or self.map.is_live(h, now)]
        if not live:
            return True
        ranked = sorted(live, key=lambda h: (stable_hash(f"{uid}|{h}"), h))
        return ranked[0] == me

    def _begin_promotion(self, dead: str, uids: List[Tup[str, int]]) -> None:
        """Quarantine-verified promotion: ask live peers for consume
        witnesses of the dead member's entries before releasing anything
        (the rejoin safety argument, pointed the other way)."""
        now = self.sim.now
        # Seed with our *own* witness table: we may ourselves have taken
        # one of the dead member's tuples (recorded at CLAIM_ACCEPT send)
        # while also holding its stale replica — asking only peers would
        # let us promote a consume we personally performed.
        own = set(self.instance._consume_witness.get(dead, {}))
        peers = [m for m in self.map.live(now)
                 if m != self.instance.name
                 and self.instance.iface.is_visible(m)]
        if not peers:
            self._finish_promotion(dead, set(uids), own)
            return
        sid = next(_sids)
        timeout = 2 * self.instance.config.peer_timeout
        state = {
            "dead": dead,
            "uids": set(uids),
            "pending": set(peers),
            "consumed": own,
            "timer": self.sim.schedule(timeout, self._promotion_timeout, sid),
        }
        self._promotions_pending[sid] = state
        for peer in peers:
            self.instance.sync_requests_sent += 1
            self.instance.send_reliable(peer, {
                "kind": protocol.SYNC_REQUEST,
                "sid": -sid,  # disjoint from rejoin sids (see instance)
                "owner": dead,
            }, deadline=now + timeout)

    def on_sync_response(self, src: str, payload: dict) -> None:
        sid = -payload.get("sid", 0)
        state = self._promotions_pending.get(sid)
        if state is None:
            return
        state["consumed"].update(int(e) for e in payload.get("consumed", ()))
        state["pending"].discard(src)
        if not state["pending"]:
            self._resolve_promotion(sid)

    def _promotion_timeout(self, sid: int) -> None:
        state = self._promotions_pending.get(sid)
        if state is not None:
            state["timer"] = None
            self._resolve_promotion(sid)

    def _resolve_promotion(self, sid: int) -> None:
        state = self._promotions_pending.pop(sid, None)
        if state is None:
            return
        if state["timer"] is not None:
            state["timer"].cancel()
        self._finish_promotion(state["dead"], state["uids"], state["consumed"])

    def _finish_promotion(self, dead: str, uids: Set[tuple],
                          consumed: Set[int]) -> None:
        for uid in sorted(uids):
            entry_id = self._replicas.get(uid)
            if entry_id is None:
                continue
            if self._replica_primary.get(uid) != dead:
                continue  # a new primary adopted it while we verified
            if uid[1] in consumed:
                # A witness saw the primary's copy being consumed:
                # releasing ours would resurrect a taken tuple.
                self.promotion_purges += 1
                self._tombstone(uid)
                self._drop_entry(entry_id, "reconciled")
                continue
            self._promote(uid, entry_id)

    def _promote(self, uid, entry_id: int) -> None:
        space = self.instance.space
        entry = space.store.get(entry_id)
        if entry is None or entry.removed or not entry.held:
            return
        released = space.release(entry_id)
        self._replicas.pop(uid, None)
        self._replica_primary.pop(uid, None)
        self._replica_peers.pop(uid, None)
        self.promotions += 1
        if released is None:
            return  # expired on release, or consumed by a waiter
        self._primaries[uid] = entry_id
        self._replicate(uid, entry)

    # ==================================================================
    # The heartbeat: renew, sweep, rebalance, gossip
    # ==================================================================
    def _heartbeat(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        changed = self.map.renew(self.instance.name,
                                 now + self.config.membership_lease)
        self._grace_visible(now)
        dropped = self.map.sweep(now)
        if dropped:
            self._on_members_dropped(dropped)
        self._sweep_replicas(now)
        self._rebalance()
        self._gossip(now)
        if changed or dropped:
            self._notify_change()
        self._timer = self.sim.schedule(self.config.heartbeat_period,
                                        self._heartbeat)

    def _sweep_replicas(self, now: float) -> None:
        """Reap quarantined replicas whose lease time has run out (held
        entries are invisible to the space's own expiry timers)."""
        for uid, entry_id in list(self._replicas.items()):
            entry = self.instance.space.store.get(entry_id)
            if entry is None or entry.removed:
                self._replicas.pop(uid, None)
                self._replica_primary.pop(uid, None)
                self._replica_peers.pop(uid, None)
                continue
            expires_at = entry.meta.get("expires_at")
            if expires_at is not None and now >= expires_at:
                self._drop_entry(entry_id, "expired")

    def _rebalance(self) -> None:
        """Converge local placement with the current ring.

        Adopts untracked local tuples (handle-directed deposits, eval
        results, pre-bootstrap deposits), re-replicates under-replicated
        primaries, and migrates primaries whose shard no longer includes
        this node.
        """
        if not self.active():
            return
        me = self.instance.name
        ring = self.map.ring(self.sim.now)
        space = self.instance.space
        for entry in list(space.store):
            if (entry.removed or entry.held
                    or is_infrastructure(entry.tuple)
                    or "fabric_uid" in entry.meta):
                continue
            self.register_primary(entry)
        for uid, entry_id in list(self._primaries.items()):
            entry = space.store.get(entry_id)
            if entry is None or entry.removed:
                self._primaries.pop(uid, None)
                continue
            key = shard_key(entry.tuple, self.config.key_fields)
            owners = ring.owners(key, self.config.replication)
            if me in owners or not owners:
                self._replicate(uid, entry)
                continue
            for target in owners:
                if self.instance.iface.is_visible(target):
                    self._migrate(uid, target)
                    break

    def _gossip(self, now: float) -> None:
        me = self.instance.name
        live = [m for m in self.map.live(now) if m != me]
        if not live:
            return
        # Idle backoff: with an unchanged live set, background gossip is
        # anti-entropy insurance only (the piggybacked digest converges
        # active pairs), so push every `gossip_idle_beats` beats instead
        # of every beat.
        roster = tuple(live)
        if roster == self._gossiped_roster:
            self._gossip_beats += 1
            if self._gossip_beats < self.config.gossip_idle_beats:
                return
        self._gossiped_roster = roster
        self._gossip_beats = 0
        # Push to the next `fanout` members after ourselves in name
        # order: deterministic, and rotation over joins keeps the graph
        # connected without randomness.
        ordered = sorted(live + [me])
        start = ordered.index(me)
        targets = []
        for i in range(1, len(ordered)):
            peer = ordered[(start + i) % len(ordered)]
            if peer != me:
                targets.append(peer)
            if len(targets) >= self.config.gossip_fanout:
                break
        for peer in targets:
            self._push_map(peer)

    # ==================================================================
    @property
    def scatter_width_mean(self) -> float:
        """Mean peers contacted per fabric-planned operation."""
        if self.scatter_ops == 0:
            return 0.0
        return self.scatter_width_sum / self.scatter_ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FabricManager {self.instance.name} "
                f"primaries={len(self._primaries)} "
                f"replicas={len(self._replicas)} map=v{self.map.version}>")
