"""Shard keying: from tuples and patterns to consistent-hash keys.

A shard key is a stable string built from a tuple's **arity** plus
type-and-value tokens for its first ``key_fields`` fields.  Matching
requires equal arity (see :mod:`repro.tuples.matching`), so folding the
arity in is sound: a pattern can only match tuples in its own arity class.

A pattern yields the *same* key when its leading ``key_fields`` specs are
all actuals (a *ground* prefix) — then the lookup routes to the key's O(k)
owner set.  Any formal or wildcard in the prefix makes the key
undecidable, and :func:`pattern_shard_key` returns ``None``: the caller
falls back to the bounded scatter.

Infrastructure tuples — first field a string starting with ``"_"`` (the
space-info tuple, telemetry rows) — are never sharded: every instance
keeps its own, exactly as with the fabric off.
"""

from __future__ import annotations

from typing import Optional

from repro.tuples.model import Actual, Pattern, Tuple


def _token(value) -> str:
    """A stable, collision-resistant text token for one field value."""
    return f"{type(value).__name__}:{value!r}"


def is_infrastructure(tup: Tuple) -> bool:
    """True for tuples the fabric must leave in the local space."""
    first = tup.fields[0]
    return isinstance(first, str) and first.startswith("_")


def pattern_is_infrastructure(pattern: Pattern) -> bool:
    """True when a pattern's first spec pins an infrastructure tag."""
    first = pattern.specs[0]
    return (isinstance(first, Actual) and isinstance(first.value, str)
            and first.value.startswith("_"))


def shard_key(tup: Tuple, key_fields: int = 1) -> str:
    """The shard key a tuple is placed under."""
    prefix = tup.fields[:min(tup.arity, key_fields)]
    return "|".join([str(tup.arity)] + [_token(f) for f in prefix])


def pattern_shard_key(pattern: Pattern, key_fields: int = 1) -> Optional[str]:
    """The shard key a pattern routes to, or None for scatter.

    Returns a key only when every spec in the pattern's ``key_fields``
    prefix is an :class:`Actual` — the one case where the pattern's
    matches all live under a single shard key.
    """
    prefix = pattern.specs[:min(pattern.arity, key_fields)]
    tokens = []
    for spec in prefix:
        if not isinstance(spec, Actual):
            return None
        tokens.append(_token(spec.value))
    return "|".join([str(pattern.arity)] + tokens)
