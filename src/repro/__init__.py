"""Tiamat: generative communication in a changing world — full reproduction.

A production-quality Python reproduction of McSorley & Evans, *Tiamat:
Generative Communication in a Changing World* (Middleware 2003): a
Linda-style tuple-space middleware for pervasive environments built on
**opportunistic logical tuple spaces** and a **pervasive leasing model**,
together with every substrate it needs (a deterministic discrete-event
kernel, a simulated mobile radio network) and the five comparison systems
from the paper's related-work analysis (centralized client/server, Limbo,
LIME, CoreLime, PeerSpaces).

Package map
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel: clock, events, processes, RNG
``repro.tuples``       tuples, antituples, matching, stores, local spaces
``repro.net``          visibility graph, mobility, churn, message delivery
``repro.leasing``      lease terms/negotiation/policies/resource factories
``repro.core``         Tiamat itself: instances, logical-space operations
``repro.baselines``    the five compared systems
``repro.apps``         web client/proxy and fractal sample applications
``repro.bench``        harness utilities for the benchmark scripts
``repro.runtime``      real-thread runtime for the same tuple-space kernel
=====================  ====================================================

Quickstart: see ``examples/quickstart.py`` and the README.
"""

from repro.core import (
    SpaceHandle,
    TiamatConfig,
    TiamatInstance,
    UnavailablePolicy,
)
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network, VisibilityGraph
from repro.sim import Simulator
from repro.tuples import ANY, Formal, Pattern, Range, Tuple

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "Formal",
    "LeaseTerms",
    "Network",
    "Pattern",
    "Range",
    "SimpleLeaseRequester",
    "Simulator",
    "SpaceHandle",
    "TiamatConfig",
    "TiamatInstance",
    "Tuple",
    "UnavailablePolicy",
    "VisibilityGraph",
    "__version__",
]
