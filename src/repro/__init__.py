"""Tiamat: generative communication in a changing world — full reproduction.

A production-quality Python reproduction of McSorley & Evans, *Tiamat:
Generative Communication in a Changing World* (Middleware 2003): a
Linda-style tuple-space middleware for pervasive environments built on
**opportunistic logical tuple spaces** and a **pervasive leasing model**,
together with every substrate it needs (a deterministic discrete-event
kernel, a simulated mobile radio network) and the five comparison systems
from the paper's related-work analysis (centralized client/server, Limbo,
LIME, CoreLime, PeerSpaces).

Package map
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel: clock, events, processes, RNG
``repro.tuples``       tuples, antituples, matching, stores, local spaces
``repro.net``          visibility graph, mobility, churn, message delivery
``repro.leasing``      lease terms/negotiation/policies/resource factories
``repro.core``         Tiamat itself: instances, logical-space operations
``repro.baselines``    the five compared systems
``repro.apps``         web client/proxy and fractal sample applications
``repro.bench``        harness utilities for the benchmark scripts
``repro.runtime``      real-thread runtime for the same tuple-space kernel
=====================  ====================================================

Quickstart: see ``examples/quickstart.py`` and the README.
"""

from typing import Optional

from repro.core import (
    AdmissionController,
    Refusal,
    SpaceHandle,
    TiamatConfig,
    TiamatInstance,
    UnavailablePolicy,
)
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network, VisibilityGraph
from repro.sim import Simulator
from repro.tuples import ANY, Formal, Pattern, Range, Tuple

__version__ = "1.1.0"


def create_instance(sim: Simulator, network: Network, name: str, *,
                    config: Optional[TiamatConfig] = None,
                    **kwargs) -> TiamatInstance:
    """The one canonical way to construct a Tiamat node.

    Equivalent to ``TiamatInstance(sim, network, name, config=config,
    ...)`` with every tunable keyword-only — ``policy``,
    ``storage_capacity``, ``thread_capacity``, ``router``, and ``space``
    pass straight through.  Exists so application code has a single,
    stable entry point while the class constructor completes its
    keyword-only migration (see ``docs/API.md``).
    """
    return TiamatInstance(sim, network, name, config=config, **kwargs)


__all__ = [
    "ANY",
    "AdmissionController",
    "Formal",
    "LeaseTerms",
    "Network",
    "Pattern",
    "Range",
    "Refusal",
    "SimpleLeaseRequester",
    "Simulator",
    "SpaceHandle",
    "TiamatConfig",
    "TiamatInstance",
    "Tuple",
    "UnavailablePolicy",
    "VisibilityGraph",
    "__version__",
    "create_instance",
]
