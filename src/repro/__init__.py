"""Tiamat: generative communication in a changing world — full reproduction.

A production-quality Python reproduction of McSorley & Evans, *Tiamat:
Generative Communication in a Changing World* (Middleware 2003): a
Linda-style tuple-space middleware for pervasive environments built on
**opportunistic logical tuple spaces** and a **pervasive leasing model**,
together with every substrate it needs (a deterministic discrete-event
kernel, a simulated mobile radio network) and the five comparison systems
from the paper's related-work analysis (centralized client/server, Limbo,
LIME, CoreLime, PeerSpaces).

Package map
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel: clock, events, processes, RNG
``repro.tuples``       tuples, antituples, matching, stores, local spaces
``repro.net``          visibility graph, mobility, churn, message delivery
``repro.leasing``      lease terms/negotiation/policies/resource factories
``repro.core``         Tiamat itself: instances, logical-space operations
``repro.baselines``    the five compared systems
``repro.apps``         web client/proxy and fractal sample applications
``repro.bench``        harness utilities for the benchmark scripts
``repro.runtime``      real substrates: threads, asyncio UDP, front door
=====================  ====================================================

Quickstart — one front door for every execution substrate::

    import repro
    from repro.tuples import Pattern, Tuple

    with repro.connect(runtime="aio") as rt:     # or "sim" / "threads"
        a, b = rt.node("a"), rt.node("b")
        rt.set_visible("a", "b")
        b.out(Tuple("job", 1))
        a.inp(Pattern("job", int))               # -> Tuple('job', 1)

See also ``examples/quickstart.py`` and the README.
"""

import warnings
from typing import Optional

from repro.core import (
    AdmissionController,
    Refusal,
    SpaceHandle,
    TiamatConfig,
    TiamatInstance,
    UnavailablePolicy,
)
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network, VisibilityGraph
from repro.runtime.api import (
    TiamatNodeHandle,
    TiamatRuntime,
    connect,
)
from repro.sim import Simulator
from repro.tuples import ANY, Formal, Pattern, Range, Tuple

__version__ = "1.2.0"


def create_instance(sim: Simulator, network: Network, name: str, *,
                    config: Optional[TiamatConfig] = None,
                    **kwargs) -> TiamatInstance:
    """Deprecated: construct a sim-bound Tiamat node directly.

    Superseded by :func:`repro.connect` — ``create_instance`` only ever
    built nodes for the simulation substrate, while the front door
    constructs any of the three runtimes behind one handle vocabulary.
    Still equivalent to ``TiamatInstance(sim, network, name,
    config=config, ...)`` with every tunable keyword-only; see the
    deprecation table in ``docs/API.md``.
    """
    warnings.warn(
        "repro.create_instance is deprecated; use repro.connect("
        "runtime='sim') for the front door, or construct TiamatInstance "
        "directly for bespoke sim wiring",
        DeprecationWarning, stacklevel=2)
    return TiamatInstance(sim, network, name, config=config, **kwargs)


__all__ = [
    "ANY",
    "AdmissionController",
    "Formal",
    "LeaseTerms",
    "Network",
    "Pattern",
    "Range",
    "Refusal",
    "SimpleLeaseRequester",
    "Simulator",
    "SpaceHandle",
    "TiamatConfig",
    "TiamatInstance",
    "TiamatNodeHandle",
    "TiamatRuntime",
    "Tuple",
    "UnavailablePolicy",
    "VisibilityGraph",
    "__version__",
    "connect",
    "create_instance",
]
