"""Real-thread runtime for the tuple-space kernel.

Everything in :mod:`repro.core` runs over the discrete-event simulator so
experiments are deterministic and scale on one machine.  This package
demonstrates that the model is not simulator-bound: the same tuple/pattern
substrate drives a **thread-safe tuple space** with genuinely blocking
``rd``/``in`` (condition variables, wall-clock lease deadlines) and a
**threaded Tiamat node** whose logical space spans other nodes in the
process, linked by an explicit visibility set.

The threaded runtime mirrors the paper's prototype shape (Java threads +
sockets) at the semantic level; the inter-node transport is an in-process
registry rather than real sockets, which keeps the tests hermetic while
exercising true concurrency.
"""

from repro.runtime.space import ThreadSafeTupleSpace
from repro.runtime.node import SHED, ThreadedNodeRegistry, ThreadedTiamatNode

__all__ = [
    "SHED",
    "ThreadSafeTupleSpace",
    "ThreadedNodeRegistry",
    "ThreadedTiamatNode",
]
