"""Real-substrate runtimes for the tuple-space kernel.

Everything in :mod:`repro.core` runs over the discrete-event simulator so
experiments are deterministic and scale on one machine.  This package
demonstrates that the model is not simulator-bound, twice over:

* :mod:`repro.runtime.node` — a **threaded** runtime: thread-safe tuple
  space with genuinely blocking ``rd``/``in`` (condition variables,
  wall-clock lease deadlines) and nodes linked by an in-process registry,
  exercising true concurrency while staying hermetic;
* :mod:`repro.runtime.aio` — an **asyncio UDP** runtime: the same node
  semantics over real datagram sockets (unicast + optional multicast
  discovery), with a zero-copy encode/send path — the closest shape to
  the paper's prototype (threads + sockets on physical devices).

:mod:`repro.runtime.api` fronts all substrates (including the sim) with
one constructor — ``repro.connect(runtime="sim"|"threads"|"aio")`` — and
one node-handle vocabulary.  Prefer it for new code: importing
``ThreadedNodeRegistry``/``ThreadedTiamatNode`` from *this* package is
deprecated (import from :mod:`repro.runtime.node` directly, or use
``repro.connect``).
"""

import warnings

from repro.runtime.api import (
    AioRuntime,
    SimRuntime,
    ThreadsRuntime,
    TiamatNodeHandle,
    TiamatRuntime,
    connect,
)
from repro.runtime.node import SHED
from repro.runtime.space import ThreadSafeTupleSpace

__all__ = [
    "AioRuntime",
    "SHED",
    "SimRuntime",
    "ThreadSafeTupleSpace",
    "ThreadedNodeRegistry",
    "ThreadedTiamatNode",
    "ThreadsRuntime",
    "TiamatNodeHandle",
    "TiamatRuntime",
    "connect",
]

#: Names that still resolve here but now warn: the threaded classes moved
#: behind the front door (repro.connect) in v1.2; their canonical import
#: path is repro.runtime.node.
_DEPRECATED = ("ThreadedNodeRegistry", "ThreadedTiamatNode")


def __getattr__(name: str):
    if name in _DEPRECATED:
        warnings.warn(
            f"importing {name} from repro.runtime is deprecated; use "
            f"repro.connect(runtime='threads') or import it from "
            f"repro.runtime.node",
            DeprecationWarning, stacklevel=2)
        from repro.runtime import node
        return getattr(node, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
