"""Threaded Tiamat nodes: opportunistic logical spaces over real threads.

A :class:`ThreadedNodeRegistry` plays the role of the network: it records
which nodes exist and which pairs are mutually visible.  Each
:class:`ThreadedTiamatNode` owns a :class:`ThreadSafeTupleSpace` and runs
its logical-space operations against the union of its own space and the
spaces of currently visible nodes — re-sampling visibility on every probe
round, which is exactly the opportunistic construction of section 2.2
(no connection or disconnection operations anywhere).

Destructive remote takes use the same two-phase hold/confirm discipline as
the simulated protocol, implemented with the store's own ``hold`` under the
target space's lock, so exactly-once consumption holds under real
concurrency.

Serving is *admission-controlled*, mirroring the simulated
:mod:`repro.core.admission` plane: every remote probe enters the target
node through :meth:`ThreadedTiamatNode.serve_rdp` /
:meth:`~ThreadedTiamatNode.serve_inp`, which gate on a bounded concurrent
serving budget (``max_concurrent_serves``).  A saturated node returns the
:data:`SHED` sentinel instead of scanning its store; origins react with a
capped exponential per-peer backoff, so overload on one node does not turn
every visible peer's poll loop into a thundering herd.  The default budget
is ``None`` (unbounded), which preserves the uncontrolled behaviour.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Union

from repro.obs import Observability
from repro.obs.telemetry import (
    TELEMETRY_TAG,
    NodeHealth,
    collect_cluster_health,
)
from repro.runtime.space import ThreadSafeTupleSpace
from repro.tuples.model import Pattern, Tuple
from repro.tuples.serialization import WireCodec, ensure_codec_match

if TYPE_CHECKING:  # pragma: no cover - type hint only, no runtime import
    from repro.core.config import TiamatConfig


class _ShedType:
    """Sentinel type for :data:`SHED` (falsy, unique, self-describing)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "SHED"

    def __bool__(self) -> bool:
        return False


#: Returned by ``serve_rdp``/``serve_inp`` when the node sheds the probe
#: instead of serving it (concurrent serving budget exhausted).  Falsy, so
#: callers that only distinguish "got a tuple or not" keep working; callers
#: that care (the origin poll loops here) check identity and back off.
SHED = _ShedType()


class ThreadedNodeRegistry:
    """In-process 'network': node registry plus a visibility relation.

    The registry also owns the runtime's :class:`~repro.obs.hub.Observability`
    hub (``registry.obs``): a **thread-safe** metrics registry clocked by
    wall time (``time.monotonic``), which every member node feeds its
    operation counters, blocking-wait histogram, and space residency into.

    ``config.wire_codec`` flows into the registry exactly as it does into
    the sim network and the aio cluster: the resolved codec is exposed as
    ``registry.codec`` (the in-process transport never serialises, but
    byte *accounting* and conformance harnesses read it), and an explicit
    ``codec`` argument that disagrees with the config raises the shared
    :class:`~repro.errors.CodecMismatchError` at construction.
    """

    def __init__(self, *, config: Optional["TiamatConfig"] = None,
                 codec: Union[str, "WireCodec", None] = None) -> None:
        from repro.core.config import TiamatConfig
        self.config = config if config is not None else TiamatConfig()
        self.codec = ensure_codec_match(self.config.wire_codec, codec,
                                        transport="registry")
        self._lock = threading.Lock()
        self._nodes: dict[str, "ThreadedTiamatNode"] = {}
        self._edges: set[frozenset] = set()
        self.obs = Observability(clock=time.monotonic, thread_safe=True)

    def register(self, node: "ThreadedTiamatNode") -> None:
        """Attach a node (idempotent by name)."""
        with self._lock:
            self._nodes[node.name] = node

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        """Set or clear mutual visibility between two nodes."""
        if a == b:
            return
        edge = frozenset((a, b))
        with self._lock:
            if visible:
                self._edges.add(edge)
            else:
                self._edges.discard(edge)

    def visible_nodes(self, name: str) -> list["ThreadedTiamatNode"]:
        """The nodes currently visible from ``name`` (sorted by name)."""
        with self._lock:
            peers = sorted(
                other for edge in self._edges if name in edge
                for other in edge if other != name
            )
            return [self._nodes[p] for p in peers if p in self._nodes]

    def all_nodes(self) -> list["ThreadedTiamatNode"]:
        """Every registered node (sorted by name)."""
        with self._lock:
            return [self._nodes[name] for name in sorted(self._nodes)]

    def cluster_health(self, period: float = 1.0,
                       expected: Optional[Iterable[str]] = None
                       ) -> Dict[str, NodeHealth]:
        """Aggregate every member's telemetry rows into per-node health.

        The same :func:`repro.obs.telemetry.collect_cluster_health` model
        as the simulated runtime — rows are read from the members' spaces
        (lease expiry has already reclaimed dead publishers), ``expected``
        defaults to every registered node so a member that never managed
        to publish shows up ``partitioned`` instead of vanishing.
        """
        nodes = self.all_nodes()
        if expected is None:
            expected = [node.name for node in nodes]
        return collect_cluster_health((node.space for node in nodes),
                                      now=time.monotonic(), period=period,
                                      expected=expected)


class ThreadedTiamatNode:
    """One node: a local space plus opportunistic logical operations."""

    #: How often blocking operations re-sample visibility and re-probe.
    POLL_INTERVAL = 0.005
    #: Cap on the per-peer backoff an origin applies after being shed.
    SHED_BACKOFF_MAX = 0.25

    def __init__(self, registry: ThreadedNodeRegistry, name: str, *,
                 max_concurrent_serves: Optional[int] = None) -> None:
        if max_concurrent_serves is not None and max_concurrent_serves < 1:
            raise ValueError("max_concurrent_serves must be >= 1 or None")
        self.registry = registry
        self.name = name
        self.space = ThreadSafeTupleSpace(name)
        self.max_concurrent_serves = max_concurrent_serves
        self._serve_lock = threading.Lock()
        self._active_serves = 0
        # peer name -> (shed streak, monotonic time before which we skip it)
        self._peer_backoff: dict[str, tuple[int, float]] = {}
        # plain counters for the telemetry payload (the labelled metrics
        # above are for export; these are cheap to read back)
        self.ops_started = 0
        self.ops_unsatisfied = 0
        self.sheds = 0
        self.telemetry_published = 0
        self._op_lock = threading.Lock()
        self._op_seq = 0
        self._telemetry_epoch = 0
        self._telemetry_last: dict[str, int] = {}
        self._telemetry_stop: Optional[threading.Event] = None
        registry.register(self)
        reg = registry.obs.registry
        self._ops_metric = reg.counter(
            "runtime_ops_total",
            help="Logical operations by node, operation, and outcome.",
            labels=("node", "op", "outcome"))
        self._serve_metric = reg.counter(
            "runtime_serve_total",
            help="Remote probes served or shed by each node.",
            labels=("node", "outcome"))
        self._wait_hist = reg.histogram(
            "runtime_blocking_wait_seconds",
            help="Wall-clock wait of blocking rd/in operations.",
            labels=("node",)).labels(node=name)
        space = self.space

        def space_events():
            yield (name, "deposit"), space.deposits
            yield (name, "consumed"), space.consumed

        reg.callback("runtime_space_events_total", space_events,
                     help="Deposits and consumptions per node's space.",
                     labels=("node", "event"), kind="counter", key=id(self))
        reg.callback("runtime_tuples_resident",
                     lambda: [((name,), space.store.visible_count)],
                     help="Live tuples resident in each node's space.",
                     labels=("node",), key=id(self))

    def _count(self, op: str, outcome: str) -> None:
        self._ops_metric.labels(node=self.name, op=op, outcome=outcome).inc()

    # ------------------------------------------------------------------
    # Tracing plane: wall-clock op timelines for ``repro trace --chrome``
    # ------------------------------------------------------------------
    def _trace_start(self, kind: str):
        """Mint an op id and record op_start when a tracer is installed.

        The registry's hub owns the tracer (``registry.obs.start_trace``,
        thread-safe, clocked by ``time.monotonic``); with none installed
        this is two attribute reads and no allocation.
        """
        self.ops_started += 1
        tracer = self.registry.obs.tracer
        if tracer is None:
            return None, None
        with self._op_lock:
            self._op_seq += 1
            op_id = f"{self.name}@{self._op_seq}"
        tracer.op_started(op_id, self.name, kind)
        return op_id, tracer

    def _trace_end(self, tracer, op_id: Optional[str],
                   result: Optional[Tuple], source: Optional[str]) -> None:
        if result is None:
            self.ops_unsatisfied += 1
        if tracer is not None and op_id is not None:
            tracer.op_finished(op_id, self.name, result is not None, source)

    # ------------------------------------------------------------------
    # Serving plane: how *peers* enter this node
    # ------------------------------------------------------------------
    def _admit_serve(self) -> bool:
        with self._serve_lock:
            if (self.max_concurrent_serves is not None
                    and self._active_serves >= self.max_concurrent_serves):
                return False
            self._active_serves += 1
        return True

    def _release_serve(self) -> None:
        with self._serve_lock:
            self._active_serves -= 1

    @property
    def active_serves(self) -> int:
        """Remote probes currently being served by this node."""
        return self._active_serves

    def serve_rdp(self, pattern: Pattern) -> Union[Optional[Tuple], _ShedType]:
        """Serve a peer's non-destructive probe, or :data:`SHED` it.

        This is the only sanctioned path for a remote read: it gates on the
        concurrent serving budget before touching the store, mirroring the
        simulated admission plane's "refuse before any work" rule.
        """
        if not self._admit_serve():
            self.sheds += 1
            self._serve_metric.labels(node=self.name, outcome="shed").inc()
            return SHED
        try:
            found = self.space.rdp(pattern)
        finally:
            self._release_serve()
        self._serve_metric.labels(node=self.name, outcome="served").inc()
        return found

    def serve_inp(self, pattern: Pattern) -> Union[Optional[Tuple], _ShedType]:
        """Serve a peer's destructive probe, or :data:`SHED` it."""
        if not self._admit_serve():
            self.sheds += 1
            self._serve_metric.labels(node=self.name, outcome="shed").inc()
            return SHED
        try:
            taken = self.space.inp(pattern)
        finally:
            self._release_serve()
        self._serve_metric.labels(node=self.name, outcome="served").inc()
        return taken

    def _peer_probe(self, peer: "ThreadedTiamatNode", pattern: Pattern,
                    remove: bool, op_id: Optional[str] = None,
                    tracer=None) -> Optional[Tuple]:
        """Probe one peer through its serving gate, honouring backoff.

        A shed answer is treated as a miss and starts (or extends) a capped
        exponential backoff window for that peer; a served answer clears
        the window.  Backoff windows only suppress *probes of that peer* —
        the local space and other peers are unaffected.  With a tracer
        installed, the verdict is recorded against the peer's span so the
        waterfall and Chrome export show who shed or answered.
        """
        now = time.monotonic()
        streak, until = self._peer_backoff.get(peer.name, (0, 0.0))
        if now < until:
            return None
        result = peer.serve_inp(pattern) if remove else peer.serve_rdp(pattern)
        if result is SHED:
            streak += 1
            delay = min(self.POLL_INTERVAL * (2.0 ** streak),
                        self.SHED_BACKOFF_MAX)
            self._peer_backoff[peer.name] = (streak, now + delay)
            if tracer is not None and op_id is not None:
                tracer.note(op_id, peer.name, "serve", outcome="shed")
            return None
        if streak:
            self._peer_backoff.pop(peer.name, None)
        if tracer is not None and op_id is not None and result is not None:
            tracer.note(op_id, peer.name, "serve",
                        outcome="hit", remove=remove)
        return result

    # ------------------------------------------------------------------
    # The six operations
    # ------------------------------------------------------------------
    def out(self, tup: Tuple, lease_duration: Optional[float] = None) -> None:
        """Deposit into the local space (default scope, section 2.2)."""
        op_id, tracer = self._trace_start("out")
        self.space.out(tup, lease_duration)
        self._count("out", "ok")
        self._trace_end(tracer, op_id, tup, "local")

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read over the current logical space."""
        op_id, tracer = self._trace_start("rdp")
        local = self.space.rdp(pattern)
        if local is not None:
            self._count("rdp", "hit")
            self._trace_end(tracer, op_id, local, "local")
            return local
        for peer in self.registry.visible_nodes(self.name):
            found = self._peer_probe(peer, pattern, remove=False,
                                     op_id=op_id, tracer=tracer)
            if found is not None:
                self._count("rdp", "hit")
                self._trace_end(tracer, op_id, found, peer.name)
                return found
        self._count("rdp", "miss")
        self._trace_end(tracer, op_id, None, None)
        return None

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take over the current logical space."""
        op_id, tracer = self._trace_start("inp")
        local = self.space.inp(pattern)
        if local is not None:
            self._count("inp", "hit")
            self._trace_end(tracer, op_id, local, "local")
            return local
        for peer in self.registry.visible_nodes(self.name):
            taken = self._peer_probe(peer, pattern, remove=True,
                                     op_id=op_id, tracer=tracer)
            if taken is not None:
                self._count("inp", "hit")
                self._trace_end(tracer, op_id, taken, peer.name)
                return taken
        self._count("inp", "miss")
        self._trace_end(tracer, op_id, None, None)
        return None

    def rd(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking read: polls the logical space until match or lease end."""
        return self._timed_blocking("rd", pattern, remove=False,
                                    timeout=timeout)

    def in_(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking take: polls the logical space until match or lease end."""
        return self._timed_blocking("in", pattern, remove=True,
                                    timeout=timeout)

    def eval(self, fn, *args, lease_duration: Optional[float] = None) -> threading.Thread:
        """Active tuple: run ``fn(*args)`` on a thread, deposit its result."""
        def runner():
            op_id, tracer = self._trace_start("eval")
            result = fn(*args)
            if not isinstance(result, Tuple):
                raise TypeError(f"eval returned {result!r}, not a Tuple")
            self.space.out(result, lease_duration)
            self._count("eval", "ok")
            self._trace_end(tracer, op_id, result, "local")

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Telemetry plane: leased health rows for ``repro top``
    # ------------------------------------------------------------------
    def publish_telemetry(self, lease_duration: float = 2.5) -> None:
        """Deposit one leased ``("_telemetry", ...)`` health row now.

        Same row shape as the simulated runtime's
        :class:`~repro.obs.telemetry.TelemetryPublisher` — windowed deltas
        since the previous row plus instantaneous gauges — but clocked by
        wall time.  The lease is the whole liveness story: a node that
        stops publishing has its rows reaped by expiry, so the collector
        sees it age out and flags it partitioned.
        """
        self._telemetry_epoch += 1
        current = {
            "ops": self.ops_started,
            "unsat": self.ops_unsatisfied,
            "sheds": self.sheds,
            "retx": 0,
            "rexp": 0,
        }
        payload: dict = {f"{key}_w": value - self._telemetry_last.get(key, 0)
                         for key, value in current.items()}
        self._telemetry_last = current
        payload["t"] = time.monotonic()
        payload["resident"] = self.space.count()
        payload["pending"] = 0
        row = Tuple(TELEMETRY_TAG, self.name, self._telemetry_epoch,
                    json.dumps(payload, separators=(",", ":"),
                               sort_keys=True))
        self.space.out(row, lease_duration=lease_duration)
        self.telemetry_published += 1

    def start_telemetry(self, period: float = 1.0,
                        lease_duration: Optional[float] = None) -> None:
        """Publish a health row now and then every ``period`` seconds.

        Runs on a daemon thread until :meth:`stop_telemetry`.  The default
        lease is 2.5 publish periods, comfortably over one beat (a single
        delayed beat does not flap the node partitioned) and safely under
        the collector's ``STALE_PERIODS`` cutoff.
        """
        if self._telemetry_stop is not None:
            return
        if lease_duration is None:
            lease_duration = 2.5 * period
        stop = threading.Event()
        self._telemetry_stop = stop

        def beat():
            while True:
                self.publish_telemetry(lease_duration)
                if stop.wait(period):
                    return

        threading.Thread(target=beat, daemon=True,
                         name=f"telemetry-{self.name}").start()

    def stop_telemetry(self) -> None:
        """Stop the periodic publisher (existing rows expire naturally)."""
        if self._telemetry_stop is not None:
            self._telemetry_stop.set()
            self._telemetry_stop = None

    # ------------------------------------------------------------------
    def _timed_blocking(self, op: str, pattern: Pattern, remove: bool,
                        timeout: float) -> Optional[Tuple]:
        op_id, tracer = self._trace_start(op)
        started = time.monotonic()
        result, source = self._blocking(pattern, remove=remove,
                                        timeout=timeout, op_id=op_id,
                                        tracer=tracer)
        self._wait_hist.observe(time.monotonic() - started)
        self._count(op, "hit" if result is not None else "miss")
        self._trace_end(tracer, op_id, result, source)
        return result

    def _blocking(self, pattern: Pattern, remove: bool, timeout: float,
                  op_id: Optional[str] = None, tracer=None):
        """Poll until match or deadline; returns ``(tuple, source)``."""
        deadline = time.monotonic() + timeout
        while True:
            # Local space first — use a short real block so a local deposit
            # wakes us immediately.
            local = (self.space.in_(pattern, timeout=self.POLL_INTERVAL) if remove
                     else self.space.rd(pattern, timeout=self.POLL_INTERVAL))
            if local is not None:
                return local, "local"
            # Then the currently visible peers (opportunistic re-sample),
            # through their serving gates so a saturated peer sheds us
            # into a per-peer backoff instead of being hammered.
            for peer in self.registry.visible_nodes(self.name):
                found = self._peer_probe(peer, pattern, remove=remove,
                                         op_id=op_id, tracer=tracer)
                if found is not None:
                    return found, peer.name
            if time.monotonic() >= deadline:
                return None, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadedTiamatNode {self.name}>"
