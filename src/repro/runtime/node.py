"""Threaded Tiamat nodes: opportunistic logical spaces over real threads.

A :class:`ThreadedNodeRegistry` plays the role of the network: it records
which nodes exist and which pairs are mutually visible.  Each
:class:`ThreadedTiamatNode` owns a :class:`ThreadSafeTupleSpace` and runs
its logical-space operations against the union of its own space and the
spaces of currently visible nodes — re-sampling visibility on every probe
round, which is exactly the opportunistic construction of section 2.2
(no connection or disconnection operations anywhere).

Destructive remote takes use the same two-phase hold/confirm discipline as
the simulated protocol, implemented with the store's own ``hold`` under the
target space's lock, so exactly-once consumption holds under real
concurrency.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.obs import Observability
from repro.runtime.space import ThreadSafeTupleSpace
from repro.tuples.model import Pattern, Tuple


class ThreadedNodeRegistry:
    """In-process 'network': node registry plus a visibility relation.

    The registry also owns the runtime's :class:`~repro.obs.hub.Observability`
    hub (``registry.obs``): a **thread-safe** metrics registry clocked by
    wall time (``time.monotonic``), which every member node feeds its
    operation counters, blocking-wait histogram, and space residency into.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[str, "ThreadedTiamatNode"] = {}
        self._edges: set[frozenset] = set()
        self.obs = Observability(clock=time.monotonic, thread_safe=True)

    def register(self, node: "ThreadedTiamatNode") -> None:
        """Attach a node (idempotent by name)."""
        with self._lock:
            self._nodes[node.name] = node

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        """Set or clear mutual visibility between two nodes."""
        if a == b:
            return
        edge = frozenset((a, b))
        with self._lock:
            if visible:
                self._edges.add(edge)
            else:
                self._edges.discard(edge)

    def visible_nodes(self, name: str) -> list["ThreadedTiamatNode"]:
        """The nodes currently visible from ``name`` (sorted by name)."""
        with self._lock:
            peers = sorted(
                other for edge in self._edges if name in edge
                for other in edge if other != name
            )
            return [self._nodes[p] for p in peers if p in self._nodes]


class ThreadedTiamatNode:
    """One node: a local space plus opportunistic logical operations."""

    #: How often blocking operations re-sample visibility and re-probe.
    POLL_INTERVAL = 0.005

    def __init__(self, registry: ThreadedNodeRegistry, name: str) -> None:
        self.registry = registry
        self.name = name
        self.space = ThreadSafeTupleSpace(name)
        registry.register(self)
        reg = registry.obs.registry
        self._ops_metric = reg.counter(
            "runtime_ops_total",
            help="Logical operations by node, operation, and outcome.",
            labels=("node", "op", "outcome"))
        self._wait_hist = reg.histogram(
            "runtime_blocking_wait_seconds",
            help="Wall-clock wait of blocking rd/in operations.",
            labels=("node",)).labels(node=name)
        space = self.space

        def space_events():
            yield (name, "deposit"), space.deposits
            yield (name, "consumed"), space.consumed

        reg.callback("runtime_space_events_total", space_events,
                     help="Deposits and consumptions per node's space.",
                     labels=("node", "event"), kind="counter", key=id(self))
        reg.callback("runtime_tuples_resident",
                     lambda: [((name,), space.store.visible_count)],
                     help="Live tuples resident in each node's space.",
                     labels=("node",), key=id(self))

    def _count(self, op: str, outcome: str) -> None:
        self._ops_metric.labels(node=self.name, op=op, outcome=outcome).inc()

    # ------------------------------------------------------------------
    # The six operations
    # ------------------------------------------------------------------
    def out(self, tup: Tuple, lease_duration: Optional[float] = None) -> None:
        """Deposit into the local space (default scope, section 2.2)."""
        self.space.out(tup, lease_duration)
        self._count("out", "ok")

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read over the current logical space."""
        local = self.space.rdp(pattern)
        if local is not None:
            self._count("rdp", "hit")
            return local
        for peer in self.registry.visible_nodes(self.name):
            found = peer.space.rdp(pattern)
            if found is not None:
                self._count("rdp", "hit")
                return found
        self._count("rdp", "miss")
        return None

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take over the current logical space."""
        local = self.space.inp(pattern)
        if local is not None:
            self._count("inp", "hit")
            return local
        for peer in self.registry.visible_nodes(self.name):
            taken = peer.space.inp(pattern)
            if taken is not None:
                self._count("inp", "hit")
                return taken
        self._count("inp", "miss")
        return None

    def rd(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking read: polls the logical space until match or lease end."""
        return self._timed_blocking("rd", pattern, remove=False,
                                    timeout=timeout)

    def in_(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking take: polls the logical space until match or lease end."""
        return self._timed_blocking("in", pattern, remove=True,
                                    timeout=timeout)

    def eval(self, fn, *args, lease_duration: Optional[float] = None) -> threading.Thread:
        """Active tuple: run ``fn(*args)`` on a thread, deposit its result."""
        def runner():
            result = fn(*args)
            if not isinstance(result, Tuple):
                raise TypeError(f"eval returned {result!r}, not a Tuple")
            self.space.out(result, lease_duration)
            self._count("eval", "ok")

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    def _timed_blocking(self, op: str, pattern: Pattern, remove: bool,
                        timeout: float) -> Optional[Tuple]:
        started = time.monotonic()
        result = self._blocking(pattern, remove=remove, timeout=timeout)
        self._wait_hist.observe(time.monotonic() - started)
        self._count(op, "hit" if result is not None else "miss")
        return result

    def _blocking(self, pattern: Pattern, remove: bool,
                  timeout: float) -> Optional[Tuple]:
        deadline = time.monotonic() + timeout
        while True:
            # Local space first — use a short real block so a local deposit
            # wakes us immediately.
            local = (self.space.in_(pattern, timeout=self.POLL_INTERVAL) if remove
                     else self.space.rd(pattern, timeout=self.POLL_INTERVAL))
            if local is not None:
                return local
            # Then the currently visible peers (opportunistic re-sample).
            for peer in self.registry.visible_nodes(self.name):
                found = (peer.space.inp(pattern) if remove
                         else peer.space.rdp(pattern))
                if found is not None:
                    return found
            if time.monotonic() >= deadline:
                return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadedTiamatNode {self.name}>"
