"""Threaded Tiamat nodes: opportunistic logical spaces over real threads.

A :class:`ThreadedNodeRegistry` plays the role of the network: it records
which nodes exist and which pairs are mutually visible.  Each
:class:`ThreadedTiamatNode` owns a :class:`ThreadSafeTupleSpace` and runs
its logical-space operations against the union of its own space and the
spaces of currently visible nodes — re-sampling visibility on every probe
round, which is exactly the opportunistic construction of section 2.2
(no connection or disconnection operations anywhere).

Destructive remote takes use the same two-phase hold/confirm discipline as
the simulated protocol, implemented with the store's own ``hold`` under the
target space's lock, so exactly-once consumption holds under real
concurrency.

Serving is *admission-controlled*, mirroring the simulated
:mod:`repro.core.admission` plane: every remote probe enters the target
node through :meth:`ThreadedTiamatNode.serve_rdp` /
:meth:`~ThreadedTiamatNode.serve_inp`, which gate on a bounded concurrent
serving budget (``max_concurrent_serves``).  A saturated node returns the
:data:`SHED` sentinel instead of scanning its store; origins react with a
capped exponential per-peer backoff, so overload on one node does not turn
every visible peer's poll loop into a thundering herd.  The default budget
is ``None`` (unbounded), which preserves the uncontrolled behaviour.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Union

from repro.obs import Observability
from repro.runtime.space import ThreadSafeTupleSpace
from repro.tuples.model import Pattern, Tuple


class _ShedType:
    """Sentinel type for :data:`SHED` (falsy, unique, self-describing)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "SHED"

    def __bool__(self) -> bool:
        return False


#: Returned by ``serve_rdp``/``serve_inp`` when the node sheds the probe
#: instead of serving it (concurrent serving budget exhausted).  Falsy, so
#: callers that only distinguish "got a tuple or not" keep working; callers
#: that care (the origin poll loops here) check identity and back off.
SHED = _ShedType()


class ThreadedNodeRegistry:
    """In-process 'network': node registry plus a visibility relation.

    The registry also owns the runtime's :class:`~repro.obs.hub.Observability`
    hub (``registry.obs``): a **thread-safe** metrics registry clocked by
    wall time (``time.monotonic``), which every member node feeds its
    operation counters, blocking-wait histogram, and space residency into.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[str, "ThreadedTiamatNode"] = {}
        self._edges: set[frozenset] = set()
        self.obs = Observability(clock=time.monotonic, thread_safe=True)

    def register(self, node: "ThreadedTiamatNode") -> None:
        """Attach a node (idempotent by name)."""
        with self._lock:
            self._nodes[node.name] = node

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        """Set or clear mutual visibility between two nodes."""
        if a == b:
            return
        edge = frozenset((a, b))
        with self._lock:
            if visible:
                self._edges.add(edge)
            else:
                self._edges.discard(edge)

    def visible_nodes(self, name: str) -> list["ThreadedTiamatNode"]:
        """The nodes currently visible from ``name`` (sorted by name)."""
        with self._lock:
            peers = sorted(
                other for edge in self._edges if name in edge
                for other in edge if other != name
            )
            return [self._nodes[p] for p in peers if p in self._nodes]


class ThreadedTiamatNode:
    """One node: a local space plus opportunistic logical operations."""

    #: How often blocking operations re-sample visibility and re-probe.
    POLL_INTERVAL = 0.005
    #: Cap on the per-peer backoff an origin applies after being shed.
    SHED_BACKOFF_MAX = 0.25

    def __init__(self, registry: ThreadedNodeRegistry, name: str, *,
                 max_concurrent_serves: Optional[int] = None) -> None:
        if max_concurrent_serves is not None and max_concurrent_serves < 1:
            raise ValueError("max_concurrent_serves must be >= 1 or None")
        self.registry = registry
        self.name = name
        self.space = ThreadSafeTupleSpace(name)
        self.max_concurrent_serves = max_concurrent_serves
        self._serve_lock = threading.Lock()
        self._active_serves = 0
        # peer name -> (shed streak, monotonic time before which we skip it)
        self._peer_backoff: dict[str, tuple[int, float]] = {}
        registry.register(self)
        reg = registry.obs.registry
        self._ops_metric = reg.counter(
            "runtime_ops_total",
            help="Logical operations by node, operation, and outcome.",
            labels=("node", "op", "outcome"))
        self._serve_metric = reg.counter(
            "runtime_serve_total",
            help="Remote probes served or shed by each node.",
            labels=("node", "outcome"))
        self._wait_hist = reg.histogram(
            "runtime_blocking_wait_seconds",
            help="Wall-clock wait of blocking rd/in operations.",
            labels=("node",)).labels(node=name)
        space = self.space

        def space_events():
            yield (name, "deposit"), space.deposits
            yield (name, "consumed"), space.consumed

        reg.callback("runtime_space_events_total", space_events,
                     help="Deposits and consumptions per node's space.",
                     labels=("node", "event"), kind="counter", key=id(self))
        reg.callback("runtime_tuples_resident",
                     lambda: [((name,), space.store.visible_count)],
                     help="Live tuples resident in each node's space.",
                     labels=("node",), key=id(self))

    def _count(self, op: str, outcome: str) -> None:
        self._ops_metric.labels(node=self.name, op=op, outcome=outcome).inc()

    # ------------------------------------------------------------------
    # Serving plane: how *peers* enter this node
    # ------------------------------------------------------------------
    def _admit_serve(self) -> bool:
        with self._serve_lock:
            if (self.max_concurrent_serves is not None
                    and self._active_serves >= self.max_concurrent_serves):
                return False
            self._active_serves += 1
        return True

    def _release_serve(self) -> None:
        with self._serve_lock:
            self._active_serves -= 1

    @property
    def active_serves(self) -> int:
        """Remote probes currently being served by this node."""
        return self._active_serves

    def serve_rdp(self, pattern: Pattern) -> Union[Optional[Tuple], _ShedType]:
        """Serve a peer's non-destructive probe, or :data:`SHED` it.

        This is the only sanctioned path for a remote read: it gates on the
        concurrent serving budget before touching the store, mirroring the
        simulated admission plane's "refuse before any work" rule.
        """
        if not self._admit_serve():
            self._serve_metric.labels(node=self.name, outcome="shed").inc()
            return SHED
        try:
            found = self.space.rdp(pattern)
        finally:
            self._release_serve()
        self._serve_metric.labels(node=self.name, outcome="served").inc()
        return found

    def serve_inp(self, pattern: Pattern) -> Union[Optional[Tuple], _ShedType]:
        """Serve a peer's destructive probe, or :data:`SHED` it."""
        if not self._admit_serve():
            self._serve_metric.labels(node=self.name, outcome="shed").inc()
            return SHED
        try:
            taken = self.space.inp(pattern)
        finally:
            self._release_serve()
        self._serve_metric.labels(node=self.name, outcome="served").inc()
        return taken

    def _peer_probe(self, peer: "ThreadedTiamatNode", pattern: Pattern,
                    remove: bool) -> Optional[Tuple]:
        """Probe one peer through its serving gate, honouring backoff.

        A shed answer is treated as a miss and starts (or extends) a capped
        exponential backoff window for that peer; a served answer clears
        the window.  Backoff windows only suppress *probes of that peer* —
        the local space and other peers are unaffected.
        """
        now = time.monotonic()
        streak, until = self._peer_backoff.get(peer.name, (0, 0.0))
        if now < until:
            return None
        result = peer.serve_inp(pattern) if remove else peer.serve_rdp(pattern)
        if result is SHED:
            streak += 1
            delay = min(self.POLL_INTERVAL * (2.0 ** streak),
                        self.SHED_BACKOFF_MAX)
            self._peer_backoff[peer.name] = (streak, now + delay)
            return None
        if streak:
            self._peer_backoff.pop(peer.name, None)
        return result

    # ------------------------------------------------------------------
    # The six operations
    # ------------------------------------------------------------------
    def out(self, tup: Tuple, lease_duration: Optional[float] = None) -> None:
        """Deposit into the local space (default scope, section 2.2)."""
        self.space.out(tup, lease_duration)
        self._count("out", "ok")

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read over the current logical space."""
        local = self.space.rdp(pattern)
        if local is not None:
            self._count("rdp", "hit")
            return local
        for peer in self.registry.visible_nodes(self.name):
            found = self._peer_probe(peer, pattern, remove=False)
            if found is not None:
                self._count("rdp", "hit")
                return found
        self._count("rdp", "miss")
        return None

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take over the current logical space."""
        local = self.space.inp(pattern)
        if local is not None:
            self._count("inp", "hit")
            return local
        for peer in self.registry.visible_nodes(self.name):
            taken = self._peer_probe(peer, pattern, remove=True)
            if taken is not None:
                self._count("inp", "hit")
                return taken
        self._count("inp", "miss")
        return None

    def rd(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking read: polls the logical space until match or lease end."""
        return self._timed_blocking("rd", pattern, remove=False,
                                    timeout=timeout)

    def in_(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking take: polls the logical space until match or lease end."""
        return self._timed_blocking("in", pattern, remove=True,
                                    timeout=timeout)

    def eval(self, fn, *args, lease_duration: Optional[float] = None) -> threading.Thread:
        """Active tuple: run ``fn(*args)`` on a thread, deposit its result."""
        def runner():
            result = fn(*args)
            if not isinstance(result, Tuple):
                raise TypeError(f"eval returned {result!r}, not a Tuple")
            self.space.out(result, lease_duration)
            self._count("eval", "ok")

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    def _timed_blocking(self, op: str, pattern: Pattern, remove: bool,
                        timeout: float) -> Optional[Tuple]:
        started = time.monotonic()
        result = self._blocking(pattern, remove=remove, timeout=timeout)
        self._wait_hist.observe(time.monotonic() - started)
        self._count(op, "hit" if result is not None else "miss")
        return result

    def _blocking(self, pattern: Pattern, remove: bool,
                  timeout: float) -> Optional[Tuple]:
        deadline = time.monotonic() + timeout
        while True:
            # Local space first — use a short real block so a local deposit
            # wakes us immediately.
            local = (self.space.in_(pattern, timeout=self.POLL_INTERVAL) if remove
                     else self.space.rd(pattern, timeout=self.POLL_INTERVAL))
            if local is not None:
                return local
            # Then the currently visible peers (opportunistic re-sample),
            # through their serving gates so a saturated peer sheds us
            # into a per-peer backoff instead of being hammered.
            for peer in self.registry.visible_nodes(self.name):
                found = self._peer_probe(peer, pattern, remove=remove)
                if found is not None:
                    return found
            if time.monotonic() >= deadline:
                return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadedTiamatNode {self.name}>"
