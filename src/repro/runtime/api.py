"""The unified runtime front door: ``repro.connect(runtime=...)``.

Tiamat has three execution substrates — the deterministic simulation
(:mod:`repro.core` over :mod:`repro.sim`), the threaded runtime
(:mod:`repro.runtime.node`), and the asyncio UDP runtime
(:mod:`repro.runtime.aio`).  Historically each had its own entry ritual
(build a ``Simulator`` + ``Network`` + ``TiamatInstance``; or a
``ThreadedNodeRegistry`` + ``ThreadedTiamatNode``); this module gives all
three one door and one handle vocabulary::

    import repro
    from repro.tuples import Pattern, Tuple

    with repro.connect(runtime="aio") as rt:     # or "sim" / "threads"
        a = rt.node("a")
        b = rt.node("b")
        rt.set_visible("a", "b")
        b.out(Tuple("job", 1))
        print(a.inp(Pattern("job", int)))        # -> Tuple('job', 1)

Every handle satisfies :class:`TiamatNodeHandle`: synchronous
``out``/``rdp``/``inp``/``rd``/``in_``/``eval`` with the threaded
runtime's signatures.  The sim adapter makes that work by *driving the
kernel* under each call — virtual time advances while the caller blocks,
so a ``rd`` with a 5 s timeout completes in microseconds of wall time.
The legacy entry points remain as deprecated shims (see ``repro.runtime``
and ``repro.create_instance``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol, runtime_checkable

from repro.tuples.model import Pattern, Tuple

if TYPE_CHECKING:
    from repro.core.config import TiamatConfig

_RUNTIMES = ("sim", "threads", "aio")


@runtime_checkable
class TiamatNodeHandle(Protocol):
    """What every runtime hands back from :meth:`TiamatRuntime.node`."""

    name: str

    def out(self, tup: Tuple,
            lease_duration: Optional[float] = None) -> None: ...
    def rdp(self, pattern: Pattern) -> Optional[Tuple]: ...
    def inp(self, pattern: Pattern) -> Optional[Tuple]: ...
    def rd(self, pattern: Pattern,
           timeout: float = 5.0) -> Optional[Tuple]: ...
    def in_(self, pattern: Pattern,
            timeout: float = 5.0) -> Optional[Tuple]: ...
    def eval(self, fn, *args,
             lease_duration: Optional[float] = None) -> Any: ...


@runtime_checkable
class TiamatRuntime(Protocol):
    """What :func:`connect` returns, whatever the substrate."""

    kind: str

    def node(self, name: str, **options: Any) -> TiamatNodeHandle: ...
    def set_visible(self, a: str, b: str, visible: bool = True) -> None: ...
    def close(self) -> None: ...
    def __enter__(self) -> "TiamatRuntime": ...
    def __exit__(self, *exc: Any) -> None: ...


class _RuntimeBase:
    """Context-manager plumbing shared by the three adapters."""

    kind = "?"

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# sim
# ---------------------------------------------------------------------------
class _SimNodeHandle:
    """Synchronous facade over a :class:`~repro.core.TiamatInstance`.

    Each call constructs the operation and then runs the simulation
    kernel until the operation concludes or its (virtual) timeout
    expires — the same generator-driver idiom the differential harness
    uses, packaged per call.
    """

    def __init__(self, runtime: "SimRuntime", instance: Any) -> None:
        self._runtime = runtime
        self.instance = instance
        self.name = instance.name

    @property
    def space(self) -> Any:
        return self.instance.space

    def _requester(self, lease_duration: Optional[float]) -> Any:
        if lease_duration is None:
            return None
        from repro.leasing import LeaseTerms, SimpleLeaseRequester
        return SimpleLeaseRequester(LeaseTerms(duration=lease_duration))

    def _await_event(self, event: Any, timeout: float,
                     cancel: Any = None) -> Optional[Tuple]:
        sim = self._runtime.sim
        box: dict = {}

        def driver():
            box["result"] = yield event

        sim.spawn(driver())
        # Advance virtual time in small slices and stop as soon as the
        # event concludes: burning the whole timeout on every call would
        # silently expire leased tuples between operations.
        deadline = sim.now + timeout
        while "result" not in box and sim.now < deadline:
            sim.run(until=min(sim.now + 0.25, deadline))
        if "result" not in box and cancel is not None:
            # Timed out: withdraw the pending operation so it cannot
            # consume a tuple deposited after this call returned None.
            cancel()
        return box.get("result")

    def out(self, tup: Tuple,
            lease_duration: Optional[float] = None) -> None:
        self.instance.out(tup, requester=self._requester(lease_duration))

    def _op(self, op_name: str, pattern: Pattern,
            timeout: float) -> Optional[Tuple]:
        op = getattr(self.instance, op_name)(pattern)
        return self._await_event(op.event, timeout,
                                 cancel=getattr(op, "cancel", None))

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        return self._op("rdp", pattern, self._runtime.op_timeout)

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        return self._op("inp", pattern, self._runtime.op_timeout)

    def rd(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        return self._op("rd", pattern, timeout)

    def in_(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        return self._op("in_", pattern, timeout)

    def eval(self, fn, *args,
             lease_duration: Optional[float] = None) -> Optional[Tuple]:
        task = self.instance.eval(
            fn, *args, requester=self._requester(lease_duration))
        return self._await_event(task.event, self._runtime.op_timeout)


class SimRuntime(_RuntimeBase):
    """``connect(runtime="sim")``: handles that drive the kernel inline.

    ``op_timeout`` bounds the *virtual* time a non-blocking probe or an
    ``eval`` may take before the handle gives up and returns ``None``
    (blocking ``rd``/``in_`` use their own ``timeout`` arguments).
    """

    kind = "sim"

    def __init__(self, *, config: Optional["TiamatConfig"] = None,
                 seed: int = 0, op_timeout: float = 60.0) -> None:
        from repro.core.config import TiamatConfig
        from repro.net.network import Network, default_latency
        from repro.net.visibility import VisibilityGraph
        from repro.sim.kernel import Simulator

        self.config = config if config is not None else TiamatConfig()
        self.sim = Simulator(seed=seed)
        self.visibility = VisibilityGraph()
        codec = (self.config.wire_codec
                 if self.config.wire_codec != "json" else None)
        self.network = Network(self.sim, visibility=self.visibility,
                               codec=codec,
                               latency_factory=default_latency(per_byte=0.0))
        self.op_timeout = op_timeout
        self._handles: dict = {}

    def node(self, name: str, **options: Any) -> _SimNodeHandle:
        from repro.core.instance import TiamatInstance
        if name in self._handles:
            raise ValueError(f"node {name!r} already exists")
        instance = TiamatInstance(self.sim, self.network, name,
                                  config=self.config, **options)
        handle = _SimNodeHandle(self, instance)
        self._handles[name] = handle
        self.sim.run(until=self.sim.now + 0.001)   # let the instance settle
        return handle

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        self.visibility.set_visible(a, b, visible)
        self.visibility.set_visible(b, a, visible)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Advance virtual time directly (escape hatch for sim users)."""
        return self.sim.run(until=until, max_events=max_events)


# ---------------------------------------------------------------------------
# threads
# ---------------------------------------------------------------------------
class ThreadsRuntime(_RuntimeBase):
    """``connect(runtime="threads")``: lock-based nodes on real threads.

    The handles *are* :class:`~repro.runtime.node.ThreadedTiamatNode`
    objects — that class already speaks the handle vocabulary; the
    adapter only owns the registry and the visibility relation.
    """

    kind = "threads"

    def __init__(self, *, config: Optional["TiamatConfig"] = None) -> None:
        from repro.runtime.node import ThreadedNodeRegistry
        self.registry = ThreadedNodeRegistry(config=config)
        self.config = self.registry.config

    def node(self, name: str, **options: Any):
        from repro.runtime.node import ThreadedTiamatNode
        return ThreadedTiamatNode(self.registry, name, **options)

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        self.registry.set_visible(a, b, visible)


# ---------------------------------------------------------------------------
# aio
# ---------------------------------------------------------------------------
class AioRuntime(_RuntimeBase):
    """``connect(runtime="aio")``: real UDP datagrams on an event loop.

    Handles are :class:`~repro.runtime.aio.AioTiamatNode` objects; their
    ``a_``-prefixed coroutine twins are available for asyncio callers.
    ``close()`` (or the context manager) tears down every socket and the
    loop thread — unlike the in-process runtimes, forgetting it leaks
    OS resources.
    """

    kind = "aio"

    def __init__(self, *, config: Optional["TiamatConfig"] = None,
                 host: str = "127.0.0.1", loss_rate: float = 0.0,
                 loss_seed: int = 0, multicast: Optional[tuple] = None) -> None:
        from repro.runtime.aio import AioNodeRegistry
        self.registry = AioNodeRegistry(
            host=host, config=config, loss_rate=loss_rate,
            loss_seed=loss_seed, multicast=multicast)
        self.config = self.registry.config

    def node(self, name: str, **options: Any):
        from repro.runtime.aio import AioTiamatNode
        return AioTiamatNode(self.registry, name, **options)

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        self.registry.set_visible(a, b, visible)

    def close(self) -> None:
        self.registry.close()


def connect(runtime: str = "sim", *,
            config: Optional["TiamatConfig"] = None,
            **options: Any) -> TiamatRuntime:
    """Open a Tiamat runtime of the requested kind.

    Parameters
    ----------
    runtime:
        ``"sim"`` (deterministic simulation), ``"threads"`` (real
        threads, in-process), or ``"aio"`` (real UDP sockets on an
        asyncio event loop).
    config:
        A :class:`~repro.core.TiamatConfig` applied to every node; the
        configured ``wire_codec`` flows into the runtime's transport
        identically for all three kinds (mismatches raise
        :class:`~repro.errors.CodecMismatchError` at construction).
    options:
        Kind-specific keywords — ``seed``/``op_timeout`` for sim;
        ``host``/``loss_rate``/``loss_seed``/``multicast`` for aio.

    Returns a :class:`TiamatRuntime`; use it as a context manager so the
    aio kind reliably releases its sockets and loop thread.
    """
    if runtime == "sim":
        return SimRuntime(config=config, **options)
    if runtime == "threads":
        return ThreadsRuntime(config=config, **options)
    if runtime == "aio":
        return AioRuntime(config=config, **options)
    raise ValueError(
        f"unknown runtime {runtime!r}: expected one of {_RUNTIMES}")
