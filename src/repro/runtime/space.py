"""A thread-safe tuple space with truly blocking operations.

The same store and matching substrate as the simulated spaces
(:mod:`repro.tuples`), fronted by a lock + condition variable so multiple
OS threads can ``out``/``in``/``rd`` concurrently.  Deadlines are wall
clock: a blocking operation that exceeds its lease duration returns
``None`` — the model's bounded-effort semantics (section 2.5).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.tuples.matching import matches
from repro.tuples.model import Pattern, Tuple
from repro.tuples.store import TupleStore


class ThreadSafeTupleSpace:
    """Monitor-style wrapper around a TupleStore."""

    def __init__(self, name: str = "space") -> None:
        self.name = name
        self._store = TupleStore()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.deposits = 0
        self.consumed = 0
        self._waiting = 0
        #: Cumulative number of blocking operations that actually parked
        #: on the condition variable (monotone — safe for tests to poll
        #: without racing the gauge's decrement).
        self.wait_entries = 0

    @property
    def waiting(self) -> int:
        """Blocked readers currently parked on the condition variable.

        A synchronization point for tests and telemetry: once this is
        non-zero, a blocking ``rd``/``in_`` has scanned the store, found
        no match, and is guaranteed to be woken by the next deposit —
        no wall-clock sleep needed to "let the reader start".
        """
        return self._waiting

    @property
    def store(self) -> TupleStore:
        """The underlying store (read-only access for telemetry).

        Mutating it without holding the space's lock is not thread-safe;
        observers must limit themselves to counter reads.
        """
        return self._store

    # ------------------------------------------------------------------
    def out(self, tup: Tuple, lease_duration: Optional[float] = None) -> None:
        """Deposit a tuple; wakes any blocked readers.

        ``lease_duration`` (wall-clock seconds) bounds the tuple's
        lifetime; expiry is enforced lazily at query time (cheap, and
        semantically identical to "may be removed at any time" after
        expiry).
        """
        expires_at = None if lease_duration is None else time.monotonic() + lease_duration
        with self._changed:
            self._store.add(tup, meta={"expires_at": expires_at})
            self.deposits += 1
            self._changed.notify_all()

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read."""
        with self._lock:
            entry = self._find_live(pattern)
            return entry.tuple if entry else None

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take."""
        with self._lock:
            entry = self._find_live(pattern)
            if entry is None:
                return None
            self._store.remove(entry.entry_id)
            self.consumed += 1
            return entry.tuple

    def rd(self, pattern: Pattern, timeout: Optional[float] = None) -> Optional[Tuple]:
        """Blocking read: waits up to ``timeout`` seconds for a match."""
        return self._blocking(pattern, remove=False, timeout=timeout)

    def in_(self, pattern: Pattern, timeout: Optional[float] = None) -> Optional[Tuple]:
        """Blocking take: waits up to ``timeout`` seconds for a match."""
        return self._blocking(pattern, remove=True, timeout=timeout)

    def count(self, pattern: Optional[Pattern] = None) -> int:
        """Number of live tuples (matching ``pattern`` when given)."""
        with self._lock:
            self._reap()
            if pattern is None:
                return self._store.visible_count
            return len(self._store.find_all(pattern))

    def snapshot(self) -> list[Tuple]:
        """All live tuples, oldest first."""
        with self._lock:
            self._reap()
            entries = sorted((e for e in self._store if e.visible),
                             key=lambda e: e.entry_id)
            return [e.tuple for e in entries]

    # ------------------------------------------------------------------
    def _blocking(self, pattern: Pattern, remove: bool,
                  timeout: Optional[float]) -> Optional[Tuple]:
        deadline = None if timeout is None else time.monotonic() + timeout
        parked = False
        with self._changed:
            try:
                while True:
                    entry = self._find_live(pattern)
                    if entry is not None:
                        if remove:
                            self._store.remove(entry.entry_id)
                            self.consumed += 1
                        return entry.tuple
                    if not parked:
                        parked = True
                        self._waiting += 1
                        self.wait_entries += 1
                    if deadline is None:
                        self._changed.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return None
                        self._changed.wait(remaining)
            finally:
                if parked:
                    self._waiting -= 1

    def _find_live(self, pattern: Pattern):
        """A live (unexpired) matching entry; reaps expired ones it meets."""
        now = time.monotonic()
        # snapshot=True: this loop removes expired entries mid-iteration.
        for entry in self._store.candidates(pattern, snapshot=True):
            expires_at = entry.meta.get("expires_at")
            if expires_at is not None and now >= expires_at:
                self._store.remove(entry.entry_id)
                continue
            if matches(pattern, entry.tuple):
                return entry
        return None

    def _reap(self) -> None:
        now = time.monotonic()
        for entry in list(self._store):
            expires_at = entry.meta.get("expires_at")
            if expires_at is not None and now >= expires_at:
                self._store.remove(entry.entry_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadSafeTupleSpace {self.name!r}>"
