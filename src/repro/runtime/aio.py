"""Asyncio UDP runtime: Tiamat nodes over real sockets on an event loop.

The third execution substrate beside the deterministic simulation
(:mod:`repro.core` over :mod:`repro.sim`) and the threaded runtime
(:mod:`repro.runtime.node`): each :class:`AioTiamatNode` owns a real UDP
socket bound on the cluster host (loopback by default, ephemeral port so
tests never collide), and every inter-node operation travels as a
datagram — mirroring the paper's prototype, which ran the protocol over
IP on physical devices.  Semantics are the threaded runtime's, bit for
bit where the differential harness can see them: ``out`` deposits
locally, probes walk the currently visible peers in sorted order through
their admission gates, blocking operations poll the opportunistic
logical space until match or deadline, ``eval`` runs the active tuple on
a worker and deposits its result locally.

Transport shape
---------------
* **Frames are codec payload dicts** — the same binary LEB128 payload
  encoding (or the JSON codec, per ``TiamatConfig.wire_codec``) the
  simulated network prices, so the wire format is shared across all
  three runtimes rather than reinvented here.
* **Per-peer send queues with same-tick coalescing**: frames queued for
  a peer within one event-loop tick are flushed together, as one
  datagram per peer per tick (a ``{"k": "b"}`` batch envelope when more
  than one frame rode the tick) — one wakeup, one syscall.
* **Zero-copy hot path**: frames are encoded straight into pooled
  ``bytearray`` buffers (:class:`BufferPool`) and handed to the kernel
  as a ``memoryview`` via the socket's own ``sendto`` — no intermediate
  ``bytes`` object per send; receive-side decode is buffer-aware
  (:func:`repro.tuples.serialization.decode_payload_binary` walks the
  datagram without copying it first).
* **Reliability**: every query carries a request id; the origin
  retransmits on a capped exponential schedule (``config.retry_*``)
  until answered or out of budget, and the serving side keeps a bounded
  cache of completed answers so a retransmitted destructive ``inp`` is
  answered *idempotently* — exactly-once consumption over a lossy wire.
* **Multicast discovery** (opt-in): nodes additionally join a multicast
  group derived from the cluster's space name
  (:func:`multicast_group_for`) and answer ``DISCOVER`` datagrams with
  their unicast address, mirroring the paper's discovery multicast.

See ``docs/PROTOCOL.md`` §12 for the frame vocabulary and the buffer
pool lifecycle.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import random
import socket
import struct
import threading
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Tuple as PyTuple,
    Union,
)

from repro.obs import Observability
from repro.runtime.node import SHED, _ShedType
from repro.runtime.space import ThreadSafeTupleSpace
from repro.tuples.model import Pattern, Tuple
from repro.tuples.serialization import (
    WireCodec,
    decode_pattern,
    decode_payload_binary,
    decode_tuple,
    encode_pattern,
    encode_payload_into,
    encode_tuple,
    ensure_codec_match,
)

if TYPE_CHECKING:
    from repro.core.config import TiamatConfig

Addr = PyTuple[str, int]

#: Frame kinds (the ``"k"`` payload key).
QUERY = "q"            #: probe a peer's space (rdp/inp)
RESPONSE = "r"         #: answer to a QUERY (hit/miss/shed)
ECHO = "e"             #: echo request (CLI smoke + loopback bench)
ECHO_REPLY = "er"      #: echo answer
BATCH = "b"            #: same-tick coalescing envelope
DISCOVER = "d"         #: multicast discovery probe
DISCOVER_ACK = "da"    #: unicast discovery answer

#: Frames coalesced into one datagram before the batch is force-flushed
#: (keeps envelopes comfortably under the UDP payload ceiling).
MAX_BATCH_FRAMES = 32


def multicast_group_for(space: str) -> PyTuple[str, int]:
    """Deterministic multicast (group, port) for a named space.

    Groups land in the organisation-local 239.192.0.0/14 block (RFC 2365)
    and ports in a fixed 30000-33999 window, both derived from a stable
    hash of the space name — every device that knows the space name joins
    the same group without coordination, the paper's discovery scheme.
    """
    digest = hashlib.sha256(space.encode("utf-8")).digest()
    b1, b2, b3 = digest[0] & 0x03, digest[1], digest[2]
    port = 30000 + int.from_bytes(digest[3:5], "big") % 4000
    return f"239.{192 + b1}.{b2}.{b3}", port


class BufferPool:
    """A bounded free-list of reusable ``bytearray`` frame buffers.

    ``acquire`` hands out an empty buffer (recycled when one is free,
    freshly allocated otherwise); ``release`` clears and returns it to
    the pool unless the pool is full.  Buffers the kernel has already
    copied out of (``sendto`` is synchronous) are safe to recycle
    immediately, which is what makes the encode path allocation-free in
    steady state.
    """

    __slots__ = ("capacity", "_free", "hits", "misses", "returned")

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._free: List[bytearray] = []
        self.hits = 0
        self.misses = 0
        self.returned = 0

    def acquire(self) -> bytearray:
        if self._free:
            self.hits += 1
            return self._free.pop()
        self.misses += 1
        return bytearray()

    def release(self, buf: bytearray) -> None:
        if len(self._free) < self.capacity:
            del buf[:]
            self._free.append(buf)
            self.returned += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "returned": self.returned, "free": len(self._free)}


# ---------------------------------------------------------------------------
# Frame codecs: TiamatConfig.wire_codec applied to aio datagrams
# ---------------------------------------------------------------------------
_TUPLE_KEYS = ("t",)
_PATTERN_KEYS = ("p",)


def _frame_to_jsonable(frame: dict) -> dict:
    out: dict = {}
    for key, value in frame.items():
        if isinstance(value, Tuple):
            out[key] = encode_tuple(value)
        elif isinstance(value, Pattern):
            out[key] = encode_pattern(value)
        elif key == "f":
            out[key] = [_frame_to_jsonable(sub) for sub in value]
        else:
            out[key] = value
    return out


def _frame_from_jsonable(frame: dict) -> dict:
    out: dict = {}
    for key, value in frame.items():
        if key in _TUPLE_KEYS:
            out[key] = decode_tuple(value)
        elif key in _PATTERN_KEYS:
            out[key] = decode_pattern(value)
        elif key == "f":
            out[key] = [_frame_from_jsonable(sub) for sub in value]
        else:
            out[key] = value
    return out


class _BinaryFrames:
    """Binary frame codec: payload dicts carry tuples/patterns natively."""

    name = "binary"

    @staticmethod
    def encode_into(buf: bytearray, frame: dict) -> None:
        encode_payload_into(buf, frame)

    @staticmethod
    def decode(data: Union[bytes, memoryview]) -> dict:
        return decode_payload_binary(data)


class _JsonFrames:
    """JSON frame codec: tuples/patterns ride in their tag-first forms."""

    name = "json"

    @staticmethod
    def encode_into(buf: bytearray, frame: dict) -> None:
        buf += json.dumps(_frame_to_jsonable(frame),
                          separators=(",", ":")).encode("utf-8")

    @staticmethod
    def decode(data: Union[bytes, memoryview]) -> dict:
        return _frame_from_jsonable(json.loads(bytes(data)))


class _AioProtocol(asyncio.DatagramProtocol):
    """Datagram endpoint: hands received frames to the owning node."""

    def __init__(self, node: "AioTiamatNode") -> None:
        self.node = node
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Addr) -> None:
        self.node._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.node.transport_errors += 1


class AioNodeRegistry:
    """A cluster of aio nodes: background event loop + visibility relation.

    Plays the :class:`~repro.runtime.node.ThreadedNodeRegistry` role —
    records which nodes exist and which pairs see each other — but the
    registry carries *addresses only*; every probe, answer and discovery
    exchange travels through the nodes' UDP sockets.  One event loop on a
    daemon thread drives every member node, so the synchronous facade
    (``node.rdp(...)`` from test or application threads) and the native
    ``async`` API (``await node.a_rdp(...)`` from loop code) coexist.

    ``loss_rate``/``loss_seed`` inject seeded, deterministic datagram
    loss at the send boundary — the chaos knob the retransmit tests and
    the T10-style smoke lean on.
    """

    def __init__(self, *, host: str = "127.0.0.1",
                 config: Optional["TiamatConfig"] = None,
                 codec: Union[str, WireCodec, None] = None,
                 loss_rate: float = 0.0, loss_seed: int = 0,
                 multicast: Optional[PyTuple[str, int]] = None) -> None:
        from repro.core.config import TiamatConfig
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.config = config if config is not None else TiamatConfig()
        self.codec = ensure_codec_match(self.config.wire_codec, codec,
                                        transport="cluster")
        self.frames = (_BinaryFrames if self.codec.name == "binary"
                       else _JsonFrames)
        self.host = host
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.frames_dropped = 0
        self.multicast = multicast
        self.obs = Observability(clock=time.monotonic, thread_safe=True)
        self._lock = threading.Lock()
        self._nodes: Dict[str, "AioTiamatNode"] = {}
        self._edges: set = set()
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="aio-registry", daemon=True)
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def submit(self, coro) -> "asyncio.Future":
        """Run a coroutine on the registry loop from any other thread."""
        if self._closed:
            coro.close()
            raise RuntimeError("registry is closed")
        if threading.current_thread() is self._thread:
            coro.close()
            raise RuntimeError(
                "the synchronous facade must not be called from the "
                "event-loop thread; use the async (a_*) API instead")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def lose_frame(self) -> bool:
        """Seeded loss injection: True means drop this datagram."""
        return self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate

    # -- membership and visibility (the threaded registry's contract) ----
    def register(self, node: "AioTiamatNode") -> None:
        with self._lock:
            self._nodes[node.name] = node

    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        if a == b:
            return
        edge = frozenset((a, b))
        with self._lock:
            if visible:
                self._edges.add(edge)
            else:
                self._edges.discard(edge)

    def visible_peers(self, name: str) -> List[PyTuple[str, Addr]]:
        """(name, address) of nodes visible from ``name``, sorted by name."""
        with self._lock:
            peers = sorted(
                other for edge in self._edges if name in edge
                for other in edge if other != name
            )
            return [(p, self._nodes[p].addr) for p in peers
                    if p in self._nodes]

    def visible_nodes(self, name: str) -> List["AioTiamatNode"]:
        return [self._nodes[p] for p, _ in self.visible_peers(name)]

    def all_nodes(self) -> List["AioTiamatNode"]:
        with self._lock:
            return [self._nodes[name] for name in sorted(self._nodes)]

    def stats(self) -> Dict[str, Any]:
        """Aggregated cluster wire counters (plus per-node breakdown)."""
        nodes = {node.name: node.stats() for node in self.all_nodes()}
        total = {key: sum(n[key] for n in nodes.values())
                 for key in ("frames_sent", "frames_received", "batches_sent",
                             "bytes_sent", "retransmits", "dedup_served",
                             "sheds")}
        total["frames_dropped"] = self.frames_dropped
        total["nodes"] = nodes
        return total

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close every node's socket and stop the event loop thread."""
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            for node in self.all_nodes():
                node._close_transports()

        fut = asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        fut.result(timeout=5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def __enter__(self) -> "AioNodeRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AioTiamatNode:
    """One aio node: a local space plus opportunistic ops over UDP.

    Synchronous methods (``out``/``rdp``/``inp``/``rd``/``in_``/``eval``)
    mirror :class:`~repro.runtime.node.ThreadedTiamatNode` and may be
    called from any thread except the event-loop thread; each has a
    native ``a_``-prefixed coroutine twin for asyncio applications.
    """

    #: How often blocking operations re-sample visibility and re-probe.
    POLL_INTERVAL = 0.005
    #: Cap on the per-peer backoff an origin applies after being shed.
    SHED_BACKOFF_MAX = 0.25
    #: Wall-clock budget for one peer probe (first send to giving up).
    PROBE_TIMEOUT = 1.0
    #: Completed query answers kept for idempotent retransmit replies.
    SERVED_CACHE = 512

    def __init__(self, registry: AioNodeRegistry, name: str, *,
                 max_concurrent_serves: Optional[int] = None,
                 port: int = 0) -> None:
        if max_concurrent_serves is not None and max_concurrent_serves < 1:
            raise ValueError("max_concurrent_serves must be >= 1 or None")
        self.registry = registry
        self.name = name
        self.space = ThreadSafeTupleSpace(name)
        self.max_concurrent_serves = max_concurrent_serves
        self._active_serves = 0
        self._peer_backoff: Dict[str, PyTuple[int, float]] = {}
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._served_cache: Dict[PyTuple[str, int], dict] = {}
        self._served_order: List[PyTuple[str, int]] = []
        self._send_queues: Dict[Addr, List[dict]] = {}
        self._flush_scheduled = False
        self._local_event: Optional[asyncio.Event] = None
        self.pool = BufferPool()
        # wire + op counters (cheap ints; the obs registry mirrors ops)
        self.frames_sent = 0
        self.frames_received = 0
        self.batches_sent = 0
        self.bytes_sent = 0
        self.retransmits = 0
        self.dedup_served = 0
        self.sheds = 0
        self.transport_errors = 0
        self.ops_started = 0
        self.ops_unsatisfied = 0
        self.force_shed = False  # test/bench hook: shed every probe
        self._protocol: Optional[_AioProtocol] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._sock: Optional[socket.socket] = None
        self._mcast_transport = None
        self._mcast_sock: Optional[socket.socket] = None
        self.addr: Addr = ("", 0)
        reg = registry.obs.registry
        self._ops_metric = reg.counter(
            "runtime_ops_total",
            help="Logical operations by node, operation, and outcome.",
            labels=("node", "op", "outcome"))
        self._serve_metric = reg.counter(
            "runtime_serve_total",
            help="Remote probes served or shed by each node.",
            labels=("node", "outcome"))
        registry.register(self)
        fut = asyncio.run_coroutine_threadsafe(self._a_start(port),
                                               registry.loop)
        fut.result(timeout=10.0)

    # ------------------------------------------------------------------
    # Endpoint lifecycle (runs on the loop)
    # ------------------------------------------------------------------
    async def _a_start(self, port: int) -> None:
        loop = asyncio.get_running_loop()
        self._local_event = asyncio.Event()
        # Bind the socket ourselves and hand it to asyncio: the transport's
        # get_extra_info("socket") is a TransportSocket proxy that forbids
        # sendto, and the zero-copy send path needs the real one.
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 20)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        sock.bind((self.registry.host, port))
        transport, protocol = await loop.create_datagram_endpoint(
            lambda: _AioProtocol(self), sock=sock)
        self._transport = transport
        self._protocol = protocol
        self._sock = sock
        self.addr = sock.getsockname()[:2]
        if self.registry.multicast is not None:
            self._join_multicast(loop)

    def _join_multicast(self, loop) -> None:
        """Join the cluster's discovery group (opt-in; see PROTOCOL §12)."""
        group, port = self.registry.multicast  # type: ignore[misc]
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):  # pragma: no branch
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        sock.bind(("", port))
        mreq = struct.pack("4s4s", socket.inet_aton(group),
                           socket.inet_aton(self.registry.host))
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
        sock.setblocking(False)
        self._mcast_sock = sock

        def _readable() -> None:
            try:
                data, addr = sock.recvfrom(65536)
            except (BlockingIOError, OSError):
                return
            self._on_datagram(data, addr)

        loop.add_reader(sock.fileno(), _readable)

    def _close_transports(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self._mcast_sock is not None:
            try:
                self.registry.loop.remove_reader(self._mcast_sock.fileno())
            except (OSError, ValueError):  # pragma: no cover
                pass
            self._mcast_sock.close()
            self._mcast_sock = None
        for fut in self._pending.values():
            if not fut.done():
                fut.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Send plane: per-peer queues, same-tick coalescing, pooled buffers
    # ------------------------------------------------------------------
    def _queue_frame(self, addr: Addr, frame: dict) -> None:
        queue = self._send_queues.setdefault(addr, [])
        queue.append(frame)
        if len(queue) >= MAX_BATCH_FRAMES:
            self._flush_to(addr, self._send_queues.pop(addr))
            return
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.registry.loop.call_soon(self._flush_all)

    def _flush_all(self) -> None:
        self._flush_scheduled = False
        queues, self._send_queues = self._send_queues, {}
        for addr, frames in queues.items():
            self._flush_to(addr, frames)

    def _flush_to(self, addr: Addr, frames: List[dict]) -> None:
        if self.registry.lose_frame():
            self.registry.frames_dropped += 1
            return
        if len(frames) == 1:
            frame = frames[0]
        else:
            frame = {"k": BATCH, "f": frames}
            self.batches_sent += 1
        buf = self.pool.acquire()
        try:
            self.registry.frames.encode_into(buf, frame)
            size = len(buf)
            sent = False
            if self._sock is not None:
                try:
                    self._sock.sendto(memoryview(buf)[:size], addr)
                    sent = True
                except (BlockingIOError, InterruptedError):
                    sent = False
                except OSError:
                    self.transport_errors += 1
                    sent = True  # unroutable: drop, like a lost datagram
            if not sent and self._transport is not None:
                # Kernel buffer full: fall back to asyncio's buffered path
                # (this one send costs a bytes copy; the pool is unharmed).
                self._transport.sendto(bytes(buf), addr)
            self.frames_sent += len(frames)
            self.bytes_sent += size
        finally:
            self.pool.release(buf)

    # ------------------------------------------------------------------
    # Receive plane
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr: Addr) -> None:
        try:
            frame = self.registry.frames.decode(data)
        except Exception:
            self.transport_errors += 1
            return
        self._dispatch(frame, addr)

    def _dispatch(self, frame: dict, addr: Addr) -> None:
        kind = frame.get("k")
        if kind == BATCH:
            for sub in frame.get("f", ()):
                if isinstance(sub, dict):
                    self._dispatch(sub, addr)
            return
        self.frames_received += 1
        if kind == QUERY:
            self._serve_query(frame, addr)
        elif kind in (RESPONSE, ECHO_REPLY):
            fut = self._pending.pop(frame.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(frame)
        elif kind == ECHO:
            self._queue_frame(addr, {"k": ECHO_REPLY, "id": frame.get("id"),
                                     "t": frame.get("t")})
        elif kind == DISCOVER:
            host, port = frame.get("h"), frame.get("pt")
            if isinstance(host, str) and isinstance(port, int):
                self._queue_frame((host, port),
                                  {"k": DISCOVER_ACK, "o": self.name,
                                   "h": self.addr[0], "pt": self.addr[1]})
        elif kind == DISCOVER_ACK:
            self._discovered(frame)
        # unknown kinds are ignored (forward compatibility)

    def _discovered(self, frame: dict) -> None:
        peers = getattr(self, "_discover_bucket", None)
        if peers is not None and isinstance(frame.get("o"), str):
            peers[frame["o"]] = (frame.get("h"), frame.get("pt"))

    # ------------------------------------------------------------------
    # Serving plane: how peers enter this node (admission + idempotency)
    # ------------------------------------------------------------------
    def _admit_serve(self) -> bool:
        if self.force_shed:
            return False
        if (self.max_concurrent_serves is not None
                and self._active_serves >= self.max_concurrent_serves):
            return False
        self._active_serves += 1
        return True

    def _serve_query(self, frame: dict, addr: Addr) -> None:
        origin = frame.get("o", "?")
        req_id = frame.get("id")
        key = (origin, req_id)
        cached = self._served_cache.get(key)
        if cached is not None:
            # Retransmitted destructive query whose hit we already
            # committed: replay the recorded answer so the take is
            # consumed exactly once even if every earlier copy of the
            # response was lost.
            self.dedup_served += 1
            self._queue_frame(addr, cached)
            return
        pattern = frame.get("p")
        if not self._admit_serve():
            self.sheds += 1
            self._serve_metric.labels(node=self.name, outcome="shed").inc()
            # Shed verdicts are *not* cached: the origin should retry
            # after backoff and find an admitted slot.
            self._queue_frame(addr, {"k": RESPONSE, "id": req_id,
                                     "st": "shed"})
            return
        try:
            if not isinstance(pattern, Pattern):
                response: dict = {"k": RESPONSE, "id": req_id, "st": "miss"}
            else:
                remove = frame.get("op") == "inp"
                found = (self.space.inp(pattern) if remove
                         else self.space.rdp(pattern))
                if found is None:
                    response = {"k": RESPONSE, "id": req_id, "st": "miss"}
                else:
                    response = {"k": RESPONSE, "id": req_id, "st": "hit",
                                "t": found}
        finally:
            self._active_serves -= 1
        self._serve_metric.labels(node=self.name, outcome="served").inc()
        # Only destructive hits are cached: they are the one irreversible
        # verdict.  Misses and reads are recomputed on retransmit, so a
        # blocking origin that reuses its request id across poll rounds
        # still sees tuples that arrive *after* an early miss.
        if response.get("st") == "hit" and frame.get("op") == "inp":
            self._remember_served(key, response)
        self._queue_frame(addr, response)

    def _remember_served(self, key: PyTuple[str, int], response: dict) -> None:
        if key[1] is None:
            return
        self._served_cache[key] = response
        self._served_order.append(key)
        if len(self._served_order) > self.SERVED_CACHE:
            evict = self._served_order.pop(0)
            self._served_cache.pop(evict, None)

    # ------------------------------------------------------------------
    # Request plane: retransmit until answered or out of budget
    # ------------------------------------------------------------------
    async def _request(self, addr: Addr, frame: dict,
                       budget: float) -> Optional[dict]:
        """Send ``frame`` and await its answer, retransmitting on a capped
        exponential schedule.  Returns the answer frame or ``None`` if the
        peer never answered within ``budget`` seconds."""
        loop = asyncio.get_running_loop()
        config = self.registry.config
        req_id = frame["id"]
        deadline = loop.time() + budget
        interval = config.retry_initial
        first = True
        while True:
            fut: asyncio.Future = loop.create_future()
            self._pending[req_id] = fut
            if not first:
                self.retransmits += 1
            first = False
            self._queue_frame(addr, frame)
            remaining = deadline - loop.time()
            if remaining <= 0:
                self._pending.pop(req_id, None)
                return None
            try:
                return await asyncio.wait_for(
                    fut, timeout=min(interval, remaining))
            except asyncio.TimeoutError:
                self._pending.pop(req_id, None)
                if loop.time() >= deadline:
                    return None
                interval = min(interval * config.retry_backoff,
                               config.retry_max_interval)

    async def _probe(self, peer: str, addr: Addr, pattern: Pattern,
                     remove: bool,
                     req_id: Optional[int] = None,
                     ) -> Union[Optional[Tuple], _ShedType]:
        """Probe one peer through its serving gate, honouring backoff.

        ``req_id`` lets a blocking operation reuse one id across its poll
        rounds: combined with the server's destructive-hit cache, a take
        whose answer was lost in flight is recovered on the next round
        instead of silently consuming the tuple into the void.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        streak, until = self._peer_backoff.get(peer, (0, 0.0))
        if now < until:
            return None
        frame = {"k": QUERY,
                 "id": next(self._req_ids) if req_id is None else req_id,
                 "op": "inp" if remove else "rdp",
                 "p": pattern, "o": self.name}
        answer = await self._request(addr, frame, budget=self.PROBE_TIMEOUT)
        if answer is None:
            return None
        if answer.get("st") == "shed":
            streak += 1
            delay = min(self.POLL_INTERVAL * (2.0 ** streak),
                        self.SHED_BACKOFF_MAX)
            self._peer_backoff[peer] = (streak, loop.time() + delay)
            return SHED
        if streak:
            self._peer_backoff.pop(peer, None)
        if answer.get("st") == "hit":
            result = answer.get("t")
            return result if isinstance(result, Tuple) else None
        return None

    # ------------------------------------------------------------------
    # The six operations: async core
    # ------------------------------------------------------------------
    def _count(self, op: str, outcome: str) -> None:
        self._ops_metric.labels(node=self.name, op=op, outcome=outcome).inc()

    def _notify_local(self) -> None:
        event = self._local_event
        if event is not None:
            event.set()

    async def a_out(self, tup: Tuple,
                    lease_duration: Optional[float] = None) -> None:
        """Deposit into the local space (default scope, section 2.2)."""
        self.ops_started += 1
        self.space.out(tup, lease_duration)
        self._count("out", "ok")
        self._notify_local()

    async def _a_poll(self, op: str, pattern: Pattern,
                      remove: bool) -> Optional[Tuple]:
        self.ops_started += 1
        local = self.space.inp(pattern) if remove else self.space.rdp(pattern)
        if local is not None:
            self._count(op, "hit")
            return local
        for peer, addr in self.registry.visible_peers(self.name):
            found = await self._probe(peer, addr, pattern, remove)
            if found is not None and found is not SHED:
                self._count(op, "hit")
                return found
        self._count(op, "miss")
        self.ops_unsatisfied += 1
        return None

    async def a_rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read over the current logical space."""
        return await self._a_poll("rdp", pattern, remove=False)

    async def a_inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take over the current logical space."""
        return await self._a_poll("inp", pattern, remove=True)

    async def _a_blocking(self, op: str, pattern: Pattern, remove: bool,
                          timeout: float) -> Optional[Tuple]:
        self.ops_started += 1
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        event = self._local_event
        req_ids: Dict[str, int] = {}
        while True:
            local = (self.space.inp(pattern) if remove
                     else self.space.rdp(pattern))
            if local is not None:
                self._count(op, "hit")
                return local
            for peer, addr in self.registry.visible_peers(self.name):
                if peer not in req_ids:
                    req_ids[peer] = next(self._req_ids)
                found = await self._probe(peer, addr, pattern, remove,
                                          req_id=req_ids[peer])
                if found is not None and found is not SHED:
                    self._count(op, "hit")
                    return found
            remaining = deadline - loop.time()
            if remaining <= 0:
                self._count(op, "miss")
                self.ops_unsatisfied += 1
                return None
            if event is not None:
                event.clear()
                try:
                    await asyncio.wait_for(
                        event.wait(),
                        timeout=min(self.POLL_INTERVAL, remaining))
                except asyncio.TimeoutError:
                    pass

    async def a_rd(self, pattern: Pattern,
                   timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking read: polls the logical space until match or timeout."""
        return await self._a_blocking("rd", pattern, remove=False,
                                      timeout=timeout)

    async def a_in(self, pattern: Pattern,
                   timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking take: polls the logical space until match or timeout."""
        return await self._a_blocking("in", pattern, remove=True,
                                      timeout=timeout)

    async def a_eval(self, fn, *args,
                     lease_duration: Optional[float] = None) -> Tuple:
        """Active tuple: run ``fn(*args)`` on a worker, deposit the result."""
        self.ops_started += 1
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, lambda: fn(*args))
        if not isinstance(result, Tuple):
            raise TypeError(f"eval returned {result!r}, not a Tuple")
        self.space.out(result, lease_duration)
        self._count("eval", "ok")
        self._notify_local()
        return result

    async def a_echo(self, addr: Addr, tup: Tuple,
                     budget: float = 1.0) -> Optional[Tuple]:
        """Round-trip ``tup`` off a peer; the CLI smoke and bench core."""
        frame = {"k": ECHO, "id": next(self._req_ids), "t": tup}
        answer = await self._request(addr, frame, budget=budget)
        if answer is None:
            return None
        result = answer.get("t")
        return result if isinstance(result, Tuple) else None

    async def a_discover(self, window: float = 0.1) -> Dict[str, Addr]:
        """Multicast DISCOVER and collect unicast answers for ``window``."""
        if self.registry.multicast is None:
            raise RuntimeError("registry was built without multicast=...")
        bucket: Dict[str, Addr] = {}
        self._discover_bucket = bucket
        try:
            self._queue_frame(self.registry.multicast,
                              {"k": DISCOVER, "o": self.name,
                               "h": self.addr[0], "pt": self.addr[1]})
            await asyncio.sleep(window)
        finally:
            del self._discover_bucket
        return {name: (host, port) for name, (host, port) in bucket.items()
                if isinstance(host, str) and isinstance(port, int)}

    # ------------------------------------------------------------------
    # Synchronous facade (mirrors ThreadedTiamatNode)
    # ------------------------------------------------------------------
    def out(self, tup: Tuple, lease_duration: Optional[float] = None) -> None:
        """Deposit into the local space (thread-safe; wakes loop waiters)."""
        self.ops_started += 1
        self.space.out(tup, lease_duration)
        self._count("out", "ok")
        try:
            self.registry.loop.call_soon_threadsafe(self._notify_local)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read over the current logical space."""
        return self.registry.submit(self.a_rdp(pattern)).result()

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take over the current logical space."""
        return self.registry.submit(self.a_inp(pattern)).result()

    def rd(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking read: polls the logical space until match or timeout."""
        return self.registry.submit(
            self.a_rd(pattern, timeout=timeout)).result()

    def in_(self, pattern: Pattern, timeout: float = 5.0) -> Optional[Tuple]:
        """Blocking take: polls the logical space until match or timeout."""
        return self.registry.submit(
            self.a_in(pattern, timeout=timeout)).result()

    def eval(self, fn, *args, lease_duration: Optional[float] = None):
        """Run ``fn(*args)`` as an active tuple; returns a waitable future."""
        return self.registry.submit(
            self.a_eval(fn, *args, lease_duration=lease_duration))

    def echo(self, addr: Addr, tup: Tuple,
             budget: float = 1.0) -> Optional[Tuple]:
        """Synchronous :meth:`a_echo`."""
        return self.registry.submit(self.a_echo(addr, tup,
                                                budget=budget)).result()

    def discover(self, window: float = 0.1) -> Dict[str, Addr]:
        """Synchronous :meth:`a_discover`."""
        return self.registry.submit(self.a_discover(window)).result()

    @property
    def active_serves(self) -> int:
        """Remote probes currently being served by this node."""
        return self._active_serves

    def stats(self) -> Dict[str, int]:
        """Wire and op counters for this node."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "batches_sent": self.batches_sent,
            "bytes_sent": self.bytes_sent,
            "retransmits": self.retransmits,
            "dedup_served": self.dedup_served,
            "sheds": self.sheds,
            "transport_errors": self.transport_errors,
            "ops_started": self.ops_started,
            "ops_unsatisfied": self.ops_unsatisfied,
            "pool": self.pool.stats(),  # type: ignore[dict-item]
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AioTiamatNode {self.name} @{self.addr[0]}:{self.addr[1]}>"
