"""Deterministic protocol model checker and differential conformance harness.

``repro.check`` drives the deterministic sim kernel through many seeded
schedules — randomized same-instant tiebreaks, fault-plan perturbations,
visibility churn — while passive invariant oracles watch every run:

* exactly-once consumption per tuple (no double-``in``);
* no ghost reads after remove;
* lease-accounting conservation (granted ⊇ active ∪ expired ∪ revoked);
* admission-refusal vocabulary closure;
* reliability no-duplicate dispatch for critical frames.

On a violation it *shrinks*: bisects the schedule to a minimal reproducing
event prefix and emits a replayable :class:`~repro.check.shrink.CheckReport`.
A second front (:mod:`repro.check.differential`) drives the same scripted
workloads through both the sim and threaded runtimes and diffs observable
outcomes.

Import discipline
-----------------
Hot-path modules (store, space, serving, leasing, …) import only
:mod:`repro.check.probes`, which is dependency-free.  Everything else in
this package is **lazy-loaded** via module ``__getattr__`` so the probe
import never drags the checker machinery (and its ``repro.core`` imports)
into production paths — no import cycle, no startup cost.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.check import probes  # dependency-free; safe to load eagerly

__all__ = [
    "probes",
    "oracles",
    "explorer",
    "shrink",
    "differential",
    "InvariantMonitor",
    "Violation",
    "Explorer",
    "ExploreResult",
    "CheckReport",
    "shrink_violation",
    "run_differential",
]

_LAZY_MODULES = {"oracles", "explorer", "shrink", "differential"}
_LAZY_ATTRS = {
    "InvariantMonitor": ("repro.check.oracles", "InvariantMonitor"),
    "Violation": ("repro.check.oracles", "Violation"),
    "Explorer": ("repro.check.explorer", "Explorer"),
    "ExploreResult": ("repro.check.explorer", "ExploreResult"),
    "CheckReport": ("repro.check.shrink", "CheckReport"),
    "shrink_violation": ("repro.check.shrink", "shrink_violation"),
    "run_differential": ("repro.check.differential", "run_differential"),
}


def __getattr__(name: str) -> Any:
    if name in _LAZY_MODULES:
        return importlib.import_module(f"repro.check.{name}")
    target = _LAZY_ATTRS.get(name)
    if target is not None:
        module = importlib.import_module(target[0])
        return getattr(module, target[1])
    raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
