"""Differential conformance: all three runtimes must agree.

The repository's central claim about its execution substrates is that
they implement the *same* logical-tuple-space semantics: the deterministic
simulation (``repro.core`` over ``repro.sim``), the threaded runtime
(``repro.runtime.node`` over real locks and threads), and the asyncio UDP
runtime (``repro.runtime.aio`` over real datagram sockets on loopback).
This module makes the claim testable: one seeded :class:`ScriptedWorkload`
— a sequential program of ``out``/``in``/``rd``/``inp``/``rdp``/``eval``
steps over a small clique of nodes — is driven through **every** runtime,
and the observable outcomes are diffed:

* the multiset of tuples destructively consumed (with the op and outcome
  of every step), and
* the final store contents of every node.

Workloads are constructed so agreement is *required*, not probabilistic:

* every deposited tuple is unique (no ambiguity about which copy a
  destructive take removes);
* destructive and read steps use fully-ground (all-actual) patterns
  naming one specific live tuple, so non-deterministic match selection
  never picks differently between runtimes;
* steps run strictly sequentially — each completes before the next
  starts — so there are no cross-step races to resolve;
* deposits use leases far longer than the run, so nothing expires.

Any divergence is therefore a genuine semantic difference between the
runtimes, reported step-by-step in :class:`DifferentialResult`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.rng import RngStream
from repro.tuples.model import Pattern, Tuple

#: First field of every workload tuple, so final-store comparison can
#: ignore any infrastructure tuples a runtime might keep in its spaces.
WORKLOAD_TAG = "wl"
EVAL_TAG = "wl_evald"
_NODES = ("n0", "n1", "n2")
_LONG_LEASE = 3600.0


def _eval_square(x: int) -> Tuple:
    """The workload's eval body (top-level so both runtimes can run it)."""
    return Tuple(EVAL_TAG, x, x * x)


class Step:
    """One scripted workload step."""

    __slots__ = ("kind", "node", "tup")

    def __init__(self, kind: str, node: str, tup: Tuple) -> None:
        self.kind = kind    # out | inp | in | rdp | rd | eval
        self.node = node
        self.tup = tup      # the deposited or targeted tuple

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Step {self.kind} @{self.node} {self.tup!r}>"


class ScriptedWorkload:
    """A seeded, runtime-agnostic sequential workload.

    Two flavors share the determinism rules (unique tuples, ground
    patterns, strict sequencing):

    * ``classic`` — the original mixed op soup over random nodes.
    * ``agents`` — the blackboard coordination shapes of
      :mod:`repro.apps.agents`: bid/claim (a ground destructive take of a
      specific offer), wip markers, token-gated completions, broadcast
      question/answer collection, and a vote/rd-quorum/decision ballot —
      seeded-interleaved across tasks so claim traffic from different
      tasks overlaps, while per-task ordering is preserved.
    """

    def __init__(self, seed: int, steps: int = 40,
                 nodes: tuple = _NODES, flavor: str = "classic") -> None:
        if flavor not in ("classic", "agents"):
            raise ValueError(f"unknown workload flavor {flavor!r}")
        self.seed = seed
        self.nodes = nodes
        self.flavor = flavor
        self.steps: List[Step] = []
        rng = RngStream(seed, name=f"differential/{flavor}")
        if flavor == "agents":
            self._build_agents(rng, steps)
        else:
            self._build_classic(rng, steps)

    def _build_classic(self, rng, steps: int) -> None:
        nodes = self.nodes
        seed = self.seed
        alive: List[Tuple] = []
        counter = 0
        eval_counter = 0
        for _ in range(steps):
            roll = rng.random()
            node = rng.choice(list(nodes))
            if roll < 0.40 or not alive:
                tup = Tuple(WORKLOAD_TAG, counter, f"s{seed}")
                counter += 1
                self.steps.append(Step("out", node, tup))
                alive.append(tup)
            elif roll < 0.55:
                tup = rng.choice(alive)
                alive.remove(tup)
                self.steps.append(Step("inp", node, tup))
            elif roll < 0.70:
                tup = rng.choice(alive)
                alive.remove(tup)
                self.steps.append(Step("in", node, tup))
            elif roll < 0.80:
                self.steps.append(Step("rdp", node, rng.choice(alive)))
            elif roll < 0.90:
                self.steps.append(Step("rd", node, rng.choice(alive)))
            else:
                tup = Tuple(EVAL_TAG, eval_counter,
                            eval_counter * eval_counter)
                eval_counter += 1
                self.steps.append(Step("eval", node, tup))

    def _build_agents(self, rng, steps: int) -> None:
        """Bid/claim/answer programs, seeded-interleaved across tasks."""
        nodes = list(self.nodes)
        board = nodes[0]
        agents = nodes[1:] or nodes
        seed = self.seed
        programs: List[List[Step]] = []
        tasks = max(2, (steps - 12) // 9)
        for i in range(tasks):
            agent = rng.choice(agents)
            watchers = [n for n in nodes if n != agent] or nodes
            watcher = rng.choice(watchers)
            task = Tuple(WORKLOAD_TAG, "task", i, f"s{seed}")
            tok = Tuple(WORKLOAD_TAG, "tok", i)
            wip = Tuple(WORKLOAD_TAG, "wip", i, agent)
            done = Tuple(WORKLOAD_TAG, "done", i, agent)
            programs.append([
                Step("out", board, task), Step("out", board, tok),
                Step("inp", agent, task),    # the claim: a ground take
                Step("out", agent, wip),
                Step("rd", watcher, wip),    # a peer witnesses the claim
                Step("inp", agent, wip),
                Step("inp", agent, tok),     # exactly-once completion gate
                Step("out", agent, done),
                Step("inp", board, done),    # the board collects the record
            ])
        # One broadcast question: everyone answers, the board injects.
        question = Tuple(WORKLOAD_TAG, "q", 0, "status")
        q_prog = [Step("out", board, question)]
        for agent in agents:
            answer = Tuple(WORKLOAD_TAG, "ans", 0, agent)
            q_prog += [Step("rd", agent, question),
                       Step("out", agent, answer),
                       Step("inp", board, answer)]
        programs.append(q_prog)
        # One ballot: votes out, rd-quorum tally, decision token, verdict.
        ballot_q = Tuple(WORKLOAD_TAG, "avq", 0, "alpha,beta")
        ballot_tok = Tuple(WORKLOAD_TAG, "adtok", 0)
        ballot = [Step("out", board, ballot_q),
                  Step("out", board, ballot_tok)]
        votes: List[Tuple] = []
        for idx, agent in enumerate(agents):
            vote = Tuple(WORKLOAD_TAG, "vote", 0, agent,
                         ("alpha", "beta")[idx % 2])
            ballot += [Step("rd", agent, ballot_q),
                       Step("out", agent, vote)]
            votes.append(vote)
        tallier = agents[0]
        for vote in votes:
            ballot.append(Step("rdp", tallier, vote))
        ballot += [Step("inp", tallier, ballot_tok),
                   Step("out", tallier,
                        Tuple(WORKLOAD_TAG, "decision", 0, "alpha"))]
        programs.append(ballot)
        # Seeded adversarial interleaving: per-program order is preserved
        # (so every ground pattern targets a live tuple), cross-program
        # order is the rng's pick — claim traffic overlaps across tasks.
        while programs:
            pick = rng.randint(0, len(programs) - 1)
            self.steps.append(programs[pick].pop(0))
            if not programs[pick]:
                programs.pop(pick)


class RuntimeTranscript:
    """What one runtime observably did with the workload."""

    def __init__(self, runtime: str) -> None:
        self.runtime = runtime
        #: (step index, kind, node, consumed tuple) per destructive step.
        self.consumed: List[tuple] = []
        #: (step index, kind, node, observed tuple) per read step.
        self.observed: List[tuple] = []
        #: node -> sorted list of workload tuples left in its store.
        self.final: dict = {}

    def consumed_multiset(self) -> dict:
        counts: dict = {}
        for _, _, _, tup in self.consumed:
            counts[tup] = counts.get(tup, 0) + 1
        return counts


def _is_workload_tuple(tup: Tuple) -> bool:
    first = tup.fields[0]
    return first in (WORKLOAD_TAG, EVAL_TAG)


def _final_snapshot(snapshots: dict) -> dict:
    return {
        node: sorted((t for t in tuples if _is_workload_tuple(t)),
                     key=repr)
        for node, tuples in snapshots.items()
    }


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_sim(workload: ScriptedWorkload) -> RuntimeTranscript:
    """Drive the workload through the deterministic simulation."""
    from repro.core.instance import TiamatInstance
    from repro.leasing import LeaseTerms, SimpleLeaseRequester
    from repro.net.network import Network, default_latency
    from repro.net.visibility import VisibilityGraph
    from repro.sim.kernel import Simulator

    transcript = RuntimeTranscript("sim")
    sim = Simulator(seed=workload.seed)
    vis = VisibilityGraph()
    net = Network(sim, visibility=vis,
                  latency_factory=default_latency(per_byte=0.0))
    insts = {name: TiamatInstance(sim, net, name)
             for name in workload.nodes}
    vis.connect_clique(workload.nodes)
    requester = SimpleLeaseRequester(LeaseTerms(duration=_LONG_LEASE))
    errors: List[str] = []

    def driver():
        for index, step in enumerate(workload.steps):
            inst = insts[step.node]
            if step.kind == "out":
                inst.out(step.tup, requester=requester)
                continue
            if step.kind == "eval":
                task = inst.eval(_eval_square, step.tup.fields[1],
                                 requester=requester)
                result = yield task.event
                if result != step.tup:
                    errors.append(f"step {index}: eval produced {result!r}, "
                                  f"expected {step.tup!r}")
                continue
            pattern = Pattern.for_tuple(step.tup)
            op = getattr(inst, "in_" if step.kind == "in" else step.kind)(
                pattern, requester=requester)
            result = yield op.event
            if step.kind in ("inp", "in"):
                transcript.consumed.append(
                    (index, step.kind, step.node, result))
            else:
                transcript.observed.append(
                    (index, step.kind, step.node, result))
            if result != step.tup:
                errors.append(f"step {index}: {step.kind} @{step.node} got "
                              f"{result!r}, expected {step.tup!r}")

    sim.spawn(driver())
    sim.run(until=120.0)
    if errors:
        raise AssertionError("sim driver mismatches: " + "; ".join(errors))
    transcript.final = _final_snapshot(
        {name: inst.space.snapshot() for name, inst in insts.items()})
    return transcript


def run_threaded(workload: ScriptedWorkload,
                 timeout: float = 10.0) -> RuntimeTranscript:
    """Drive the workload through the threaded runtime (real threads)."""
    from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode

    transcript = RuntimeTranscript("threaded")
    registry = ThreadedNodeRegistry()
    nodes = {name: ThreadedTiamatNode(registry, name)
             for name in workload.nodes}
    names = list(workload.nodes)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            registry.set_visible(a, b, True)
    errors: List[str] = []
    for index, step in enumerate(workload.steps):
        node = nodes[step.node]
        if step.kind == "out":
            node.out(step.tup, lease_duration=_LONG_LEASE)
            continue
        if step.kind == "eval":
            thread = node.eval(_eval_square, step.tup.fields[1],
                               lease_duration=_LONG_LEASE)
            thread.join(timeout)
            if thread.is_alive():
                errors.append(f"step {index}: eval did not finish")
            continue
        pattern = Pattern.for_tuple(step.tup)
        if step.kind in ("in", "rd"):
            result = getattr(node, "in_" if step.kind == "in" else "rd")(
                pattern, timeout=timeout)
        else:
            result = getattr(node, step.kind)(pattern)
        if step.kind in ("inp", "in"):
            transcript.consumed.append((index, step.kind, step.node, result))
        else:
            transcript.observed.append((index, step.kind, step.node, result))
        if result != step.tup:
            errors.append(f"step {index}: {step.kind} @{step.node} got "
                          f"{result!r}, expected {step.tup!r}")
    if errors:
        raise AssertionError("threaded driver mismatches: "
                             + "; ".join(errors))
    transcript.final = _final_snapshot(
        {name: node.space.snapshot() for name, node in nodes.items()})
    return transcript


def run_aio(workload: ScriptedWorkload,
            timeout: float = 10.0) -> RuntimeTranscript:
    """Drive the workload through the asyncio UDP runtime (loopback).

    Nodes bind ephemeral ports on 127.0.0.1, so the run is CI-safe: no
    fixed ports, no off-host traffic.  The driver is the threaded one's
    shape — strictly sequential synchronous calls against the facade —
    while every inter-node probe underneath travels as a real datagram.
    """
    from repro.runtime.aio import AioNodeRegistry, AioTiamatNode

    transcript = RuntimeTranscript("aio")
    errors: List[str] = []
    with AioNodeRegistry() as registry:
        nodes = {name: AioTiamatNode(registry, name)
                 for name in workload.nodes}
        names = list(workload.nodes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                registry.set_visible(a, b, True)
        for index, step in enumerate(workload.steps):
            node = nodes[step.node]
            if step.kind == "out":
                node.out(step.tup, lease_duration=_LONG_LEASE)
                continue
            if step.kind == "eval":
                future = node.eval(_eval_square, step.tup.fields[1],
                                   lease_duration=_LONG_LEASE)
                try:
                    future.result(timeout)
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(f"step {index}: eval failed: {exc!r}")
                continue
            pattern = Pattern.for_tuple(step.tup)
            if step.kind in ("in", "rd"):
                result = getattr(node, "in_" if step.kind == "in" else "rd")(
                    pattern, timeout=timeout)
            else:
                result = getattr(node, step.kind)(pattern)
            if step.kind in ("inp", "in"):
                transcript.consumed.append(
                    (index, step.kind, step.node, result))
            else:
                transcript.observed.append(
                    (index, step.kind, step.node, result))
            if result != step.tup:
                errors.append(f"step {index}: {step.kind} @{step.node} got "
                              f"{result!r}, expected {step.tup!r}")
        if errors:
            raise AssertionError("aio driver mismatches: "
                                 + "; ".join(errors))
        transcript.final = _final_snapshot(
            {name: node.space.snapshot() for name, node in nodes.items()})
    return transcript


#: Runtime name -> driver, in canonical comparison order.
RUNTIME_DRIVERS = {
    "sim": run_sim,
    "threaded": run_threaded,
    "aio": run_aio,
}


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
class DifferentialResult:
    """Outcome of one N-way conformance run (sim is the reference)."""

    def __init__(self, seed: int, sim: RuntimeTranscript,
                 *others: RuntimeTranscript) -> None:
        self.seed = seed
        self.sim = sim
        self.transcripts = {"sim": sim}
        for transcript in others:
            self.transcripts[transcript.runtime] = transcript
        self.mismatches: List[str] = []
        for transcript in others:
            self._diff(transcript)

    @property
    def threaded(self) -> Optional[RuntimeTranscript]:
        """The threaded transcript (kept for the historical 2-way API)."""
        return self.transcripts.get("threaded")

    @property
    def aio(self) -> Optional[RuntimeTranscript]:
        return self.transcripts.get("aio")

    def _diff(self, other: RuntimeTranscript) -> None:
        name = other.runtime
        if self.sim.consumed_multiset() != other.consumed_multiset():
            self.mismatches.append(
                f"consumed multisets differ: sim={self.sim.consumed_multiset()} "
                f"{name}={other.consumed_multiset()}")
        if self.sim.consumed != other.consumed:
            self.mismatches.append(
                f"per-step consumption transcripts differ (sim vs {name})")
        if self.sim.observed != other.observed:
            self.mismatches.append(
                f"per-step read transcripts differ (sim vs {name})")
        if self.sim.final != other.final:
            self.mismatches.append(
                f"final store contents differ: sim={self.sim.final} "
                f"{name}={other.final}")

    @property
    def agree(self) -> bool:
        return not self.mismatches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "agree" if self.agree else f"{len(self.mismatches)} diffs"
        runtimes = "/".join(self.transcripts)
        return f"<DifferentialResult seed={self.seed} {runtimes} {verdict}>"


def run_differential(seed: int, steps: int = 40,
                     workload: Optional[ScriptedWorkload] = None,
                     runtimes: tuple = ("sim", "threaded"),
                     flavor: str = "classic") -> DifferentialResult:
    """Run one scripted workload through the named runtimes and diff.

    ``runtimes`` selects from :data:`RUNTIME_DRIVERS`; the sim reference
    always runs (and runs first), whether named or not.  The default
    stays the historical sim-vs-threaded pair; pass
    ``("sim", "threaded", "aio")`` for the full three-way check.
    ``flavor`` picks the workload generator (``classic`` or ``agents``).
    """
    workload = workload if workload is not None else ScriptedWorkload(
        seed, steps=steps, flavor=flavor)
    unknown = [r for r in runtimes if r not in RUNTIME_DRIVERS]
    if unknown:
        raise ValueError(f"unknown runtimes {unknown!r}: expected a subset "
                         f"of {tuple(RUNTIME_DRIVERS)}")
    sim_transcript = run_sim(workload)
    others = [RUNTIME_DRIVERS[name](workload)
              for name in runtimes if name != "sim"]
    return DifferentialResult(workload.seed, sim_transcript, *others)
