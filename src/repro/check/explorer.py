"""Schedule exploration: drive the sim kernel through adversarial runs.

One *schedule* is a complete deterministic world — instances, network,
drivers — built from a ``(template, seed, perturbations)`` triple and run
to a horizon under an installed :class:`~repro.check.oracles.InvariantMonitor`.
Exploration sweeps seeds (and templates) looking for any schedule whose
probe stream breaches an invariant.

Three perturbation layers, each independently switchable (the shrinker
ablates them to find which one a violation actually needs):

``tiebreak``
    Randomized same-instant event ordering via the kernel's
    :meth:`~repro.sim.kernel.Simulator.set_tiebreak` hook — turns FIFO
    ties (delivery vs. expiry, ack vs. retransmit) into explored races.
``faults``
    A :class:`~repro.net.faults.FaultPlan` of i.i.d. loss, duplication and
    bounded reordering on every frame.
``churn``
    Scheduled visibility-edge flips and node kill/revive during the run.

Determinism note: exploration worlds use a **size-independent** latency
model (``per_byte=0``).  Operation/lease identifiers come from process-wide
counters, so their wire size varies between runs in one process; with
size-priced latency that would shift delivery times and make replays
diverge.  With flat per-frame pricing every replay of ``(template, seed,
perturb, max_events)`` is bit-identical — the property shrinking rests on.
"""

from __future__ import annotations

import hashlib
import os
import time as _time
from typing import Callable, Dict, List, Optional

from repro.check.oracles import InvariantMonitor, Violation
from repro.core.config import TiamatConfig
from repro.core.instance import TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net.churn import ChurnInjector
from repro.net.faults import DuplicateFrames, FaultPlan, RandomLoss, ReorderFrames
from repro.net.network import Network, default_latency
from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator
from repro.tuples import Pattern, Tuple


class Perturbations:
    """Which adversarial layers are switched on for a run."""

    __slots__ = ("tiebreak", "faults", "churn")

    LAYERS = ("tiebreak", "faults", "churn")

    def __init__(self, tiebreak: bool = True, faults: bool = True,
                 churn: bool = True) -> None:
        self.tiebreak = tiebreak
        self.faults = faults
        self.churn = churn

    def without(self, layer: str) -> "Perturbations":
        """A copy with one layer switched off."""
        kwargs = {name: getattr(self, name) for name in self.LAYERS}
        kwargs[layer] = False
        return Perturbations(**kwargs)

    def enabled(self) -> List[str]:
        return [name for name in self.LAYERS if getattr(self, name)]

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.LAYERS}

    @classmethod
    def from_dict(cls, data: dict) -> "Perturbations":
        return cls(**{name: bool(data.get(name, False))
                      for name in cls.LAYERS})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Perturbations {'+'.join(self.enabled()) or 'none'}>"


class RunOutcome:
    """Everything one explored schedule produced."""

    __slots__ = ("template", "seed", "perturb", "violations", "events",
                 "schedule_hash", "horizon", "probe_events", "tracer")

    def __init__(self, template: str, seed: int, perturb: Perturbations,
                 violations: List[Violation], events: int,
                 schedule_hash: str, horizon: float, probe_events: int,
                 tracer=None) -> None:
        self.template = template
        self.seed = seed
        self.perturb = perturb
        self.violations = violations
        self.events = events
        self.schedule_hash = schedule_hash
        self.horizon = horizon
        self.probe_events = probe_events
        self.tracer = tracer

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "clean" if self.clean else f"{len(self.violations)} violation(s)"
        return (f"<RunOutcome {self.template} seed={self.seed} "
                f"events={self.events} {state}>")


# ----------------------------------------------------------------------
# Scenario templates
# ----------------------------------------------------------------------
#: Registered template name -> builder.  A builder wires instances and
#: driver processes into the simulator and returns (instances, horizon).
TEMPLATES: Dict[str, Callable] = {}


def template(name: str):
    """Decorator registering a scenario builder under ``name``."""

    def register(builder):
        TEMPLATES[name] = builder
        return builder

    return register


def _terms(duration: float) -> SimpleLeaseRequester:
    return SimpleLeaseRequester(LeaseTerms(duration=duration))


@template("contended_take")
def build_contended_take(sim: Simulator, net: Network,
                         vis: VisibilityGraph, rng,
                         perturb: "Perturbations") -> tuple:
    """Three instances racing destructive takes over one stream of jobs.

    Front-loads every canary-sensitive shape in the first handful of
    events: two same-node blocked ``in``\\ s satisfied by one deposit
    (double-take bait), a local consume immediately re-probed (ghost
    bait), and an early probe whose lease ends at once (lease-accounting
    bait); then keeps the claim protocol busy with cross-node contention.
    """
    names = ["a", "b", "c"]
    insts = [TiamatInstance(sim, net, n) for n in names]
    vis.connect_clique(names)
    a, b, c = insts
    jobs = Pattern("job", int)

    def driver_a():
        # Two local blocked takes contending for the same first deposit.
        op1 = a.in_(jobs, requester=_terms(2.0))
        op2 = a.in_(jobs, requester=_terms(2.0))
        yield sim.timeout(0.001)
        a.out(Tuple("job", 0))
        # Local consume-then-reprobe (a ghost read surfaces immediately).
        a.out(Tuple("seen", 1))
        take = a.inp(Pattern("seen", int))
        yield take.event
        probe = a.rdp(Pattern("seen", int))
        yield probe.event
        yield op1.event
        yield op2.event
        # Ongoing contention for the cross-node takers.
        for i in range(1, 1 + 4 + rng.randint(0, 3)):
            yield sim.timeout(0.02 + rng.random() * 0.05)
            a.out(Tuple("job", i))

    def taker(inst, jitter):
        yield sim.timeout(0.002 + jitter)
        for _ in range(3):
            op = inst.in_(jobs, requester=_terms(0.4 + rng.random() * 0.4))
            yield op.event
            yield sim.timeout(rng.random() * 0.02)

    sim.spawn(driver_a())
    sim.spawn(taker(b, 0.0))
    sim.spawn(taker(c, rng.random() * 0.01))
    return insts, 3.0


@template("churn_union")
def build_churn_union(sim: Simulator, net: Network,
                      vis: VisibilityGraph, rng,
                      perturb: "Perturbations") -> tuple:
    """Four instances on a flapping chain: the union space under churn.

    Deposits land at both ends of an a–b–c–d chain while the middle
    nodes probe and take across it; edges flip and nodes crash/revive on
    a seeded timetable, so operations race visibility transitions.
    """
    names = ["a", "b", "c", "d"]
    insts = [TiamatInstance(sim, net, n) for n in names]
    for left, right in zip(names, names[1:]):
        vis.set_visible(left, right, True)
    a, b, c, d = insts
    churn = ChurnInjector(sim, vis, rng=sim.rng("check/churn"))

    def depositor(inst, tag, count):
        for i in range(count):
            yield sim.timeout(rng.random() * 0.2)
            try:
                inst.out(Tuple(tag, i))
            except Exception:
                pass  # lease refused under churn pressure: allowed

    def seeker(inst, tag):
        yield sim.timeout(0.01 + rng.random() * 0.05)
        for _ in range(3):
            op = inst.in_(Pattern(tag, int),
                          requester=_terms(0.3 + rng.random() * 0.5))
            yield op.event
            probe = inst.rdp(Pattern(tag, int), requester=_terms(0.3))
            yield probe.event
            yield sim.timeout(rng.random() * 0.05)

    sim.spawn(depositor(a, "west", 4))
    sim.spawn(depositor(d, "east", 4))
    sim.spawn(seeker(b, "east"))
    sim.spawn(seeker(c, "west"))
    # Seeded visibility churn: edge flaps plus one node crash/revive.
    # The draws happen regardless of the layer switch so ablating churn
    # keeps every other stream's randomness aligned.
    flips = []
    for _ in range(6):
        at = 0.05 + rng.random() * 1.5
        left, right = ("b", "c") if rng.random() < 0.5 else ("a", "b")
        up = rng.random() < 0.5
        flips.append((at, left, right, up))
    victim = rng.choice(["b", "c"])
    down_at = 0.2 + rng.random() * 0.8
    up_at = down_at + 0.2 + rng.random() * 0.4
    if perturb.churn:
        for at, left, right, up in flips:
            sim.schedule_at(at, vis.set_visible, left, right, up)
        churn.kill_at(victim, down_at)
        churn.revive_at(victim, up_at)
    return insts, 3.0


@template("lease_storm")
def build_lease_storm(sim: Simulator, net: Network,
                      vis: VisibilityGraph, rng,
                      perturb: "Perturbations") -> tuple:
    """Short leases, tight storage, admission shedding: refusal weather.

    One overloaded server with admission control on and one worker,
    hammered by two clients with sub-second leases; deposits squeeze a
    small storage budget so lease grant/expiry/refusal churns constantly —
    the lease-conservation and refusal-vocabulary oracles' home turf.
    """
    server_cfg = TiamatConfig(serve_cost=0.05, serve_workers=1,
                              admission_enabled=True,
                              admission_queue_bound=2)
    insts = [
        TiamatInstance(sim, net, "srv", config=server_cfg,
                       storage_capacity=160, thread_capacity=2),
        TiamatInstance(sim, net, "c1"),
        TiamatInstance(sim, net, "c2"),
    ]
    vis.connect_clique(["srv", "c1", "c2"])
    srv, c1, c2 = insts

    def feeder():
        for i in range(6):
            try:
                srv.out(Tuple("stock", i), requester=_terms(0.3))
            except Exception:
                pass  # storage refusal: part of the weather
            yield sim.timeout(0.05 + rng.random() * 0.1)

    def client(inst, jitter):
        yield sim.timeout(jitter)
        for _ in range(5):
            op = inst.in_(Pattern("stock", int),
                          requester=_terms(0.15 + rng.random() * 0.2))
            yield op.event
            probe = inst.rdp(Pattern("stock", int),
                             requester=_terms(0.1))
            yield probe.event
            yield sim.timeout(rng.random() * 0.03)

    sim.spawn(feeder())
    sim.spawn(client(c1, 0.0))
    sim.spawn(client(c2, 0.005 + rng.random() * 0.01))
    return insts, 3.0


@template("crash_recover")
def build_crash_recover(sim: Simulator, net: Network,
                        vis: VisibilityGraph, rng,
                        perturb: "Perturbations") -> tuple:
    """A durable producer killed mid-run: exactly-once across process death.

    ``srv`` deposits jobs under a write-ahead-log backend (in-memory
    filesystem) while two consumers take them remotely through the claim
    protocol — so every destructive consume is witnessed by its origin.
    On a seeded timetable the server dies twice; each death may land
    mid-compaction (snapshot written, WAL reset lost) and always tears a
    seeded number of bytes off the WAL tail, modelling an append in
    flight at the moment of power loss.  Recovery truncates the torn
    tail, replays the log, quarantines the survivors, and reconciles
    with the consumers before releasing anything — the exactly-once
    oracle flags any resurrected consumed tuple the instant a consumer
    takes it twice, and the ghost-read oracle watches the store indexes
    throughout.

    Every random draw happens regardless of the churn switch, so
    ablating the crash layer keeps all other streams aligned.
    """
    from repro.net.faults import CrashRestartInjector
    from repro.tuples.storage import MemoryFS, WALBackend, attach_backend

    names = ["srv", "c1", "c2"]
    edges = [("srv", "c1"), ("srv", "c2"), ("c1", "c2")]
    registry = {n: TiamatInstance(sim, net, n) for n in names}
    for left, right in edges:
        vis.set_visible(left, right, True)

    def factory(name: str) -> TiamatInstance:
        inst = TiamatInstance(sim, net, name)
        # Network.detach dropped the victim's visibility edges at crash.
        for left, right in edges:
            if name in (left, right):
                vis.set_visible(left, right, True)
        return inst

    backend = attach_backend(
        registry["srv"].space,
        WALBackend("srv", fs=MemoryFS(), compact_every=6))
    injector = CrashRestartInjector(sim, registry, factory, durable=True,
                                    backends={"srv": backend})
    jobs = Pattern("job", int)

    def producer():
        for i in range(10):
            yield sim.timeout(0.05 + rng.random() * 0.15)
            inst = registry.get("srv")
            if inst is None:
                continue  # down: this deposit was never acknowledged
            try:
                inst.out(Tuple("job", i), requester=_terms(30.0))
            except Exception:
                pass  # lease refused: the deposit failed before storage

    def consumer(name, jitter):
        yield sim.timeout(jitter)
        for _ in range(4):
            op = registry[name].in_(
                jobs, requester=_terms(0.6 + rng.random() * 0.4))
            yield op.event
            yield sim.timeout(rng.random() * 0.05)

    sim.spawn(producer())
    sim.spawn(consumer("c1", 0.1))
    sim.spawn(consumer("c2", 0.12 + rng.random() * 0.05))

    # Two seeded kill cycles, each with its own kill-point geometry.
    cycles = []
    for base in (0.5, 1.6):
        crash_at = base + rng.random() * 0.4
        restart_at = crash_at + 0.15 + rng.random() * 0.25
        mid_compact = rng.random() < 0.5
        chop = rng.randint(1, 24)
        cycles.append((crash_at, restart_at, mid_compact, chop))

    def kill(mid_compact: bool, chop: int) -> None:
        if "srv" not in registry:
            return
        if mid_compact:
            # Kill-point: snapshot landed, WAL reset never happened.
            backend.compact(sim.now, _crash_after_snapshot=True)
        injector.crash("srv")
        # Kill-point: the final append was in flight when power died.
        backend.tear_tail(chop)

    if perturb.churn:
        for crash_at, restart_at, mid_compact, chop in cycles:
            sim.schedule_at(crash_at, kill, mid_compact, chop)
            sim.schedule_at(restart_at, injector.restart, "srv")
    return list(registry.values()), 3.0


@template("fabric_churn")
def build_fabric_churn(sim: Simulator, net: Network,
                       vis: VisibilityGraph, rng,
                       perturb: "Perturbations") -> tuple:
    """Five fabric members under churn: shard handoff must stay exactly-once.

    All five instances run the sharded + replicated fabric (k=2, tight
    membership leases so handoff happens within the horizon).  A producer
    streams jobs across three shard keys while two consumers take them
    with ground-prefix patterns — O(k) routed, no union scan.  On a
    seeded timetable the *primary owner of one of those shard keys*
    crashes and later revives as a fresh, empty instance: its member
    lease lapses, the survivors run the witness sync and promote their
    quarantined replicas (satisfying any `in` blocked on that shard), and
    the revival triggers rebalance migrations back.  The exactly-once
    oracle flags a replica released after its primary's copy was consumed;
    the no-ghost-read oracle watches the store indexes throughout.

    Every random draw happens regardless of the churn switch, so ablating
    the crash layer keeps all other streams aligned.
    """
    from repro.fabric import FabricConfig, shard_key

    names = ["a", "b", "c", "d", "e"]
    edges = [(l, r) for i, l in enumerate(names) for r in names[i + 1:]]

    def make_config() -> TiamatConfig:
        return TiamatConfig(fabric=FabricConfig(
            replication=2, key_fields=2, membership_lease=0.8,
            heartbeat_period=0.25, migrate_timeout=0.4))

    registry = {n: TiamatInstance(sim, net, n, config=make_config())
                for n in names}
    for left, right in edges:
        vis.set_visible(left, right, True)
    for inst in registry.values():
        inst.fabric.bootstrap(names)

    keys = ["k0", "k1", "k2"]
    # The victim is the primary owner of the first shard key — its death
    # forces a real ownership handoff, not just membership noise.
    probe_key = shard_key(Tuple("job", keys[0], 0), key_fields=2)
    victim = registry["a"].fabric.map.ring(sim.now).owners(probe_key, 1)[0]

    def producer():
        for i in range(9):
            yield sim.timeout(0.04 + rng.random() * 0.18)
            inst = registry.get("a")
            if inst is None:
                continue  # producer node down: this deposit never happened
            try:
                inst.out(Tuple("job", keys[i % len(keys)], i))
            except Exception:
                pass  # lease refused: allowed weather

    def consumer(name: str, jitter: float):
        yield sim.timeout(jitter)
        for j in range(4):
            inst = registry.get(name)
            if inst is None:
                yield sim.timeout(0.2)
                continue  # our node is down this round
            op = inst.in_(Pattern("job", keys[(j * 2) % len(keys)], int),
                          requester=_terms(0.5 + rng.random() * 0.5))
            yield op.event
            yield sim.timeout(rng.random() * 0.06)

    sim.spawn(producer())
    sim.spawn(consumer("b" if victim != "b" else "c", 0.1))
    sim.spawn(consumer("d" if victim != "d" else "e",
                       0.12 + rng.random() * 0.05))

    # One seeded crash/revive cycle.  The revival is a *fresh* instance
    # (empty space): resurrecting the dead node's copies alongside the
    # promoted replicas would itself be the double-consume bug this
    # template hunts, so only promotion/migration may restore state.
    crash_at = 0.5 + rng.random() * 0.5
    revive_at = crash_at + 0.5 + rng.random() * 0.5

    def crash() -> None:
        inst = registry.pop(victim, None)
        if inst is not None:
            inst.shutdown()

    def revive() -> None:
        inst = TiamatInstance(sim, net, victim, config=make_config())
        for left, right in edges:
            if victim in (left, right):
                vis.set_visible(left, right, True)
        inst.fabric.bootstrap(sorted(registry) + [victim])
        registry[victim] = inst

    if perturb.churn:
        sim.schedule_at(crash_at, crash)
        sim.schedule_at(revive_at, revive)
    return list(registry.values()), 3.5


@template("agent_swarm")
def build_agent_swarm(sim: Simulator, net: Network,
                      vis: VisibilityGraph, rng,
                      perturb: "Perturbations") -> tuple:
    """A blackboard swarm under a bid storm, churn mid-claim, lost verdicts.

    A board plus two agents run the :mod:`repro.apps.agents` coordination
    protocol with tight timings; the board moonlights as a claimant
    (``board_worker``) so local claims race remote ones within the first
    handful of events — the ``double_claim`` canary fires almost
    immediately, which keeps its shrunk prefix short.  A seeded bid storm
    of independent tasks lands at t=0 together with one two-option ballot
    (``split_vote`` bait: the three claimants' deterministic preferences
    disagree) and one broadcast question.  On a seeded timetable one
    agent crashes mid-claim and revives empty — its wip marker and votes
    die with it, so re-offers, re-votes and lost decision verdicts are
    all part of the weather the claim-exclusivity and quorum-safety
    oracles must stay clean under.
    """
    from repro.apps.agents import AgentSwarm, SwarmConfig, TaskSpec

    swarm = AgentSwarm(
        sim, net, vis, agents=("wa", "wb"), board_worker=True,
        config=SwarmConfig(claim_ttl=0.8, reoffer_grace=0.5,
                           reoffer_poll=0.2, poll=0.04, work_mean=0.12,
                           op_lease=0.5))
    # Bid storm: a seeded burst of independent offers, all claimable at
    # once, plus one two-deep dependency pair for offer-gating coverage.
    # Intake is deferred to t=0 so every deposit (and its lease) happens
    # under the invariant monitor, which installs after the build.
    burst = 4 + rng.randint(0, 2)
    specs = [TaskSpec(i, f"storm{i}") for i in range(burst)]
    specs.append(TaskSpec(burst, "gated", (0,)))

    def intake() -> None:
        swarm.submit(specs)
        swarm.ask_vote(0, ["alpha", "beta"])
        swarm.ask_question(0, "status")

    # Intake strictly precedes the first agent step (the tiebreak layer
    # randomizes ordering within one timestamp): the very first ballot
    # pass already sees the vote, so canary violations land within the
    # shrinker's event budget.
    sim.schedule_at(0.0, intake)
    sim.schedule_at(0.002, swarm.start)

    # Seeded churn mid-claim: one agent dies while the storm is being
    # claimed and revives as a fresh, empty instance (wip markers, votes
    # and un-collected done records all die with it).  The draws happen
    # regardless of the layer switch so ablating churn keeps every other
    # stream's randomness aligned.
    victim = rng.choice(["wa", "wb"])
    crash_at = 0.3 + rng.random() * 0.6
    revive_at = crash_at + 0.3 + rng.random() * 0.5
    if perturb.churn:
        sim.schedule_at(crash_at, lambda: swarm.crash_agent(victim))
        sim.schedule_at(revive_at, lambda: swarm.revive_agent(victim))
    return list(swarm.registry.values()), 3.0


# ----------------------------------------------------------------------
# Running one schedule
# ----------------------------------------------------------------------
def run_schedule(template_name: str, seed: int,
                 perturb: Optional[Perturbations] = None,
                 max_events: Optional[int] = None,
                 trace: bool = False,
                 monitored: bool = True) -> RunOutcome:
    """Build and run one seeded schedule under the invariant monitor.

    Fully deterministic: the same ``(template, seed, perturb,
    max_events)`` always produces the same schedule hash and the same
    violations (see module docstring on latency pricing).

    ``monitored=False`` runs the identical world with **no probe sink
    installed** — the passivity control: its schedule hash must be
    bit-identical to the monitored run's
    (``tests/test_check_oracles.py::test_probes_are_observationally_passive``).
    """
    if template_name not in TEMPLATES:
        raise ValueError(f"unknown scenario template {template_name!r}; "
                         f"have {sorted(TEMPLATES)}")
    perturb = perturb if perturb is not None else Perturbations()
    sim = Simulator(seed=seed)
    if perturb.tiebreak:
        tiebreak_rng = sim.rng("check/tiebreak")
        sim.set_tiebreak(tiebreak_rng.random)
    vis = VisibilityGraph()
    # Size-independent latency: replays must not depend on process-global
    # id counters leaking into payload sizes (see module docstring).
    net = Network(sim, visibility=vis,
                  latency_factory=default_latency(per_byte=0.0))
    if perturb.faults:
        # The nightly chaos soak raises the stakes via REPRO_CHAOS_LOSS
        # (same knob as the T10 bench); determinism is per-environment —
        # the same (template, seed, perturb, loss) always replays.
        loss = float(os.environ.get("REPRO_CHAOS_LOSS", "") or 0.08)
        net.use_faults(FaultPlan([
            RandomLoss(loss),
            DuplicateFrames(0.05),
            ReorderFrames(0.1, max_extra_delay=0.02),
        ]))
    tracer = sim.obs.start_trace(net) if trace else None
    scenario_rng = sim.rng("check/scenario")
    instances, horizon = TEMPLATES[template_name](sim, net, vis,
                                                  scenario_rng, perturb)

    hasher = hashlib.sha256()

    def record(timer):
        label = getattr(timer.callback, "__qualname__", "?")
        hasher.update(f"{timer.time:.9f}|{label}\n".encode())

    sim.event_hook = record
    if monitored:
        monitor = InvariantMonitor(sim)
        with monitor:
            sim.run(until=horizon, max_events=max_events)
            monitor.finish()
            monitor.check_managers([inst.leases for inst in instances])
        violations = monitor.violations
        probe_events = monitor.events_seen
    else:
        sim.run(until=horizon, max_events=max_events)
        violations = []
        probe_events = 0
    sim.event_hook = None
    return RunOutcome(template_name, seed, perturb, violations,
                      sim.events_processed, hasher.hexdigest(), horizon,
                      probe_events, tracer)


# ----------------------------------------------------------------------
# The explorer
# ----------------------------------------------------------------------
class ExploreResult:
    """Aggregate outcome of one exploration sweep."""

    def __init__(self) -> None:
        self.schedules_run = 0
        self.events_total = 0
        self.per_template: Dict[str, int] = {}
        self.reports: list = []   # CheckReports (shrunk violations)
        self.elapsed = 0.0

    @property
    def clean(self) -> bool:
        return not self.reports

    @property
    def schedules_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.schedules_run / self.elapsed

    def summary(self) -> str:
        lines = [
            f"schedules explored : {self.schedules_run}",
            f"kernel events      : {self.events_total}",
            f"wall time          : {self.elapsed:.2f}s "
            f"({self.schedules_per_second:.1f} schedules/s)",
        ]
        for name in sorted(self.per_template):
            lines.append(f"  template {name:<16} {self.per_template[name]}")
        if self.clean:
            lines.append("verdict            : CLEAN (no invariant violations)")
        else:
            lines.append(f"verdict            : {len(self.reports)} VIOLATION(S)")
            for report in self.reports:
                lines.append("  " + report.headline())
        return "\n".join(lines)


class Explorer:
    """Sweeps seeds across scenario templates, shrinking any violation."""

    def __init__(self, templates: Optional[List[str]] = None,
                 perturb: Optional[Perturbations] = None,
                 shrink: bool = True) -> None:
        self.templates = templates if templates is not None else sorted(TEMPLATES)
        for name in self.templates:
            if name not in TEMPLATES:
                raise ValueError(f"unknown scenario template {name!r}")
        self.perturb = perturb if perturb is not None else Perturbations()
        self.shrink = shrink

    def run(self, schedules: int = 200, seed_base: int = 0,
            stop_on_violation: bool = True,
            progress: Optional[Callable[[int, int], None]] = None) -> ExploreResult:
        """Explore ``schedules`` runs, round-robin over the templates."""
        from repro.check.shrink import shrink_violation

        result = ExploreResult()
        started = _time.perf_counter()
        for i in range(schedules):
            template_name = self.templates[i % len(self.templates)]
            seed = seed_base + i
            outcome = run_schedule(template_name, seed, self.perturb)
            result.schedules_run += 1
            result.events_total += outcome.events
            result.per_template[template_name] = (
                result.per_template.get(template_name, 0) + 1)
            if progress is not None:
                progress(i + 1, schedules)
            if not outcome.clean:
                if self.shrink:
                    result.reports.append(shrink_violation(outcome))
                else:
                    from repro.check.shrink import CheckReport

                    result.reports.append(CheckReport.from_outcome(outcome))
                if stop_on_violation:
                    break
        result.elapsed = _time.perf_counter() - started
        return result
