"""Passive oracle probe points: the checker's window into the protocol.

Core modules (store, space, leasing, serving, ops, reliability, admission)
call :func:`emit` at semantically meaningful moments — a tuple is consumed,
a lease is granted or ends, a reliable frame is dispatched, a refusal goes
out.  With no sink installed (the default, and the production
configuration) every probe site reduces to **one module-attribute load and
a falsy check** — no allocation, no RNG draws, no branches that alter
behaviour — so seeded experiments are bit-identical with checking off (see
``tests/test_check_oracles.py::test_probes_are_observationally_passive``).

The model checker (:mod:`repro.check.oracles`) installs an
:class:`~repro.check.oracles.InvariantMonitor` as the sink for the duration
of a run.  Exactly one sink can be active at a time; :func:`install` is a
context-manager-friendly pair with :func:`uninstall`.

This module is deliberately dependency-free (it imports nothing from
``repro``) so the hot-path modules that import it never pull the checker
machinery — ``repro/check/__init__.py`` lazy-loads everything else.

Mutation canaries
-----------------
The same module owns the ``REPRO_CHECK_CANARY`` environment toggle:
intentionally planted bugs (``ghost``, ``double_take``, ``lease_leak`` in
the protocol core; ``double_claim``, ``split_vote`` in the multi-agent
blackboard workload) that host modules consult *at object construction
time* via :func:`canary`.  They exist purely to prove the oracles are not
vacuous — ``tests/test_check_canaries.py`` and
``tests/test_check_agent_canaries.py`` assert the checker detects each one
and shrinks it to a short reproducing prefix.  With the variable unset
(always, outside those tests) the guards are constant-``False`` attributes
checked on cold paths only.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

#: The active probe sink: ``fn(event_name, fields_dict)`` or ``None``.
#: Probe sites must guard with ``if probes.SINK is not None`` (or call
#: :func:`emit`, which does the same check).
SINK: Optional[Callable[[str, Dict[str, Any]], None]] = None

#: Names of the planted bugs (values of ``REPRO_CHECK_CANARY``).
CANARY_GHOST = "ghost"
CANARY_DOUBLE_TAKE = "double_take"
CANARY_LEASE_LEAK = "lease_leak"
CANARY_DOUBLE_CLAIM = "double_claim"
CANARY_SPLIT_VOTE = "split_vote"
ALL_CANARIES = (CANARY_GHOST, CANARY_DOUBLE_TAKE, CANARY_LEASE_LEAK,
                CANARY_DOUBLE_CLAIM, CANARY_SPLIT_VOTE)


def emit(event: str, **fields: Any) -> None:
    """Report one probe event to the active sink (no-op without one)."""
    if SINK is not None:
        SINK(event, fields)


def install(sink: Callable[[str, Dict[str, Any]], None]) -> None:
    """Install ``sink`` as the active probe consumer.

    Raises ``RuntimeError`` if a sink is already active — overlapping
    checkers would corrupt each other's shadow state.
    """
    global SINK
    if SINK is not None:
        raise RuntimeError("a probe sink is already installed")
    SINK = sink


def uninstall() -> None:
    """Remove the active sink (idempotent)."""
    global SINK
    SINK = None


def canary(name: str) -> bool:
    """Whether the named planted bug is switched on via the environment.

    Read at *object construction time* by the host modules, so a test can
    set ``REPRO_CHECK_CANARY`` before building a scenario and unset it
    afterwards without leaking into other tests.
    """
    return os.environ.get("REPRO_CHECK_CANARY", "") == name
