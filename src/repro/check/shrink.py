"""Shrink a violating schedule to a minimal replayable reproduction.

A violation found by the explorer names the kernel event index at which an
oracle fired.  Because every ``(template, seed, perturb, max_events)``
replay is bit-identical (see :mod:`repro.check.explorer`), the schedule can
be truncated: re-run the same world with ``max_events=k`` and ask whether
the violation still occurs.  Shrinking is then two deterministic passes:

1. **Perturbation ablation** — greedily switch off adversarial layers
   (tiebreak randomization, faults, churn) that the violation does not
   actually need, so the reproduction names its true trigger.
2. **Prefix bisection** — binary-search the smallest event count whose
   prefix still violates (violations are prefix-monotone: oracles only
   accumulate evidence, so a superset of a violating prefix violates too).

The result is a :class:`CheckReport`: template, seed, surviving
perturbation layers, minimal event count, schedule hash, the violation,
and a Tracer waterfall of every operation alive in the shrunk prefix.
Reports serialize to JSON and replay with :meth:`CheckReport.replay`.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.check.explorer import Perturbations, RunOutcome, run_schedule


def _violates(template: str, seed: int, perturb: Perturbations,
              max_events: Optional[int]) -> bool:
    outcome = run_schedule(template, seed, perturb, max_events=max_events)
    return not outcome.clean


def _bisect_prefix(template: str, seed: int, perturb: Perturbations,
                   upper: int) -> int:
    """Smallest event count whose prefix still violates (<= upper)."""
    lo, hi = 1, upper
    while lo < hi:
        mid = (lo + hi) // 2
        if _violates(template, seed, perturb, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def shrink_violation(outcome: RunOutcome) -> "CheckReport":
    """Shrink one violating run to its minimal reproducing prefix."""
    template, seed = outcome.template, outcome.seed
    violation = outcome.first_violation
    assert violation is not None, "cannot shrink a clean run"

    # Upper bound: the event index the oracle fired at (+1 so the prefix
    # includes the violating callback).  A final-sweep violation has no
    # live index; start from the whole run.
    upper = outcome.events
    if violation.event_index >= 0:
        upper = max(1, min(upper, violation.event_index + 1))

    # Pass 1: ablate perturbation layers the violation does not need.
    perturb = outcome.perturb
    for layer in Perturbations.LAYERS:
        if not getattr(perturb, layer):
            continue
        candidate = perturb.without(layer)
        if _violates(template, seed, candidate, upper):
            perturb = candidate
        elif _violates(template, seed, candidate, None):
            # Still violates, just later in the schedule: adopt the
            # simpler world and recompute the bound from its own run.
            ablated = run_schedule(template, seed, candidate)
            if not ablated.clean:
                perturb = candidate
                v = ablated.first_violation
                upper = ablated.events
                if v is not None and v.event_index >= 0:
                    upper = max(1, min(upper, v.event_index + 1))

    # Pass 2: bisect to the minimal violating prefix.
    min_events = _bisect_prefix(template, seed, perturb, upper)
    shrunk = run_schedule(template, seed, perturb, max_events=min_events,
                          trace=True)
    return CheckReport.from_outcome(shrunk, min_events=min_events)


class CheckReport:
    """A replayable reproduction of one invariant violation."""

    def __init__(self, template: str, seed: int, perturb: Perturbations,
                 min_events: int, schedule_hash: str,
                 violation: Optional[dict], horizon: float,
                 waterfalls: Optional[List[str]] = None) -> None:
        self.template = template
        self.seed = seed
        self.perturb = perturb
        self.min_events = min_events
        self.schedule_hash = schedule_hash
        self.violation = violation
        self.horizon = horizon
        self.waterfalls = waterfalls or []

    # ------------------------------------------------------------------
    @classmethod
    def from_outcome(cls, outcome: RunOutcome,
                     min_events: Optional[int] = None) -> "CheckReport":
        violation = outcome.first_violation
        waterfalls: List[str] = []
        if outcome.tracer is not None:
            op_ids = []
            for event in outcome.tracer.events:
                if event.op_id is not None and event.op_id not in op_ids:
                    op_ids.append(event.op_id)
            for op_id in op_ids:
                try:
                    waterfalls.append(outcome.tracer.waterfall(op_id))
                except Exception:  # pragma: no cover - partial spans
                    pass
        return cls(outcome.template, outcome.seed, outcome.perturb,
                   min_events if min_events is not None else outcome.events,
                   outcome.schedule_hash,
                   violation.to_dict() if violation is not None else None,
                   outcome.horizon, waterfalls)

    # ------------------------------------------------------------------
    def replay(self, trace: bool = False) -> RunOutcome:
        """Re-run the shrunk schedule; deterministic per this report."""
        return run_schedule(self.template, self.seed, self.perturb,
                            max_events=self.min_events, trace=trace)

    # ------------------------------------------------------------------
    def headline(self) -> str:
        oracle = self.violation["oracle"] if self.violation else "?"
        return (f"{oracle}: template={self.template} seed={self.seed} "
                f"events={self.min_events} "
                f"perturb={'+'.join(self.perturb.enabled()) or 'none'}")

    def render(self) -> str:
        lines = [
            "CheckReport",
            f"  template      : {self.template}",
            f"  seed          : {self.seed}",
            f"  perturbations : {'+'.join(self.perturb.enabled()) or 'none'}",
            f"  shrunk prefix : {self.min_events} kernel events",
            f"  schedule hash : {self.schedule_hash[:16]}…",
        ]
        if self.violation is not None:
            lines.append(f"  oracle        : {self.violation['oracle']}")
            lines.append(f"  probe         : {self.violation['probe']} "
                         f"@event {self.violation['event_index']}")
            lines.append(f"  detail        : {self.violation['detail']}")
        lines.append(
            f"  replay        : repro check --replay "
            f"'{json.dumps(self.to_json_obj(), sort_keys=True)}'")
        for waterfall in self.waterfalls:
            lines.append("")
            lines.extend("  " + line for line in waterfall.splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json_obj(self) -> dict:
        return {
            "template": self.template,
            "seed": self.seed,
            "perturb": self.perturb.to_dict(),
            "min_events": self.min_events,
            "schedule_hash": self.schedule_hash,
            "violation": self.violation,
            "horizon": self.horizon,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CheckReport":
        data = json.loads(text)
        return cls(data["template"], int(data["seed"]),
                   Perturbations.from_dict(data["perturb"]),
                   int(data["min_events"]), data["schedule_hash"],
                   data.get("violation"), float(data.get("horizon", 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckReport {self.headline()}>"
