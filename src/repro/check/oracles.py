"""Invariant oracles: what must *never* happen, watched passively.

An :class:`InvariantMonitor` installs itself as the probe sink
(:mod:`repro.check.probes`) for the duration of one simulated run and feeds
every probe event to a set of :class:`Oracle` shadows:

``ExactlyOnceOracle``
    Every tuple value is destructively consumed at most as many times as it
    was deposited (the paper's distributed-``in`` safety claim: "exactly one
    tuple is consumed network-wide").
``GhostReadOracle``
    A scan never matches an entry the store already removed ("no ghost
    reads after remove") — the classic stale-index bug class.
``LeaseConservationOracle``
    Lease accounting conserves: at every grant/end the manager's reported
    ``active_count`` equals granted-minus-ended (granted ⊇ active ∪ expired
    ∪ released ∪ revoked, with no lease ever counted twice or leaked).
``RefusalVocabularyOracle``
    Every refusal reason on the wire (serving refusals and admission sheds)
    belongs to the closed vocabulary ``ALL_REFUSAL_REASONS``.
``ReliabilityNoDupOracle``
    The reliable sublayer never dispatches the same ``(src, dst, epoch,
    seq)`` frame to protocol handlers twice.
``ClaimExclusivityOracle``
    A blackboard task id is never concurrently held by two live claims
    (:mod:`repro.apps.agents` — the leased-``inp`` bid/claim protocol).
``QuorumSafetyOracle``
    One consensus question never yields two conflicting decisions (the
    rd-quorum + decision-token ballot of :mod:`repro.apps.agents`).

Violations are *recorded*, not raised: every :class:`Violation` carries the
kernel event index at which it was observed (``sim.events_processed`` at
probe time), which is exactly what the shrinker needs to bisect a run to a
minimal reproducing prefix.  The monitor stops the simulation at the first
violation so exploration never wastes work past the first bug.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.check import probes


class Violation:
    """One observed invariant breach, locatable in the event schedule."""

    __slots__ = ("oracle", "detail", "event_index", "probe", "fields")

    def __init__(self, oracle: str, detail: str, event_index: int,
                 probe: str, fields: Optional[dict] = None) -> None:
        self.oracle = oracle
        self.detail = detail
        self.event_index = event_index
        self.probe = probe
        self.fields = dict(fields or {})

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "detail": self.detail,
                "event_index": self.event_index, "probe": self.probe}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Violation {self.oracle} @event {self.event_index}: "
                f"{self.detail}>")


def _is_telemetry(tup: Any) -> bool:
    """Whether a probe's tuple is an in-space telemetry health row.

    Telemetry rows (:mod:`repro.obs.telemetry`) are deposited under short
    leases and reclaimed by expiry without a matching consume; the
    exactly-once claim is about *application* tuples, so they are skipped
    (mirroring the durable backends' skip-tag list).
    """
    fields = getattr(tup, "fields", None)
    return bool(fields) and fields[0] == "_telemetry"


class Oracle:
    """Base class: sees every probe event; reports via ``fail``."""

    name = "oracle"

    def __init__(self) -> None:
        self.monitor: Optional["InvariantMonitor"] = None

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        raise NotImplementedError

    def on_finish(self) -> None:
        """Called once after the run completes (final-state sweeps)."""

    def fail(self, detail: str, probe: str, fields: Dict[str, Any]) -> None:
        assert self.monitor is not None
        self.monitor.record(Violation(self.name, detail,
                                      self.monitor.event_index, probe,
                                      fields))


class ExactlyOnceOracle(Oracle):
    """Consumptions of a tuple value never exceed its deposits (multiset)."""

    name = "exactly_once"

    def __init__(self) -> None:
        super().__init__()
        self._deposited: Dict[Any, int] = {}
        self._consumed: Dict[Any, int] = {}

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "space.deposit":
            tup = fields["tup"]
            if _is_telemetry(tup):
                return  # leased health rows are operational, not app state
            self._deposited[tup] = self._deposited.get(tup, 0) + 1
        elif event == "space.consume":
            tup = fields["tup"]
            if _is_telemetry(tup):
                return
            count = self._consumed.get(tup, 0) + 1
            self._consumed[tup] = count
            if count > self._deposited.get(tup, 0):
                self.fail(
                    f"tuple {tup!r} consumed {count}x but deposited "
                    f"{self._deposited.get(tup, 0)}x", event, fields)


class GhostReadOracle(Oracle):
    """A match must never name an entry the store already removed."""

    name = "ghost_read"

    def __init__(self) -> None:
        super().__init__()
        self._dead: set = set()   # (store_id, entry_id) removed for good
        self._live: set = set()

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "store.add":
            key = (fields["store"], fields["entry"])
            self._live.add(key)
            self._dead.discard(key)
        elif event == "store.remove":
            key = (fields["store"], fields["entry"])
            self._live.discard(key)
            self._dead.add(key)
        elif event == "store.match":
            key = (fields["store"], fields["entry"])
            if key in self._dead:
                self.fail(f"scan matched removed entry #{fields['entry']} "
                          f"(ghost read)", event, fields)


class LeaseConservationOracle(Oracle):
    """granted = active + ended, at every lease lifecycle transition."""

    name = "lease_conservation"

    def __init__(self) -> None:
        super().__init__()
        self._granted: Dict[Any, set] = {}   # manager -> lease ids
        self._ended: Dict[Any, set] = {}

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "lease.granted":
            mgr = fields["manager"]
            granted = self._granted.setdefault(mgr, set())
            ended = self._ended.setdefault(mgr, set())
            lease = fields["lease"]
            if lease in granted:
                self.fail(f"lease #{lease} granted twice", event, fields)
                return
            granted.add(lease)
            self._check(mgr, fields["active_count"], event, fields)
        elif event == "lease.ended":
            mgr = fields["manager"]
            granted = self._granted.setdefault(mgr, set())
            ended = self._ended.setdefault(mgr, set())
            lease = fields["lease"]
            if lease in ended:
                self.fail(f"lease #{lease} ended twice "
                          f"({fields.get('state')})", event, fields)
                return
            if lease not in granted:
                self.fail(f"lease #{lease} ended but never granted",
                          event, fields)
                return
            ended.add(lease)
            self._check(mgr, fields["active_count"], event, fields)

    def _check(self, mgr: Any, reported: int, event: str,
               fields: Dict[str, Any]) -> None:
        expected = len(self._granted[mgr]) - len(self._ended[mgr])
        if reported != expected:
            self.fail(
                f"lease accounting out of conservation: manager reports "
                f"{reported} active, shadow expects {expected} "
                f"(granted={len(self._granted[mgr])}, "
                f"ended={len(self._ended[mgr])})", event, fields)


class RefusalVocabularyOracle(Oracle):
    """Every wire refusal reason belongs to the closed vocabulary."""

    name = "refusal_vocabulary"

    def __init__(self) -> None:
        super().__init__()
        # Imported here, not at module top: oracles are never on a hot
        # path, and this keeps probes.py dependency-free by construction.
        from repro.core.admission import ALL_REFUSAL_REASONS

        self._vocabulary = ALL_REFUSAL_REASONS

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event in ("serving.refusal", "admission.shed"):
            reason = fields.get("reason")
            if reason not in self._vocabulary:
                self.fail(f"refusal reason {reason!r} outside closed "
                          f"vocabulary {sorted(self._vocabulary)}",
                          event, fields)


class ReliabilityNoDupOracle(Oracle):
    """The reliable channel never dispatches one frame twice.

    Scoped per *receiver incarnation* (the ``rinc`` probe field): dedup
    windows are volatile, so a node that crashes and durably recovers
    legitimately re-dispatches retransmissions its dead predecessor had
    already seen — at-least-once delivery, absorbed by the idempotent
    handlers above, not a dedup failure.
    """

    name = "reliability_no_dup"

    def __init__(self) -> None:
        super().__init__()
        self._dispatched: set = set()

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "rel.dispatch":
            key = (fields["src"], fields["dst"], fields["epoch"],
                   fields["seq"], fields.get("rinc"))
            if key in self._dispatched:
                self.fail(f"reliable frame {key} dispatched twice",
                          event, fields)
                return
            self._dispatched.add(key)


class ClaimExclusivityOracle(Oracle):
    """No task id is ever held by two live claim leases at once.

    The blackboard workload (:mod:`repro.apps.agents`) emits
    ``agents.claim`` (with the claim lease's ``expires_at``) when an agent
    wins a bid and ``agents.release`` when it hands the task back —
    voluntarily, by completing it, or by observing its own death.  A claim
    whose lease has expired no longer excludes anyone (that expiry is
    exactly what re-offers work abandoned by crashed agents), so the
    shadow first retires expired holds at each event's ``now``; a *live*
    second hold on the same task is the mutual-exclusion breach the leased
    ``inp`` is supposed to make impossible.
    """

    name = "claim_exclusivity"

    def __init__(self) -> None:
        super().__init__()
        self._held: Dict[Any, Dict[str, float]] = {}  # task -> agent -> exp

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "agents.claim":
            task = fields["task"]
            now = fields["now"]
            holders = self._held.setdefault(task, {})
            for agent in [a for a, exp in holders.items() if exp <= now]:
                del holders[agent]  # lease expired: no longer excludes
            agent = fields["agent"]
            if holders and agent not in holders:
                others = ", ".join(sorted(holders))
                self.fail(f"task {task!r} claimed by {agent!r} while "
                          f"live claim(s) held by {others}", event, fields)
                return
            holders[agent] = fields["expires_at"]
        elif event == "agents.release":
            holders = self._held.get(fields["task"])
            if holders is not None:
                holders.pop(fields["agent"], None)


class QuorumSafetyOracle(Oracle):
    """One question, at most one decision value — ever.

    ``agents.decide`` fires when a tallier wins the decision token after
    observing an rd-quorum of ballots.  Re-deciding the *same* value is
    harmless (an idempotent re-announcement); two *different* values for
    one question is split-brain consensus, the failure the decision token
    exists to prevent.
    """

    name = "quorum_safety"

    def __init__(self) -> None:
        super().__init__()
        self._decided: Dict[Any, Any] = {}   # question -> (choice, agent)

    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        if event == "agents.decide":
            question = fields["question"]
            choice = fields["choice"]
            prior = self._decided.get(question)
            if prior is None:
                self._decided[question] = (choice, fields["agent"])
            elif prior[0] != choice:
                self.fail(
                    f"question {question!r} decided {choice!r} by "
                    f"{fields['agent']!r} but already decided {prior[0]!r} "
                    f"by {prior[1]!r} (conflicting consensus)",
                    event, fields)


def default_oracles() -> List[Oracle]:
    """One instance of every oracle in the catalogue."""
    return [ExactlyOnceOracle(), GhostReadOracle(),
            LeaseConservationOracle(), RefusalVocabularyOracle(),
            ReliabilityNoDupOracle(), ClaimExclusivityOracle(),
            QuorumSafetyOracle()]


class InvariantMonitor:
    """The probe sink: fans every event out to the oracle shadows.

    Use as a context manager around one simulated run::

        monitor = InvariantMonitor(sim)
        with monitor:
            sim.run(until=horizon)
        monitor.finish()
        assert not monitor.violations

    ``stop_on_violation`` (default True) halts the simulation at the first
    breach so exploration never runs past the first bug; the recorded
    :class:`Violation` carries the kernel event index for the shrinker.
    """

    def __init__(self, sim=None, oracles: Optional[List[Oracle]] = None,
                 stop_on_violation: bool = True) -> None:
        self.sim = sim
        self.oracles = oracles if oracles is not None else default_oracles()
        for oracle in self.oracles:
            oracle.monitor = self
        self.stop_on_violation = stop_on_violation
        self.violations: List[Violation] = []
        self.events_seen = 0
        #: The flight-recorder black box captured at the first violation
        #: (None until one fires, or when the recorder is disabled).
        self.flight_dump: Optional[Dict[str, Any]] = None
        #: Path the black box was written to (``$REPRO_FLIGHT_DIR`` set).
        self.flight_dump_path: Optional[str] = None

    # -- sink protocol --------------------------------------------------
    @property
    def event_index(self) -> int:
        """Kernel event index of the probe currently being processed.

        ``events_processed`` is incremented *after* each callback returns,
        so during a callback it equals that callback's 0-based index —
        replaying with ``max_events = index + 1`` re-executes it.
        """
        if self.sim is None:
            return -1
        return self.sim.events_processed

    def __call__(self, event: str, fields: Dict[str, Any]) -> None:
        self.events_seen += 1
        for oracle in self.oracles:
            oracle.on_event(event, fields)

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.sim is not None and self.flight_dump is None:
            self._capture_flight(violation)
        if self.stop_on_violation and self.sim is not None:
            self.sim.stop()

    def _capture_flight(self, violation: Violation) -> None:
        """Snapshot every node's flight ring at the first violation."""
        from repro.obs.flight import dump_to_env_dir

        recorder = self.sim.obs.flight
        if not recorder.enabled:
            return
        detail = violation.to_dict()
        self.flight_dump = recorder.dump(
            f"violation:{violation.oracle}", detail=detail)
        self.flight_dump_path = dump_to_env_dir(
            recorder, f"violation-{violation.oracle}", detail=detail)

    def finish(self) -> None:
        """Run every oracle's final-state sweep (after the run loop)."""
        for oracle in self.oracles:
            oracle.on_finish()

    def check_managers(self, managers) -> None:
        """Final conservation sweep: every lease still in an active table
        must actually be in the ACTIVE state (catches silent leaks that
        never produce another lifecycle event)."""
        from repro.leasing.lease import LeaseState

        for manager in managers:
            for lease in manager.active.values():
                if lease.state is not LeaseState.ACTIVE:
                    self.violations.append(Violation(
                        "lease_conservation",
                        f"lease #{lease.lease_id} is {lease.state.value} "
                        f"but still in the active table (leak)",
                        self.event_index, "final_sweep"))

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "InvariantMonitor":
        probes.install(self)
        return self

    def __exit__(self, *exc) -> None:
        probes.uninstall()
