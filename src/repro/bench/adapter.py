"""Adapter exposing a TiamatInstance through the SpaceNode bench interface.

The cross-system comparison drives every system with the same workload;
this adapter maps the generic ``timeout`` of the bench contract onto
Tiamat's native notion of effort — a lease of that duration.
"""

from __future__ import annotations

from repro.baselines.base import SimpleOp, SpaceNode
from repro.core.handles import SPACE_INFO_PATTERN
from repro.core.instance import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.tuples import Pattern, Tuple


class TiamatSpaceAdapter(SpaceNode):
    """A TiamatInstance dressed as a generic SpaceNode."""

    def __init__(self, instance: TiamatInstance,
                 out_lease: float = 120.0, probe_lease: float = 2.0,
                 max_remotes: int = 32) -> None:
        self.instance = instance
        self.name = instance.name
        self.out_lease = out_lease
        self.probe_lease = probe_lease
        self.max_remotes = max_remotes

    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        try:
            self.instance.out(
                tup,
                requester=SimpleLeaseRequester(LeaseTerms(duration=self.out_lease)))
        except LeaseError:
            pass  # refused deposits are simply lost, like a full baseline node

    def rdp(self, pattern: Pattern) -> SimpleOp:
        return self._wrap(self.instance.rdp(
            pattern, requester=self._requester(self.probe_lease)))

    def inp(self, pattern: Pattern) -> SimpleOp:
        return self._wrap(self.instance.inp(
            pattern, requester=self._requester(self.probe_lease)))

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._wrap(self.instance.rd(
            pattern, requester=self._requester(timeout)))

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._wrap(self.instance.in_(
            pattern, requester=self._requester(timeout)))

    def stored_tuples(self) -> int:
        # Exclude the infrastructure space-info tuple for a fair count.
        return (self.instance.space.count()
                - self.instance.space.count(SPACE_INFO_PATTERN))

    # ------------------------------------------------------------------
    def _requester(self, duration: float) -> SimpleLeaseRequester:
        return SimpleLeaseRequester(
            LeaseTerms(duration=duration, max_remotes=self.max_remotes))

    def _wrap(self, operation) -> SimpleOp:
        handle = SimpleOp(self.instance.sim)
        operation.event.add_callback(
            lambda event: handle.finalize(
                event.value, None if event.value is not None else "lease expired"))
        return handle


class CoreLimeAgentAdapter(SpaceNode):
    """Drives a CoreLime host's remote access through mobile agents.

    CoreLime's own operations are local-only; "the burden of [federation]
    is placed on the application developer" (section 4.5).  This adapter
    *is* that application code: it polls the other hosts with migrating
    agents, one at a time, until a match or the timeout.  The agent traffic
    is charged to the network, so the comparison sees CoreLime's real
    per-operation cost.
    """

    def __init__(self, host, peer_names: list[str]) -> None:
        self.host = host
        self.name = host.name
        self.peers = [p for p in peer_names if p != host.name]
        self.sim = host.sim

    def out(self, tup: Tuple) -> None:
        self.host.out(tup)

    def rdp(self, pattern: Pattern) -> SimpleOp:
        return self._agent_scan(pattern, "rdp", deadline=self.sim.now + 5.0)

    def inp(self, pattern: Pattern) -> SimpleOp:
        return self._agent_scan(pattern, "inp", deadline=self.sim.now + 5.0)

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._agent_scan(pattern, "rdp", deadline=self.sim.now + timeout,
                                repeat=True)

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._agent_scan(pattern, "inp", deadline=self.sim.now + timeout,
                                repeat=True)

    def stored_tuples(self) -> int:
        return self.host.stored_tuples()

    # ------------------------------------------------------------------
    def _agent_scan(self, pattern: Pattern, op: str, deadline: float,
                    repeat: bool = False) -> SimpleOp:
        handle = SimpleOp(self.sim)
        self.sim.spawn(self._scan_process(pattern, op, deadline, repeat, handle))
        return handle

    def _scan_process(self, pattern: Pattern, op: str, deadline: float,
                      repeat: bool, handle: SimpleOp):
        while not handle.done and self.sim.now < deadline:
            # Check home first, then tour the peers by agent.
            local = (self.host.space.inp(pattern) if op == "inp"
                     else self.host.space.rdp(pattern))
            if local is not None:
                handle.finalize(local)
                return
            for peer in self.peers:
                if handle.done or self.sim.now >= deadline:
                    break
                agent = self.host.send_agent(peer, op, pattern, timeout=2.0)
                result = yield agent.event
                if result is not None:
                    handle.finalize(result)
                    return
            if not repeat:
                break
            yield self.sim.timeout(1.0)
        if not handle.done:
            handle.finalize(None, error="timeout")
