"""Plain-text table/series formatting for benchmark reports.

Every benchmark prints its rows through these helpers so the output in
``bench_output.txt`` has one consistent, diffable shape.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class Table:
    """A fixed-width text table with a title and caption."""

    def __init__(self, title: str, headers: list[str],
                 caption: Optional[str] = None) -> None:
        self.title = title
        self.headers = headers
        self.caption = caption
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; cells are stringified (floats to 3 sig figs)."""
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3g}"
        return str(cell)

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        if self.caption:
            lines.append(self.caption)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> str:
        """Print and return the rendering."""
        text = self.render()
        print()
        print(text)
        return text


def format_series(label: str, points: Iterable[tuple]) -> str:
    """One-line series rendering: ``label: (x1, y1) (x2, y2) ...``."""
    body = " ".join(
        "(" + ", ".join(Table._fmt(v) for v in point) + ")" for point in points
    )
    return f"{label}: {body}"
