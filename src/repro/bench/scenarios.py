"""Scenario builders shared by the comparison benchmarks.

:func:`build_system` constructs any of the six compared systems over a
fresh simulator + network and returns the pieces the benches need:
``(sim, network, {name: SpaceNode})``.  Churn and visibility scripting are
applied by the benches themselves, on the returned network.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import (
    build_central_system,
    build_corelime_system,
    build_lime_system,
    build_limbo_system,
    build_peers_system,
)
from repro.bench.adapter import TiamatSpaceAdapter
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator

#: The systems the comparison benches iterate over.
SYSTEMS = ("tiamat", "central", "limbo", "lime", "corelime", "peers")


def clique_names(n: int, prefix: str = "n") -> list[str]:
    """Standard node names for an n-node scenario."""
    return [f"{prefix}{i}" for i in range(n)]


def build_system(system: str, n: int, seed: int = 0,
                 config: Optional[TiamatConfig] = None,
                 connect: bool = True,
                 max_remotes: Optional[int] = None):
    """Build one of the six systems with ``n`` participant nodes.

    For ``central`` the server is an *extra* node (the paper's critique is
    precisely that this machine must stay visible); all other systems are
    symmetric.  Returns ``(sim, network, nodes)`` where ``nodes`` maps the
    n participant names to :class:`SpaceNode` objects.

    ``max_remotes`` sets the Tiamat adapter's per-operation remote-contact
    lease budget (default: 32, the adapter's own default); scale it with
    ``n`` when the workload needs full-population coverage.
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    names = clique_names(n)
    if system == "tiamat":
        adapter_kwargs = {} if max_remotes is None else {"max_remotes": max_remotes}
        nodes = {
            name: TiamatSpaceAdapter(
                TiamatInstance(sim, network, name,
                               config=config if config is not None else TiamatConfig()),
                **adapter_kwargs)
            for name in names
        }
        if config is not None and config.fabric is not None:
            # Seed every fabric member with the full roster: benches
            # measure steady-state routing cost, not the gossip warm-up
            # (which would also trigger join migrations mid-measurement).
            for node in nodes.values():
                node.instance.fabric.bootstrap(names)
    elif system == "central":
        _, clients = build_central_system(sim, network, names)
        nodes = clients
        if connect:
            network.visibility.connect_clique(names + ["server"])
    elif system == "limbo":
        nodes, _ = build_limbo_system(sim, network, names)
    elif system == "lime":
        federation, hosts = build_lime_system(sim, network, names, max_hosts=6)
        for name in names:
            hosts[name].engage()
        nodes = hosts
    elif system == "corelime":
        from repro.bench.adapter import CoreLimeAgentAdapter

        hosts = build_corelime_system(sim, network, names)
        nodes = {name: CoreLimeAgentAdapter(host, names)
                 for name, host in hosts.items()}
    elif system == "peers":
        nodes = build_peers_system(sim, network, names)
    else:
        raise ValueError(f"unknown system {system!r}")
    if connect and system != "central":
        network.visibility.connect_clique(names)
    return sim, network, nodes
