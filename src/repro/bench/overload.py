"""The T11 overload scenario: goodput vs offered load, with and without
admission control.

One server instance owns a ``("job", int)`` tuple and fields directed
blocking ``rd_at`` queries from N client instances arriving as a Poisson
stream.  Serving is *costly*: each dispatched query occupies one of the
server's ``serve_workers`` dispatch workers for ``serve_cost`` virtual
seconds, so the server's capacity is ``serve_workers / serve_cost``
queries per second.  Every operation carries a hard client-side deadline
(its lease duration): a reply that arrives after the lease expired is
worthless — the origin has already finalized with ``None``.

Two arms share identical workload randomness (same seed, same named RNG
streams):

**uncontrolled** (``admission=False``)
    The inbound serving queue is unbounded and FIFO.  Past saturation the
    queue grows without bound, every query waits longer than its deadline,
    and dispatch workers burn their full ``serve_cost`` on queries whose
    origins have already given up — classic congestion collapse: goodput
    falls *toward zero* as offered load rises.

**admission-controlled** (``admission=True``)
    The :class:`~repro.core.admission.AdmissionController` prices each
    arrival from live signals (queue depth, drain rate, the operation's
    deadline, per-peer fair share) and sheds the excess at arrival — a
    structured ``QUERY_REFUSED`` with ``reason`` and ``retry_after`` that
    costs no worker time.  Work that would expire while queued is dropped
    at the queue head for free.  Served queries therefore finish inside
    their deadlines and goodput *plateaus* at (near) capacity.

Used by both ``benchmarks/test_t11_overload.py`` (assertions + committed
report) and ``python -m repro.cli overload`` (interactive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple

__all__ = [
    "OverloadPoint",
    "OverloadSweep",
    "run_overload_point",
    "run_overload_sweep",
]

#: Default scenario shape (chosen so a sweep runs in a few seconds of
#: wall time while leaving a wide gap between the two arms).
SERVE_COST = 0.04       # worker-seconds per dispatched query
SERVE_WORKERS = 2       # concurrent dispatch workers
OP_DEADLINE = 1.0       # each operation's lease duration (its deadline)
QUEUE_BOUND = 25        # admission arm's inbound queue bound
CLIENTS = 8
DURATION = 12.0         # seconds of offered load per point


@dataclass
class OverloadPoint:
    """Outcome of one (offered-load, arm) run."""

    offered_rate: float          # target arrival rate, queries/s
    admission: bool
    started: int = 0             # operations issued
    satisfied: int = 0           # operations that got their tuple in time
    goodput: float = 0.0         # satisfied / duration, queries/s
    served: int = 0              # queries a worker was actually spent on
    sheds: int = 0               # refused at admission (no worker time)
    stale_dropped: int = 0       # dropped at the queue head, already dead
    refusals_seen: int = 0       # structured refusals clients received
    shed_by_reason: dict = field(default_factory=dict)
    latencies: list = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean completion latency of satisfied operations (seconds)."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


@dataclass
class OverloadSweep:
    """A full goodput-vs-offered-load curve for one arm."""

    admission: bool
    capacity: float              # serve_workers / serve_cost, queries/s
    points: list = field(default_factory=list)

    @property
    def peak_goodput(self) -> float:
        return max((p.goodput for p in self.points), default=0.0)

    def goodput_at(self, multiplier: float) -> float:
        """Goodput at the point whose offered load is ``multiplier`` x
        capacity (nearest match)."""
        target = multiplier * self.capacity
        point = min(self.points, key=lambda p: abs(p.offered_rate - target))
        return point.goodput


def _server_config(admission: bool, *, serve_cost: float,
                   serve_workers: int, queue_bound: int,
                   fairness: bool) -> TiamatConfig:
    return TiamatConfig(
        serve_cost=serve_cost,
        serve_workers=serve_workers,
        admission_enabled=admission,
        admission_queue_bound=queue_bound,
        admission_fairness=fairness,
    )


def run_overload_point(seed: int, offered_rate: float, *,
                       admission: bool,
                       duration: float = DURATION,
                       clients: int = CLIENTS,
                       serve_cost: float = SERVE_COST,
                       serve_workers: int = SERVE_WORKERS,
                       op_deadline: float = OP_DEADLINE,
                       queue_bound: int = QUEUE_BOUND,
                       fairness: bool = True,
                       registry_sink: Optional[list] = None) -> OverloadPoint:
    """Run one offered-load point and return its :class:`OverloadPoint`.

    ``registry_sink``, when given, receives the simulation's metrics
    registry after the run (the benchmark snapshots it).
    """
    sim = Simulator(seed=seed)
    net = Network(sim)
    server = TiamatInstance(
        sim, net, "srv",
        config=_server_config(admission, serve_cost=serve_cost,
                              serve_workers=serve_workers,
                              queue_bound=queue_bound, fairness=fairness))
    server.out(Tuple("job", 1))
    handle = server.handle()
    point = OverloadPoint(offered_rate=offered_rate, admission=admission)
    pattern = Pattern("job", int)
    nodes = []
    for i in range(clients):
        client = TiamatInstance(sim, net, f"c{i}")
        net.visibility.set_visible(client.name, "srv")
        nodes.append(client)

    per_client_rate = offered_rate / clients

    def record(op, started_at: float):
        if op.satisfied:
            point.satisfied += 1
            point.latencies.append(sim.now - started_at)
        point.refusals_seen += len(op.refusals)

    def client_proc(client):
        rng = sim.rng(f"overload/arrivals/{client.name}")
        while True:
            yield sim.timeout(rng.expovariate(per_client_rate))
            if sim.now >= duration:
                return
            requester = SimpleLeaseRequester(
                LeaseTerms(duration=op_deadline, max_remotes=4))
            op = client.rd_at(handle, pattern, requester=requester)
            point.started += 1
            started_at = sim.now
            op.event.add_callback(lambda event, op=op: record(op, started_at))

    for client in nodes:
        sim.spawn(client_proc(client))
    # Grace period: let in-flight operations run out their deadlines.
    sim.run(until=duration + op_deadline + 0.5)

    point.goodput = point.satisfied / duration
    point.served = server.server.served
    point.sheds = server.server.sheds
    point.stale_dropped = server.server.stale_dropped
    if server.server.admission is not None:
        point.shed_by_reason = dict(server.server.admission.shed_by_reason)
    if registry_sink is not None:
        registry_sink.append(sim.obs.registry)
    return point


def run_overload_sweep(seed: int, *, admission: bool,
                       multipliers: tuple = (0.25, 0.5, 1.0, 1.5, 2.0),
                       duration: float = DURATION,
                       clients: int = CLIENTS,
                       serve_cost: float = SERVE_COST,
                       serve_workers: int = SERVE_WORKERS,
                       op_deadline: float = OP_DEADLINE,
                       queue_bound: int = QUEUE_BOUND,
                       fairness: bool = True) -> OverloadSweep:
    """Sweep offered load across multiples of the server's capacity."""
    capacity = serve_workers / serve_cost
    sweep = OverloadSweep(admission=admission, capacity=capacity)
    for mult in multipliers:
        sweep.points.append(run_overload_point(
            seed, mult * capacity, admission=admission, duration=duration,
            clients=clients, serve_cost=serve_cost,
            serve_workers=serve_workers, op_deadline=op_deadline,
            queue_bound=queue_bound, fairness=fairness))
    return sweep
