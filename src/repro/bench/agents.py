"""The T12 agent-coordination scenario: blackboard vs centralized master
under churn.

Two arms run the same streaming task workload plus periodic ballots for
``DURATION`` virtual seconds, with and without 20% agent downtime:

**blackboard** (:class:`repro.apps.agents.AgentSwarm`)
    Tasks are durable tuples on an admission-controlled board; agents
    bid/claim via leased ``inp``, lease expiry re-offers abandoned work,
    completion is gated by a token (exactly-once by construction), and
    ballots settle by rd-quorum with a decision token.  Nobody schedules
    anybody: a crashed agent's claims simply expire.

**central**
    The classic master/worker baseline: one master assigns each task to
    a *specific* worker (a directed assignment tuple naming it), workers
    return results with a directed ``out_at``, and the master reassigns
    any task whose result has not arrived within ``REASSIGN_AFTER``
    seconds.  Ballots are also master-mediated: the master hands each
    worker a directed vote request and tallies replies itself.  The
    master must *notice* each crash through a timeout before recovering,
    so churn shows up as reassignment latency — and a slow (not dead)
    worker racing its reassigned copy can produce duplicate completions,
    which the blackboard's token gate rules out.

Both arms share a seeded discrete-event simulation, so every metric is
exactly reproducible; ``benchmarks/agents_baseline.py`` gates them in CI
against the committed ``BENCH_agents.json``.

Measured per (arm, churn) point:

* **goodput** — tasks completed per virtual second;
* **duplicates** — completion records beyond the first per task
  (must be 0 for the blackboard arm);
* **fairness** — Jain's index over per-worker completion counts;
* **max_peer_debt** — the worst ``admission_peer_debt`` gauge on the
  board (blackboard arm only): how hard the busiest agent leaned on the
  board's fair-share bucket;
* **consensus** — ballots decided, and mean time from ballot open to
  the recorded decision.

Used by both ``benchmarks/test_t12_agents.py`` (assertions + committed
report) and ``python -m repro.cli agents`` (interactive).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple as Tup

from repro.apps.agents import (
    AgentSwarm,
    SwarmConfig,
    jain_fairness,
)
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import Network, VisibilityGraph
from repro.sim import Simulator
from repro.tuples import Formal, Pattern, Tuple

__all__ = [
    "AgentsPoint",
    "T12Result",
    "run_blackboard_point",
    "run_central_point",
    "run_t12",
]

#: Default scenario shape (a point runs in a couple of wall seconds).
AGENTS = 6             # claimant agents (the board never crashes; nor does
                       # the central master — the comparison is fair)
DURATION = 24.0        # virtual seconds of offered work per point
CHURN = 0.2            # target fraction of time each agent spends down
MEAN_DOWNTIME = 1.5    # mean crash outage, seconds (uptime follows churn)
WORK_MEAN = 0.15       # mean virtual work per task
STREAM_INFLIGHT = 12   # blackboard supply: tasks kept outstanding
BALLOTS = 3            # consensus rounds opened at spread times
REASSIGN_AFTER = 2.0   # central master's liveness timeout per assignment
VOTE_OPTIONS = ("alpha", "beta", "gamma")

# Central-arm tuple vocabulary (master's space only).
ASSIGN_TAG = "cassign"
RESULT_TAG = "cres"
VOTE_REQ_TAG = "cvq"
VOTE_REPLY_TAG = "cvote"


def _req(duration: float, max_remotes: int = 16) -> SimpleLeaseRequester:
    return SimpleLeaseRequester(LeaseTerms(duration=duration,
                                           max_remotes=max_remotes))


def _chaos_loss() -> float:
    """Extra i.i.d. frame loss for the nightly soak (``REPRO_CHAOS_LOSS``).

    Zero in the PR gate (keeping the committed baseline exact); the
    nightly job sets 0.25 to stack a lossy wire on top of agent churn —
    the exactly-once and goodput claims must survive both at once.
    """
    return float(os.environ.get("REPRO_CHAOS_LOSS", "0") or 0.0)


@dataclass
class AgentsPoint:
    """Outcome of one (arm, churn) run."""

    arm: str                     # "blackboard" | "central"
    churn: float                 # target downtime fraction
    duration: float
    completed: int = 0           # distinct tasks completed
    goodput: float = 0.0         # completed / duration, tasks/s
    duplicates: int = 0          # completion records beyond the first
    fairness: float = 1.0        # Jain's index over per-worker completions
    max_peer_debt: float = 0.0   # worst admission fair-share debt (board)
    consensus_opened: int = 0
    consensus_decided: int = 0
    consensus_mean: float = 0.0  # mean open -> decision latency, seconds
    recoveries: int = 0          # re-offers (blackboard) / reassigns (central)
    crashes: int = 0
    completed_by: Dict[str, int] = field(default_factory=dict)

    def finish(self, decided_latencies: List[float]) -> None:
        """Fill the derived metrics once the raw counters are in."""
        self.goodput = self.completed / self.duration
        self.consensus_decided = len(decided_latencies)
        if decided_latencies:
            self.consensus_mean = (sum(decided_latencies)
                                   / len(decided_latencies))
        self.fairness = jain_fairness(list(self.completed_by.values())
                                      or [1.0])


@dataclass
class T12Result:
    """All four points of one T12 run, plus the headline ratios."""

    blackboard_zero: AgentsPoint
    blackboard_churn: AgentsPoint
    central_zero: AgentsPoint
    central_churn: AgentsPoint

    @property
    def points(self) -> List[AgentsPoint]:
        return [self.blackboard_zero, self.blackboard_churn,
                self.central_zero, self.central_churn]

    @property
    def blackboard_goodput_ratio(self) -> float:
        """Churn-arm goodput as a fraction of the zero-churn arm's."""
        if self.blackboard_zero.goodput <= 0:
            return 0.0
        return (self.blackboard_churn.goodput
                / self.blackboard_zero.goodput)

    @property
    def central_goodput_ratio(self) -> float:
        if self.central_zero.goodput <= 0:
            return 0.0
        return self.central_churn.goodput / self.central_zero.goodput


def _churn_means(churn: float) -> Tup[float, float]:
    """(mean_uptime, mean_downtime) hitting the target downtime fraction."""
    mean_down = MEAN_DOWNTIME
    mean_up = mean_down * (1.0 - churn) / churn
    return mean_up, mean_down


def _board_config() -> TiamatConfig:
    """The blackboard board: admission-controlled with fair-share pricing
    on, so per-peer debt gauges exist and a hot agent cannot starve the
    rest of the swarm's access to the board."""
    return TiamatConfig(serve_cost=0.002, serve_workers=4,
                        admission_enabled=True,
                        admission_queue_bound=128,
                        admission_fairness=True)


def run_blackboard_point(seed: int, *, churn: float = 0.0,
                         agents: int = AGENTS,
                         duration: float = DURATION,
                         work_mean: float = WORK_MEAN,
                         stream_inflight: int = STREAM_INFLIGHT,
                         ballots: int = BALLOTS,
                         registry_sink: Optional[list] = None) -> AgentsPoint:
    """One blackboard run: streaming supply, spread ballots, optional churn.

    ``registry_sink``, when given, receives the simulation's metrics
    registry after the run (the benchmark snapshots it).
    """
    sim = Simulator(seed=seed)
    vis = VisibilityGraph()
    net = Network(sim, visibility=vis, loss_rate=_chaos_loss())
    swarm = AgentSwarm(
        sim, net, vis,
        agents=tuple(f"w{i}" for i in range(agents)),
        config=SwarmConfig(work_mean=work_mean,
                           stream_inflight=stream_inflight),
        board_config=_board_config())
    swarm.submit_root("t12", fanout=4, depth=2)
    for qid in range(ballots):
        at = duration * (qid + 1) / (ballots + 1)
        sim.schedule_at(at, lambda qid=qid: swarm.ask_vote(
            qid, list(VOTE_OPTIONS)))
    swarm.ask_question(0, "status")
    if churn > 0:
        mean_up, mean_down = _churn_means(churn)
        swarm.auto_churn(mean_up, mean_down)
    swarm.start()
    sim.run(until=duration)
    swarm.stop()

    point = AgentsPoint(arm="blackboard", churn=churn, duration=duration)
    point.completed = len(swarm.completed)
    point.duplicates = swarm.stats.duplicates
    point.recoveries = swarm.stats.reoffers
    point.crashes = swarm.stats.crashes
    point.consensus_opened = len(swarm.posted_votes)
    point.completed_by = {name: swarm.stats.completed_by.get(name, 0)
                          for name in swarm.workers}
    admission = swarm.board.server.admission
    if admission is not None and admission.fair_share is not None:
        point.max_peer_debt = max(
            (debt for _, debt in admission.fair_share.debts()),
            default=0.0)
    point.finish([state["decided_at"] - state["asked_at"]
                  for state in swarm.decisions.values()
                  if state["choice"] is not None])
    if registry_sink is not None:
        registry_sink.append(sim.obs.registry)
    return point


# ---------------------------------------------------------------------------
# Central master/worker baseline
# ---------------------------------------------------------------------------
class _CentralMaster:
    """The baseline's single point of coordination (and of failure).

    Owns the only durable space: assignment tuples go out *named for one
    worker*, results and votes come back via directed ``out_at``.  All
    recovery knowledge lives here — a crashed worker is only discovered
    when its assignment times out.
    """

    def __init__(self, sim: Simulator, net: Network, vis: VisibilityGraph,
                 *, agents: int, work_mean: float,
                 reassign_after: float) -> None:
        self.sim = sim
        self.net = net
        self.vis = vis
        self.work_mean = work_mean
        self.reassign_after = reassign_after
        self.master = TiamatInstance(sim, net, "master")
        self.worker_names = [f"w{i}" for i in range(agents)]
        self.registry: Dict[str, TiamatInstance] = {}
        self.running = True
        self.crashes = 0
        self.reassigns = 0
        self.next_tid = 0
        self.assigned: Dict[int, Tup[str, float]] = {}  # tid -> (worker, at)
        self.done_counts: Dict[int, int] = {}
        self.completed: Dict[int, float] = {}
        self.completed_by: Dict[str, int] = {}
        self.ballots: Dict[int, Dict[str, object]] = {}
        vis.connect_clique(["master"] + self.worker_names)
        for index, name in enumerate(self.worker_names):
            self._spawn_worker(name, index)

    # -- lifecycle ----------------------------------------------------
    def _spawn_worker(self, name: str, index: int) -> None:
        inst = TiamatInstance(self.sim, self.net, name)
        self.registry[name] = inst
        self.sim.spawn(self._worker_proc(name, index, inst))

    def crash_worker(self, name: str) -> None:
        inst = self.registry.pop(name, None)
        if inst is not None:
            inst.shutdown()
            self.crashes += 1

    def revive_worker(self, name: str) -> None:
        if name in self.registry:
            return
        for other in ["master"] + self.worker_names:
            if other != name:
                self.vis.set_visible(name, other, True)
        self._spawn_worker(name, self.worker_names.index(name))

    def churn_proc(self, name: str, mean_up: float, mean_down: float, rng):
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / mean_up))
            if not self.running:
                return
            if name in self.registry:
                self.crash_worker(name)
            yield self.sim.timeout(rng.expovariate(1.0 / mean_down))
            if not self.running:
                return
            self.revive_worker(name)

    def open_ballot(self, qid: int) -> None:
        self.ballots[qid] = {"asked_at": self.sim.now, "choice": None,
                             "decided_at": None,
                             "votes": {}}  # worker -> choice

    # -- master -------------------------------------------------------
    def _assign(self, tid: int, worker: str) -> None:
        self.master.out(Tuple(ASSIGN_TAG, worker, tid, f"c{tid}"),
                        requester=_req(600.0))
        self.assigned[tid] = (worker, self.sim.now)

    def master_proc(self):
        sim = self.sim
        rr = 0
        quorum = len(self.worker_names) // 2 + 1
        while self.running:
            # 1. Collect results (and votes) the workers pushed at us.
            for _ in range(32):
                op = self.master.inp(
                    Pattern(RESULT_TAG, Formal(int), Formal(str)),
                    requester=_req(0.6))
                got = yield op.event
                if got is None:
                    break
                tid, worker = got.fields[1], got.fields[2]
                self.done_counts[tid] = self.done_counts.get(tid, 0) + 1
                if tid not in self.completed:
                    self.completed[tid] = sim.now
                    self.completed_by[worker] = (
                        self.completed_by.get(worker, 0) + 1)
                self.assigned.pop(tid, None)
            for _ in range(16):
                op = self.master.inp(
                    Pattern(VOTE_REPLY_TAG, Formal(int), Formal(str),
                            Formal(str)),
                    requester=_req(0.6))
                got = yield op.event
                if got is None:
                    break
                qid, worker, choice = (got.fields[1], got.fields[2],
                                       got.fields[3])
                state = self.ballots.get(qid)
                if state is not None:
                    state["votes"].setdefault(worker, choice)  # type: ignore[union-attr]
            # 2. Tally open ballots; re-nag non-voters with short-lease
            #    requests (a crashed worker's pending request survives on
            #    the master's space, but one it consumed died with it).
            for qid, state in self.ballots.items():
                votes: Dict[str, str] = state["votes"]  # type: ignore[assignment]
                if state["choice"] is None and len(votes) >= quorum:
                    counts: Dict[str, int] = {}
                    for choice in votes.values():
                        counts[choice] = counts.get(choice, 0) + 1
                    winner = max(sorted(counts), key=lambda c: counts[c])
                    state["choice"] = winner
                    state["decided_at"] = sim.now
                elif state["choice"] is None:
                    for worker in self.worker_names:
                        if worker not in votes:
                            self.master.out(
                                Tuple(VOTE_REQ_TAG, worker, qid,
                                      ",".join(VOTE_OPTIONS)),
                                requester=_req(0.9))
            # 3. Reassign anything that timed out (the only way this
            #    design learns about a crash).
            for tid, (worker, at) in list(self.assigned.items()):
                if tid in self.completed:
                    continue
                if sim.now - at > self.reassign_after:
                    rr += 1
                    self.reassigns += 1
                    self._assign(tid, self.worker_names[
                        rr % len(self.worker_names)])
            # 4. Keep every worker loaded with one outstanding task.
            outstanding = {worker for (worker, _) in self.assigned.values()}
            for worker in self.worker_names:
                if worker not in outstanding:
                    rr += 1
                    tid = self.next_tid
                    self.next_tid += 1
                    self._assign(tid, worker)
            yield sim.timeout(0.1)

    # -- workers ------------------------------------------------------
    def _alive(self, name: str, inst: TiamatInstance) -> bool:
        return self.registry.get(name) is inst

    def _worker_proc(self, name: str, index: int, inst: TiamatInstance):
        sim = self.sim
        rng = sim.rng(f"central/work/{name}")
        master_handle = self.master.handle()
        while self.running and self._alive(name, inst):
            # Vote if the master asked us to (non-destructive misses are
            # cheap; a consumed request we crash on is gone for good).
            op = inst.inp_at(master_handle,
                             Pattern(VOTE_REQ_TAG, name, Formal(int),
                                     Formal(str)),
                             requester=_req(0.6))
            got = yield op.event
            if not (self.running and self._alive(name, inst)):
                return
            if got is not None:
                qid = got.fields[2]
                options = got.fields[3].split(",")
                choice = options[(index + qid) % len(options)]
                yield inst.out_at(master_handle,
                                  Tuple(VOTE_REPLY_TAG, qid, name, choice))
                if not (self.running and self._alive(name, inst)):
                    return
            # Take our named assignment, do the work, push the result.
            op = inst.inp_at(master_handle,
                             Pattern(ASSIGN_TAG, name, Formal(int),
                                     Formal(str)),
                             requester=_req(0.6))
            got = yield op.event
            if not (self.running and self._alive(name, inst)):
                return
            if got is None:
                yield sim.timeout(0.05)
                continue
            tid = got.fields[2]
            yield sim.timeout(rng.expovariate(1.0 / self.work_mean))
            if not (self.running and self._alive(name, inst)):
                return
            yield inst.out_at(master_handle, Tuple(RESULT_TAG, tid, name))


def run_central_point(seed: int, *, churn: float = 0.0,
                      agents: int = AGENTS,
                      duration: float = DURATION,
                      work_mean: float = WORK_MEAN,
                      ballots: int = BALLOTS,
                      reassign_after: float = REASSIGN_AFTER) -> AgentsPoint:
    """One centralized master/worker run with the same offered shape."""
    sim = Simulator(seed=seed)
    vis = VisibilityGraph()
    net = Network(sim, visibility=vis, loss_rate=_chaos_loss())
    central = _CentralMaster(sim, net, vis, agents=agents,
                             work_mean=work_mean,
                             reassign_after=reassign_after)
    for qid in range(ballots):
        at = duration * (qid + 1) / (ballots + 1)
        sim.schedule_at(at, lambda qid=qid: central.open_ballot(qid))
    if churn > 0:
        mean_up, mean_down = _churn_means(churn)
        rng = sim.rng("central/churn")
        for name in central.worker_names:
            sim.spawn(central.churn_proc(name, mean_up, mean_down, rng))
    sim.spawn(central.master_proc())
    sim.run(until=duration)
    central.running = False

    point = AgentsPoint(arm="central", churn=churn, duration=duration)
    point.completed = len(central.completed)
    point.duplicates = sum(count - 1
                           for count in central.done_counts.values()
                           if count > 1)
    point.recoveries = central.reassigns
    point.crashes = central.crashes
    point.consensus_opened = len(central.ballots)
    point.completed_by = {name: central.completed_by.get(name, 0)
                          for name in central.worker_names}
    point.finish([state["decided_at"] - state["asked_at"]  # type: ignore[operator]
                  for state in central.ballots.values()
                  if state["choice"] is not None])
    return point


def run_t12(seed: int, *, churn: float = CHURN, agents: int = AGENTS,
            duration: float = DURATION,
            registry_sink: Optional[list] = None) -> T12Result:
    """All four (arm, churn) points of the T12 comparison."""
    return T12Result(
        blackboard_zero=run_blackboard_point(
            seed, churn=0.0, agents=agents, duration=duration),
        blackboard_churn=run_blackboard_point(
            seed, churn=churn, agents=agents, duration=duration,
            registry_sink=registry_sink),
        central_zero=run_central_point(
            seed, churn=0.0, agents=agents, duration=duration),
        central_churn=run_central_point(
            seed, churn=churn, agents=agents, duration=duration),
    )
