"""Benchmarks for the asyncio UDP runtime (``BENCH_aio.json``).

Two planes, gated differently:

* **Codec hot path** (gated, lower-is-better ns): the zero-copy frame
  path the aio runtime actually runs — pooled-buffer encode
  (:func:`repro.tuples.serialization.encode_tuple_into` /
  ``encode_payload_into``) and buffer-aware decode straight off the
  received datagram, no intermediate ``bytes`` copies.  The headline
  ``aio_codec_roundtrip_ns`` is the ISSUE-9 target (≤2500 ns per tuple,
  down from ~5300 ns before the zero-copy work).
* **Loopback throughput** (informational, *not* gated): sustained echo
  round-trips/s over real UDP sockets on 127.0.0.1.  Higher is better,
  and wildly runner-dependent — which is exactly why it lives in the
  document's ``info`` section where :func:`repro.bench.perf.compare`
  never sees it, per the M1 gate policy (the gate only eats
  lower-is-better medians).

``benchmarks/aio_baseline.py`` serialises both into ``BENCH_aio.json``
with the same ``--check`` / ``--rebaseline`` contract as the micro-ops
gate.
"""

from __future__ import annotations

from repro.bench.perf import bench_ns, sample_tuples

#: ISSUE 9 acceptance bar for the gated round-trip metric (ns/tuple).
ROUNDTRIP_TARGET_NS = 2500.0


# ----------------------------------------------------------------------
# Gated: the zero-copy codec hot path
# ----------------------------------------------------------------------
def measure_aio_codec(slowdown: int = 1) -> dict:
    """ns/op for the pooled encode, buffer decode, and full round-trip.

    The round-trip mirrors one datagram's life: append the tuple's wire
    form to a reused (pooled) buffer, then decode it back from a
    ``memoryview`` of that buffer — the exact code path
    ``AioTiamatNode._flush_to`` and ``_on_datagram`` execute, including
    the encode-once memoization that makes re-sending a tuple a memcpy.
    """
    from repro.tuples.model import Tuple
    from repro.tuples.serialization import (
        decode_payload_binary,
        decode_tuple_binary,
        encode_payload_into,
        encode_tuple_into,
    )

    tuples = sample_tuples()
    n = len(tuples)
    buf = bytearray()

    def roundtrip():
        # bytes(buf) is the arriving datagram: asyncio hands the receive
        # side a fresh bytes object, which is what the decoder walks.
        for tup in tuples:
            del buf[:]
            encode_tuple_into(buf, tup)
            decode_tuple_binary(bytes(buf))

    def encode_only():
        for tup in tuples:
            del buf[:]
            encode_tuple_into(buf, tup)

    # A representative query-response frame pair, as the wire carries it.
    response = {"k": "r", "id": 7, "st": "hit",
                "t": Tuple("result", 42, True, 3.14159, "body " * 8)}
    frame_buf = bytearray()
    encode_payload_into(frame_buf, response)
    # asyncio delivers each datagram as a fresh bytes object; decode that.
    frame_bytes = bytes(frame_buf)

    def frame_decode():
        decode_payload_binary(frame_bytes)

    def frame_encode():
        fresh = bytearray()
        encode_payload_into(fresh, response)

    return {
        "aio_codec_roundtrip_ns": bench_ns(roundtrip, slowdown=slowdown) / n,
        "aio_codec_encode_ns": bench_ns(encode_only, slowdown=slowdown) / n,
        "aio_frame_decode_ns": bench_ns(frame_decode, slowdown=slowdown),
        "aio_frame_encode_ns": bench_ns(frame_encode, slowdown=slowdown),
    }


# ----------------------------------------------------------------------
# Informational: real-socket loopback throughput
# ----------------------------------------------------------------------
def measure_loopback(count: int = 3000, concurrency: int = 32) -> dict:
    """Sustained echo round-trips/s over UDP loopback (info, not gated).

    ``concurrency`` echoes are kept in flight at once on the event loop
    (one ``asyncio.gather`` wave at a time), so the number reflects the
    runtime's pipelined throughput rather than a single request's RTT.
    A second figure measures the synchronous facade (one blocking echo
    at a time — every call crosses the thread boundary), which is the
    floor an application using the sync API will see.
    """
    import asyncio
    import time

    from repro.runtime.aio import AioNodeRegistry, AioTiamatNode
    from repro.tuples.model import Tuple

    with AioNodeRegistry() as registry:
        a = AioTiamatNode(registry, "a")
        b = AioTiamatNode(registry, "b")
        registry.set_visible("a", "b")
        payload = Tuple("echo", 1, "payload")

        async def pipelined() -> float:
            start = time.perf_counter()
            done = 0
            while done < count:
                wave = min(concurrency, count - done)
                results = await asyncio.gather(
                    *(a.a_echo(b.addr, payload) for _ in range(wave)))
                done += wave
                if any(r is None for r in results):  # pragma: no cover
                    raise RuntimeError("echo lost on loopback")
            return count / (time.perf_counter() - start)

        pipelined_ops = registry.submit(pipelined()).result()

        sync_count = max(count // 10, 100)
        start = time.perf_counter()
        for _ in range(sync_count):
            a.echo(b.addr, payload)
        sync_ops = sync_count / (time.perf_counter() - start)

        stats = a.stats()
        return {
            "loopback_echo_ops_per_s": round(pipelined_ops, 1),
            "loopback_sync_echo_ops_per_s": round(sync_ops, 1),
            "echoes": count + sync_count,
            "concurrency": concurrency,
            "frames_sent": stats["frames_sent"],
            "batches_sent": stats["batches_sent"],
            "bytes_sent": stats["bytes_sent"],
            "retransmits": stats["retransmits"],
            "buffer_pool": stats["pool"],
        }


def collect(slowdown: int = 1, loopback_count: int = 3000) -> dict:
    """Both planes: ``{"metrics": gated ns, "info": throughput + pool}``."""
    return {
        "metrics": measure_aio_codec(slowdown=slowdown),
        "info": measure_loopback(count=loopback_count),
    }
