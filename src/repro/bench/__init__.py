"""Benchmark harness: adapters, scenario builders, and report formatting.

Used by the scripts in ``benchmarks/`` to regenerate every figure and
evaluative claim of the paper (see the experiment index in DESIGN.md and
the recorded outcomes in EXPERIMENTS.md).
"""

from repro.bench.adapter import CoreLimeAgentAdapter, TiamatSpaceAdapter
from repro.bench.reporting import Table, format_series
from repro.bench.scenarios import SYSTEMS, build_system, clique_names

__all__ = [
    "CoreLimeAgentAdapter",
    "SYSTEMS",
    "Table",
    "TiamatSpaceAdapter",
    "build_system",
    "clique_names",
    "format_series",
]
