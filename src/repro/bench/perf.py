"""Micro-benchmark measurement + regression-gate logic (``repro.perf``).

This module is the single source of truth for the repo's performance
trajectory.  It measures four hot paths:

* **codec** — encode+decode round-trip ns/op for the tag-first JSON codec
  and the compact binary codec, over a representative tuple mix (nested
  tuples, bytes fields, unicode strings, big ints);
* **store scan** — ns per ``find`` against a populated store, both uncached
  (cache cleared between calls) and cached (repeat query, unchanged store);
* **flight append** — amortised ns per flight-recorder ring append
  (``repro.obs.flight``), the per-event tax of the always-on black box;
* **wire** — frames/op and bytes/op for the T1 MRU probe workload (the
  paper's §3.1.3 cached-visibility scenario) under the *baseline* wire
  configuration (JSON, one frame per send, dedicated acks) and the *fast*
  configuration (binary codec + frame batching + piggybacked acks).

Every metric is **lower-is-better**.  ``collect()`` returns a flat
``{metric: value}`` dict; ``benchmarks/perf_baseline.py`` serialises it to
``BENCH_micro.json`` and the CI perf gate compares a fresh run against the
committed baseline with :func:`compare` (fail on >25% median regression).

Timing metrics are medians of several repeats of a calibrated inner loop,
which makes them stable enough for a 25% gate on shared CI runners; the
wire metrics come from a seeded discrete-event simulation and are exactly
reproducible.

The ``slowdown`` knob exists for one purpose: proving the gate trips.  It
multiplies the work inside every timed loop (running the operation N times
per iteration), producing an honest N× measurement without touching the
production code paths.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Optional

SCHEMA_VERSION = 1

#: Relative regression tolerated by the gate before failing (25%).
DEFAULT_TOLERANCE = 0.25


# ----------------------------------------------------------------------
# Timing core
# ----------------------------------------------------------------------
def bench_ns(fn: Callable[[], object], *, repeats: int = 5,
             min_time_s: float = 0.05, slowdown: int = 1) -> float:
    """Median ns per call of ``fn`` over ``repeats`` calibrated runs.

    The inner-loop count is auto-calibrated so each run lasts at least
    ``min_time_s`` — long enough to drown out timer resolution and
    scheduler noise.  ``slowdown`` runs ``fn`` that many times per counted
    iteration (see module docstring).
    """
    # Calibrate: grow the loop until one run is long enough to time.
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time_s or number >= 1_000_000:
            break
        number = max(number * 2, int(number * min_time_s / max(elapsed, 1e-9)))
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            for _ in range(slowdown):
                fn()
        elapsed = time.perf_counter() - start
        samples.append(elapsed / number * 1e9)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# Workload fixtures
# ----------------------------------------------------------------------
def sample_tuples():
    """A representative tuple mix for codec benchmarks."""
    from repro.tuples.model import Tuple

    return [
        Tuple("request", 42, "http://example.org/index.html"),
        Tuple("result", 42, True, 3.14159, "body " * 8),
        Tuple("nested", Tuple("inner", 1, 2.0), Tuple("deep", Tuple("x", 1))),
        Tuple("blob", b"\x00\x01\x02" * 20, 2 ** 48, -17),
        Tuple("unicode", "héllo wörld ✓", 0, False),
    ]


def measure_codec(slowdown: int = 1) -> dict:
    """Encode+decode round-trip ns/op for both wire codecs.

    Both sides measure the full structure→wire-bytes→structure path: the
    JSON codec's tag lists still have to pass through ``json.dumps`` /
    ``json.loads`` to become bytes on a real wire (that is exactly what
    the network's byte accounting prices), while the binary codec's output
    already *is* the wire format.
    """
    import json as _json

    from repro.tuples.serialization import (
        decode_tuple,
        decode_tuple_binary,
        encode_tuple,
        encode_tuple_binary,
    )

    tuples = sample_tuples()

    def json_roundtrip():
        for tup in tuples:
            wire = _json.dumps(encode_tuple(tup), separators=(",", ":"))
            decode_tuple(_json.loads(wire))

    def binary_roundtrip():
        for tup in tuples:
            decode_tuple_binary(encode_tuple_binary(tup))

    n = len(tuples)
    return {
        "codec_json_roundtrip_ns": bench_ns(json_roundtrip, slowdown=slowdown) / n,
        "codec_binary_roundtrip_ns": bench_ns(binary_roundtrip, slowdown=slowdown) / n,
    }


def measure_scan(slowdown: int = 1, population: int = 2000) -> dict:
    """Store scan ns/op, uncached (cache cleared per call) and cached."""
    from repro.tuples.model import Pattern, Tuple
    from repro.tuples.store import TupleStore

    store = TupleStore()
    for i in range(population):
        store.add(Tuple("job" if i % 10 else "rare", i, float(i)))
    pattern = Pattern("rare", int, float)

    def uncached():
        store._scan_cache.clear()
        store.find(pattern)

    def cached():
        store.find(pattern)

    store.find(pattern)  # warm the cache for the cached loop
    return {
        "scan_uncached_ns": bench_ns(uncached, slowdown=slowdown),
        "scan_cached_ns": bench_ns(cached, slowdown=slowdown),
    }


def run_mru_workload(fast: bool, seed: int = 4, n_peers: int = 8,
                     n_ops: int = 40) -> dict:
    """The T1 MRU probe workload; returns frames/op and bytes/op.

    The origin repeatedly ``in``s a tuple that a consistently visible
    holder keeps replenishing — the paper's §3.1.3 cached-visibility-list
    scenario, made destructive so the claim-resolution frames travel the
    reliable sublayer (where ack piggybacking earns its keep).

    ``fast=False`` is the baseline wire configuration (JSON codec, one
    frame per send, dedicated acks); ``fast=True`` enables the binary
    codec, frame batching, and piggybacked acks.  Both runs use the same
    seed; the simulation is deterministic.
    """
    from repro.core.config import TiamatConfig
    from repro.core.instance import TiamatInstance
    from repro.leasing import LeaseTerms, SimpleLeaseRequester
    from repro.net.network import Network
    from repro.sim.kernel import Simulator
    from repro.tuples.model import Pattern, Tuple

    sim = Simulator(seed=seed)
    net = Network(sim, codec="binary" if fast else "json", batching=fast)
    config = TiamatConfig(comms_strategy="mru", ack_piggyback=fast,
                          wire_codec="binary" if fast else "json")
    names = ["origin", "holder"] + [f"peer{i}" for i in range(n_peers)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)

    holder_terms = SimpleLeaseRequester(LeaseTerms(duration=100_000.0))
    instances["holder"].out(Tuple("wanted", 0), requester=holder_terms)

    satisfied = 0
    frames_before = net.stats.total_messages
    bytes_before = net.stats.total_bytes

    def driver():
        nonlocal satisfied
        for i in range(n_ops):
            op = instances["origin"].in_(
                Pattern("wanted", int),
                requester=SimpleLeaseRequester(
                    LeaseTerms(duration=5.0, max_remotes=n_peers + 2)))
            result = yield op.event
            if result is not None:
                satisfied += 1
            instances["holder"].out(Tuple("wanted", i + 1),
                                    requester=holder_terms)
            yield sim.timeout(1.0)

    sim.spawn(driver())
    sim.run(until=10_000.0)

    return {
        "frames_per_op": (net.stats.total_messages - frames_before) / n_ops,
        "bytes_per_op": (net.stats.total_bytes - bytes_before) / n_ops,
        "satisfied": satisfied,
    }


def measure_flight(slowdown: int = 1) -> dict:
    """Amortised ns per flight-ring append (the always-on recorder tax).

    The acceptance bar is "cheap enough to leave on": one append is index
    arithmetic plus six list stores.  Timed as bursts of 64 appends —
    enough to cycle the ring through wraparound — and reported per
    append.
    """
    from repro.obs.flight import FlightRing

    ring = FlightRing("bench", capacity=256)
    burst = 64

    def appends():
        append = ring.append
        for i in range(burst):
            append(1.5, "send", "a#1", "query", "peer", None)

    return {
        "flight_append_ns": bench_ns(appends, slowdown=slowdown) / burst,
    }


def measure_wire() -> dict:
    """Baseline vs fast wire configuration on the T1 MRU workload."""
    base = run_mru_workload(fast=False)
    fast = run_mru_workload(fast=True)
    if base["satisfied"] != fast["satisfied"]:  # pragma: no cover - invariant
        raise RuntimeError(
            "fast wire path changed operation outcomes: "
            f"{base['satisfied']} vs {fast['satisfied']} satisfied")
    return {
        "mru_frames_per_op_baseline": base["frames_per_op"],
        "mru_frames_per_op_fast": fast["frames_per_op"],
        "mru_bytes_per_op_baseline": base["bytes_per_op"],
        "mru_bytes_per_op_fast": fast["bytes_per_op"],
    }


def collect(slowdown: int = 1) -> dict:
    """All metrics as one flat lower-is-better dict."""
    metrics: dict = {}
    metrics.update(measure_codec(slowdown=slowdown))
    metrics.update(measure_scan(slowdown=slowdown))
    metrics.update(measure_flight(slowdown=slowdown))
    metrics.update(measure_wire())
    return metrics


# ----------------------------------------------------------------------
# Gate logic
# ----------------------------------------------------------------------
def compare(baseline: dict, current: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Regression report: one line per metric over tolerance; empty = pass.

    Metrics present in only one of the two dicts are reported too — a
    silently vanished metric is how a gate rots.
    """
    problems = []
    base_metrics = baseline.get("metrics", baseline)
    cur_metrics = current.get("metrics", current)
    for name in sorted(base_metrics):
        if name not in cur_metrics:
            problems.append(f"metric {name!r} missing from current run")
            continue
        old, new = base_metrics[name], cur_metrics[name]
        if old <= 0:
            continue  # degenerate baseline; nothing meaningful to gate
        ratio = new / old
        if ratio > 1.0 + tolerance:
            problems.append(
                f"{name}: {new:.4g} vs baseline {old:.4g} "
                f"({(ratio - 1.0) * 100:+.1f}%, tolerance {tolerance:.0%})")
    for name in sorted(cur_metrics):
        if name not in base_metrics:
            problems.append(
                f"new metric {name!r} not in baseline (rebaseline to adopt)")
    return problems


def render_table(metrics: dict, baseline: Optional[dict] = None) -> str:
    """Fixed-width report of the metric dict (optionally vs a baseline)."""
    from repro.bench.reporting import Table

    headers = ["metric", "value"]
    if baseline is not None:
        headers += ["baseline", "delta"]
    table = Table("micro-ops perf baseline", headers,
                  caption="all metrics lower-is-better")
    base_metrics = (baseline or {}).get("metrics", baseline or {})
    for name in sorted(metrics):
        row = [name, metrics[name]]
        if baseline is not None:
            old = base_metrics.get(name)
            if old:
                row += [old, f"{(metrics[name] / old - 1.0) * 100:+.1f}%"]
            else:
                row += ["-", "-"]
        table.add_row(*row)
    return table.render()
