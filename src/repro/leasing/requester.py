"""Lease requesters: the application's side of the negotiation.

Section 3.1.1: "The leasing of operations is performed by applications
passing lease requester objects to the system along with their tuples.
These lease requester objects have the task of negotiating with the lease
manager inside Tiamat.  Firstly, a lease requester makes a request to the
lease manager.  The lease manager then informs the lease requester of what
lease it is willing to offer.  If the lease requester refuses this lease,
then the operation fails."
"""

from __future__ import annotations

from typing import Optional

from repro.leasing.lease import LeaseTerms


class LeaseRequester:
    """Protocol for negotiating a lease on the application's behalf.

    Subclass (or duck-type) with two methods: :meth:`desired` states what
    the application wants; :meth:`consider` decides whether the manager's
    counter-offer is acceptable.
    """

    def desired(self) -> LeaseTerms:  # pragma: no cover - abstract
        """The terms the application would like."""
        raise NotImplementedError

    def consider(self, offer: LeaseTerms) -> bool:  # pragma: no cover - abstract
        """Accept (True) or refuse (False) the manager's offer."""
        raise NotImplementedError


class SimpleLeaseRequester(LeaseRequester):
    """Ask for ``desired`` terms; accept any offer satisfying ``minimum``.

    With no ``minimum`` given, any offer is acceptable — the common case
    for applications that just want the system's best effort.
    """

    def __init__(self, desired: LeaseTerms, minimum: Optional[LeaseTerms] = None) -> None:
        self._desired = desired
        self._minimum = minimum

    def desired(self) -> LeaseTerms:
        return self._desired

    def consider(self, offer: LeaseTerms) -> bool:
        if self._minimum is None:
            return True
        return offer.satisfies(self._minimum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimpleLeaseRequester({self._desired!r}, minimum={self._minimum!r})"


class AcceptAnythingRequester(LeaseRequester):
    """The laissez-faire requester: unbounded desires, accepts any offer.

    Useful as a default for examples and for modelling applications that
    delegate resource decisions entirely to the infrastructure.
    """

    def desired(self) -> LeaseTerms:
        return LeaseTerms()

    def consider(self, offer: LeaseTerms) -> bool:
        return True
