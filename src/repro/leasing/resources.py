"""Resource factories controlled by the lease manager.

Section 3.1.1: "All resources that an instance wishes to manage (e.g.
threads, sockets) are allocated through factory objects controlled by the
lease manager.  This allows the lease manager to maintain control over the
amount of resources being consumed and allocate leases accordingly."

In the simulation, a resource is a counted pool: the factory hands out
tokens up to its capacity and reports utilisation back to the manager's
policy.  Tiamat instances allocate a "thread" token per in-flight remote
operation and a "socket" token per peer conversation, so resource pressure
genuinely shapes what leases get offered.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import LeaseError


class ResourceToken:
    """A unit of a managed resource, returned to the pool on release."""

    _ids = itertools.count(1)

    __slots__ = ("token_id", "factory", "released")

    def __init__(self, factory: "ResourceFactory") -> None:
        self.token_id = next(ResourceToken._ids)
        self.factory = factory
        self.released = False

    def release(self) -> None:
        """Return the unit to the pool (idempotent)."""
        if not self.released:
            self.released = True
            self.factory._return_token()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self.released else "held"
        return f"<ResourceToken #{self.token_id} {self.factory.name} {state}>"


class ResourceFactory:
    """A counted pool of one resource kind ("threads", "sockets", ...)."""

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise LeaseError(f"negative capacity for {name!r}")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self.peak = 0
        self.denials = 0

    def acquire(self) -> Optional[ResourceToken]:
        """Take one unit; None when the pool is exhausted."""
        if self.capacity is not None and self.in_use >= self.capacity:
            self.denials += 1
            return None
        self.in_use += 1
        self.peak = max(self.peak, self.in_use)
        return ResourceToken(self)

    @property
    def available(self) -> Optional[int]:
        """Units left (None = unbounded pool)."""
        if self.capacity is None:
            return None
        return self.capacity - self.in_use

    @property
    def utilisation(self) -> float:
        """Fraction of capacity in use (0.0 for unbounded pools)."""
        if self.capacity in (None, 0):
            return 0.0
        return self.in_use / self.capacity

    def _return_token(self) -> None:
        if self.in_use <= 0:
            raise LeaseError(f"double release on factory {self.name!r}")
        self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<ResourceFactory {self.name} {self.in_use}/{cap}>"
