"""The Tiamat leasing model: every operation is leased.

Section 2.5 of the paper defines a leasing discipline that goes beyond the
usual "tuples expire" found in JavaSpaces-style systems:

* **Every operation** — ``out``, ``eval``, ``in``, ``inp``, ``rd``, ``rdp``
  — must first negotiate a lease with the local instance; a refused lease
  means no work at all is done for the operation.
* Leases may be denominated in **time** and in **other resources**: the
  number of remote instances contacted, and bytes of storage occupied.
* Leases are **best-effort**, **non-transferable** across instances, and
  **revocable** as a last resort.
* Expiry semantics per operation: an expired out-tuple may be reclaimed at
  any time; an expired blocking ``in``/``rd`` stops waiting and returns
  nothing (the paper's deliberate "slight semantic alteration" that bounds
  resource consumption).

The negotiation protocol follows section 3.1.1: the application passes a
**lease requester** object along with its operation; the requester asks the
**lease manager** for terms, the manager makes an offer (or refuses), and
the requester accepts or rejects the offer.

Resources that an instance wishes to manage are allocated through **factory
objects** controlled by the lease manager (:mod:`repro.leasing.resources`),
so the manager always knows the instance's current commitment when deciding
what to offer.
"""

from repro.leasing.lease import Lease, LeaseState, LeaseTerms
from repro.leasing.requester import (
    AcceptAnythingRequester,
    LeaseRequester,
    SimpleLeaseRequester,
)
from repro.leasing.policy import (
    AdaptivePolicy,
    ConservativePolicy,
    DenyAllPolicy,
    GenerousPolicy,
    GrantPolicy,
)
from repro.leasing.resources import ResourceFactory, ResourceToken
from repro.leasing.manager import LeaseManager, OperationKind

__all__ = [
    "AcceptAnythingRequester",
    "AdaptivePolicy",
    "ConservativePolicy",
    "DenyAllPolicy",
    "GenerousPolicy",
    "GrantPolicy",
    "Lease",
    "LeaseManager",
    "LeaseRequester",
    "LeaseState",
    "LeaseTerms",
    "OperationKind",
    "ResourceFactory",
    "ResourceToken",
    "SimpleLeaseRequester",
]
