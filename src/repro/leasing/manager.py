"""The lease manager: first point of contact for every operation.

Figure 2 of the paper places the lease manager in front of everything: "the
lease manager deals with all of the resource management within the system
and is the first point of contact for any operation.  If a lease is
refused, no further work is carried out on the operation."

The manager here owns:

* the negotiation loop with the application's lease requester;
* the granting policy (pluggable, see :mod:`repro.leasing.policy`);
* storage accounting — storage-bearing leases (``out``/``eval``) commit
  bytes against the instance's capacity until they end;
* the resource factories ("threads", "sockets") other components allocate
  through;
* expiry timers and last-resort revocation.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.check import probes
from repro.errors import LeaseRefusedError, LeaseRejectedByRequesterError
from repro.leasing.lease import Lease, LeaseState, LeaseTerms
from repro.leasing.policy import GrantPolicy, GenerousPolicy, UsageSnapshot
from repro.leasing.requester import LeaseRequester
from repro.leasing.resources import ResourceFactory
from repro.sim.kernel import Simulator


class OperationKind(enum.Enum):
    """The six Linda operations, as lease subjects."""

    OUT = "out"
    EVAL = "eval"
    IN = "in"
    INP = "inp"
    RD = "rd"
    RDP = "rdp"

    @property
    def is_deposit(self) -> bool:
        """Whether this operation stores a tuple (consumes storage budget)."""
        return self in (OperationKind.OUT, OperationKind.EVAL)

    @property
    def is_blocking(self) -> bool:
        """Whether this operation may wait for a match."""
        return self in (OperationKind.IN, OperationKind.RD)


class LeaseManager:
    """Per-instance lease negotiation, accounting, and revocation."""

    def __init__(self, sim: Simulator, policy: Optional[GrantPolicy] = None,
                 storage_capacity: Optional[int] = None,
                 thread_capacity: Optional[int] = None,
                 socket_capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.policy = policy if policy is not None else GenerousPolicy()
        self.storage_capacity = storage_capacity
        self.storage_used = 0
        self.threads = ResourceFactory("threads", thread_capacity)
        self.sockets = ResourceFactory("sockets", socket_capacity)
        # Planted bug for oracle validation (tests only): with the
        # `lease_leak` canary on, ended leases are never removed from the
        # active table — the lease-conservation oracle must notice that
        # ``active`` contains non-ACTIVE leases.  Read once at construction
        # (see repro.check.probes).
        self._canary_lease_leak = probes.canary(probes.CANARY_LEASE_LEAK)
        self.active: dict[int, Lease] = {}
        # Extra live pressure signals (0..1) folded into the usage
        # snapshot policies see — e.g. the query server's bounded inbound
        # serving queue registers its fullness here, so granting policies
        # feel inbound congestion the same way they feel storage pressure.
        self._pressure_signals: list = []
        # statistics
        self.negotiations = 0
        self.grants = 0
        self.refusals = 0
        self.requester_rejections = 0
        self.expirations = 0
        self.revocations = 0

    # ------------------------------------------------------------------
    # Negotiation
    # ------------------------------------------------------------------
    def negotiate(self, requester: LeaseRequester, operation: OperationKind,
                  storage_needed: int = 0) -> Lease:
        """Run the request/offer/accept protocol; returns a granted lease.

        ``storage_needed`` is the deposit size for ``out``/``eval`` (the
        codec size of the tuple); it is folded into the requested terms so
        the policy sees the true storage demand.

        Raises :class:`LeaseRefusedError` when the policy refuses and
        :class:`LeaseRejectedByRequesterError` when the requester declines
        the offer.  Either way, per the model, the caller must do no
        further work on the operation.
        """
        self.negotiations += 1
        requested = requester.desired()
        if operation.is_deposit and storage_needed:
            wanted = requested.storage_bytes
            if wanted is None or wanted < storage_needed:
                requested = LeaseTerms(requested.duration, requested.max_remotes,
                                       storage_needed)
        offer = self.policy.offer(requested, operation.value, self._usage())
        if offer is None:
            self.refusals += 1
            raise LeaseRefusedError(
                f"lease refused for {operation.value} (storage_needed={storage_needed})"
            )
        if operation.is_deposit and storage_needed:
            granted_storage = offer.storage_bytes
            if granted_storage is not None and granted_storage < storage_needed:
                self.refusals += 1
                raise LeaseRefusedError(
                    f"offered storage {granted_storage}B < needed {storage_needed}B"
                )
            if not self._storage_fits(storage_needed):
                self.refusals += 1
                raise LeaseRefusedError(
                    f"storage capacity exceeded ({self.storage_used}+"
                    f"{storage_needed}>{self.storage_capacity})"
                )
        if not requester.consider(offer):
            self.requester_rejections += 1
            raise LeaseRejectedByRequesterError(
                f"requester declined offer {offer!r} for {operation.value}"
            )
        return self._grant(offer, operation, storage_needed)

    # ------------------------------------------------------------------
    # Revocation (last resort)
    # ------------------------------------------------------------------
    def revoke(self, lease: Lease, reason: str = "") -> None:
        """Forcibly end a lease; holders learn via their ``on_end`` hook.

        "This behaviour should only be employed as a last resort to avoid
        undermining the leasing system altogether" — the manager provides
        the mechanism; deciding when is the caller's (policy's) burden.
        """
        if not lease.active:
            return
        self.revocations += 1
        lease._end(LeaseState.REVOKED)

    def revoke_storage_pressure(self, target_bytes: int) -> list[Lease]:
        """Revoke oldest storage-bearing leases until usage <= target.

        Returns the leases revoked.  Used by the T4 bench to demonstrate
        last-resort reclamation under storage pressure.
        """
        revoked = []
        for lease in sorted(self.active.values(), key=lambda l: l.lease_id):
            if self.storage_used <= target_bytes:
                break
            if lease.terms.storage_bytes:
                revoked.append(lease)
                self.revoke(lease, reason="storage pressure")
        return revoked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of currently active leases."""
        return len(self.active)

    def attach_pressure_signal(self, signal) -> None:
        """Register a live 0..1 pressure callable (e.g. queue fullness).

        The maximum over all registered signals is exposed to granting
        policies as :attr:`UsageSnapshot.queue_pressure`.
        """
        self._pressure_signals.append(signal)

    def usage(self) -> UsageSnapshot:
        """A snapshot of current commitment (what policies see)."""
        return self._usage()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grant(self, terms: LeaseTerms, operation: OperationKind,
               storage_needed: int) -> Lease:
        lease = Lease(self, terms, self.sim.now, operation.value)
        self.active[lease.lease_id] = lease
        self.grants += 1
        if probes.SINK is not None:
            probes.emit("lease.granted", manager=id(self),
                        lease=lease.lease_id, op=operation.value,
                        active_count=len(self.active))
        committed = storage_needed if operation.is_deposit else 0
        if committed:
            self.storage_used += committed
        lease.on_end(lambda l, state: self._on_lease_end(l, state, committed))
        if lease.expires_at is not None:
            self.sim.schedule_at(lease.expires_at, self._expire, lease.lease_id)
        return lease

    def _on_lease_end(self, lease: Lease, state: LeaseState, committed: int) -> None:
        if not self._canary_lease_leak:
            self.active.pop(lease.lease_id, None)
        # (planted bug: with the canary on, the ended lease stays in the
        # active table forever — conservation is violated.)
        if committed:
            self.storage_used -= committed
        if probes.SINK is not None:
            probes.emit("lease.ended", manager=id(self),
                        lease=lease.lease_id, state=state.value,
                        active_count=len(self.active))

    def _expire(self, lease_id: int) -> None:
        lease = self.active.get(lease_id)
        if lease is None or not lease.active:
            return
        if lease.expires_at is not None and self.sim.now >= lease.expires_at:
            self.expirations += 1
            lease._end(LeaseState.EXPIRED)

    def _storage_fits(self, needed: int) -> bool:
        if self.storage_capacity is None:
            return True
        return self.storage_used + needed <= self.storage_capacity

    def _usage(self) -> UsageSnapshot:
        queue_pressure = 0.0
        for signal in self._pressure_signals:
            queue_pressure = max(queue_pressure, signal())
        return UsageSnapshot(
            storage_used=self.storage_used,
            storage_capacity=self.storage_capacity,
            active_leases=len(self.active),
            thread_utilisation=self.threads.utilisation,
            queue_pressure=queue_pressure,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LeaseManager active={len(self.active)} "
                f"storage={self.storage_used}/{self.storage_capacity}>")
