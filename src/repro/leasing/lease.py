"""Lease terms and granted leases.

A :class:`LeaseTerms` bundle expresses *how much effort* an instance will
dedicate to an operation — in virtual seconds, in remote instances
contacted, and in bytes of storage held.  A granted :class:`Lease` tracks
consumption of those budgets and carries the expiry/revocation state
machine.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.errors import LeaseError


class LeaseTerms:
    """An (immutable) bundle of lease dimensions.

    ``None`` in a dimension means "unbounded" in that dimension.  The model
    discourages unbounded time for blocking operations — policies cap it —
    but the value type itself stays permissive so policies can express any
    offer.
    """

    __slots__ = ("duration", "max_remotes", "storage_bytes")

    def __init__(self, duration: Optional[float] = None,
                 max_remotes: Optional[int] = None,
                 storage_bytes: Optional[int] = None) -> None:
        if duration is not None and duration < 0:
            raise LeaseError(f"negative duration {duration}")
        if max_remotes is not None and max_remotes < 0:
            raise LeaseError(f"negative max_remotes {max_remotes}")
        if storage_bytes is not None and storage_bytes < 0:
            raise LeaseError(f"negative storage_bytes {storage_bytes}")
        self.duration = duration
        self.max_remotes = max_remotes
        self.storage_bytes = storage_bytes

    def satisfies(self, minimum: "LeaseTerms") -> bool:
        """Whether these terms are at least as generous as ``minimum``.

        Used by requesters to decide whether to accept an offer: every
        dimension the minimum bounds must be met (an unbounded offer
        dimension always satisfies).
        """
        def at_least(offered, wanted):
            if wanted is None:
                return True
            if offered is None:
                return True  # unbounded is maximally generous
            return offered >= wanted

        return (at_least(self.duration, minimum.duration)
                and at_least(self.max_remotes, minimum.max_remotes)
                and at_least(self.storage_bytes, minimum.storage_bytes))

    def capped(self, duration: Optional[float] = None,
               max_remotes: Optional[int] = None,
               storage_bytes: Optional[int] = None) -> "LeaseTerms":
        """These terms with upper caps applied per dimension."""
        def cap(value, limit):
            if limit is None:
                return value
            if value is None:
                return limit
            return min(value, limit)

        return LeaseTerms(
            duration=cap(self.duration, duration),
            max_remotes=cap(self.max_remotes, max_remotes),
            storage_bytes=cap(self.storage_bytes, storage_bytes),
        )

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, LeaseTerms)
                and (other.duration, other.max_remotes, other.storage_bytes)
                == (self.duration, self.max_remotes, self.storage_bytes))

    def __repr__(self) -> str:
        return (f"LeaseTerms(duration={self.duration!r}, "
                f"max_remotes={self.max_remotes!r}, "
                f"storage_bytes={self.storage_bytes!r})")


class LeaseState(enum.Enum):
    """Lifecycle of a granted lease."""

    ACTIVE = "active"
    EXPIRED = "expired"        # time ran out
    RELEASED = "released"      # holder finished early and returned it
    REVOKED = "revoked"        # the instance reclaimed it (last resort)


class Lease:
    """A granted lease: budgets, expiry, and revocation callbacks.

    Created only by :class:`~repro.leasing.manager.LeaseManager`; holders
    interact with :meth:`use_remote`, :meth:`release`, and the ``on_end``
    callback hook.
    """

    _ids = itertools.count(1)

    def __init__(self, manager, terms: LeaseTerms, granted_at: float, operation: str) -> None:
        self.lease_id = next(Lease._ids)
        self.manager = manager
        self.terms = terms
        self.granted_at = granted_at
        self.operation = operation
        self.state = LeaseState.ACTIVE
        self.remotes_used = 0
        self._on_end: list[Callable[["Lease", LeaseState], None]] = []

    # ------------------------------------------------------------------
    @property
    def expires_at(self) -> Optional[float]:
        """Absolute virtual expiry time; None when time-unbounded."""
        if self.terms.duration is None:
            return None
        return self.granted_at + self.terms.duration

    @property
    def active(self) -> bool:
        """True while the lease has not ended."""
        return self.state is LeaseState.ACTIVE

    def remaining_time(self, now: float) -> Optional[float]:
        """Seconds of lease left at ``now`` (None = unbounded)."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - now)

    # ------------------------------------------------------------------
    def use_remote(self) -> bool:
        """Consume one unit of the remote-contact budget.

        Returns False (without consuming) when the budget is exhausted or
        the lease has ended — the caller must then stop contacting further
        instances.
        """
        if not self.active:
            return False
        if self.terms.max_remotes is not None and self.remotes_used >= self.terms.max_remotes:
            return False
        self.remotes_used += 1
        return True

    @property
    def remotes_remaining(self) -> Optional[int]:
        """How many more remote contacts the lease allows (None = unbounded)."""
        if self.terms.max_remotes is None:
            return None
        return max(0, self.terms.max_remotes - self.remotes_used)

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Return the lease early (operation finished before expiry)."""
        self._end(LeaseState.RELEASED)

    def on_end(self, callback: Callable[["Lease", LeaseState], None]) -> None:
        """Register a callback for when the lease ends, however it ends."""
        self._on_end.append(callback)

    def _end(self, state: LeaseState) -> None:
        if not self.active:
            return
        self.state = state
        for callback in list(self._on_end):
            callback(self, state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Lease #{self.lease_id} {self.operation} {self.state.value} "
                f"{self.terms!r}>")
