"""Lease granting policies.

"The final decision as to what lease is actually granted, or if a lease is
granted at all, is made by the Tiamat instance" (section 2.5).  The policy
object is where that decision lives.  Policies see the requested terms, the
operation kind, and a usage snapshot (storage pressure, resource factory
utilisation) and return the terms to offer — or ``None`` to refuse.

Three production policies are provided and benchmarked against each other
in the T4 ablation:

* :class:`GenerousPolicy` — offer what was asked, capped only by hard
  per-dimension maxima.  Models a resource-rich workstation.
* :class:`ConservativePolicy` — cap every dimension at fixed, low ceilings.
  Models a PDA-class device.
* :class:`AdaptivePolicy` — scale the offer by current resource pressure:
  the fuller the instance, the shorter and narrower the leases it offers.
  This is the "environment driven design" answer (section 5.1) expressed
  in the leasing layer.
"""

from __future__ import annotations

from typing import Optional

from repro.leasing.lease import LeaseTerms


class UsageSnapshot:
    """What a policy may inspect when deciding an offer."""

    __slots__ = ("storage_used", "storage_capacity", "active_leases",
                 "thread_utilisation", "queue_pressure")

    def __init__(self, storage_used: int = 0, storage_capacity: Optional[int] = None,
                 active_leases: int = 0, thread_utilisation: float = 0.0,
                 queue_pressure: float = 0.0) -> None:
        self.storage_used = storage_used
        self.storage_capacity = storage_capacity
        self.active_leases = active_leases
        self.thread_utilisation = thread_utilisation
        # Fullness (0..1) of the instance's bounded inbound serving queue
        # (0.0 when the instance serves inline / registers no signal).
        self.queue_pressure = queue_pressure

    @property
    def storage_pressure(self) -> float:
        """Fraction of storage capacity committed (0.0 if unbounded)."""
        if self.storage_capacity in (None, 0):
            return 0.0
        return min(1.0, self.storage_used / self.storage_capacity)


class GrantPolicy:
    """Protocol: decide what (if anything) to offer for a request."""

    def offer(self, requested: LeaseTerms, operation: str,
              usage: UsageSnapshot) -> Optional[LeaseTerms]:  # pragma: no cover
        """The terms to offer, or None to refuse the lease outright."""
        raise NotImplementedError


class GenerousPolicy(GrantPolicy):
    """Grant requests nearly verbatim, subject only to hard maxima.

    Unbounded *time* requests are still capped at ``max_duration`` —
    indefinite leases would defeat the garbage-collection role of leasing.
    """

    def __init__(self, max_duration: float = 3600.0,
                 max_remotes: Optional[int] = None,
                 max_storage_bytes: Optional[int] = None) -> None:
        self.max_duration = max_duration
        self.max_remotes = max_remotes
        self.max_storage_bytes = max_storage_bytes

    def offer(self, requested: LeaseTerms, operation: str,
              usage: UsageSnapshot) -> Optional[LeaseTerms]:
        offer = requested.capped(duration=self.max_duration,
                                 max_remotes=self.max_remotes,
                                 storage_bytes=self.max_storage_bytes)
        if offer.duration is None:
            offer = LeaseTerms(self.max_duration, offer.max_remotes, offer.storage_bytes)
        return offer


class ConservativePolicy(GrantPolicy):
    """Cap every dimension at fixed, low ceilings; refuse storage overflow.

    When the requested storage does not fit in what remains of capacity,
    the lease is refused rather than trimmed — a trimmed storage grant
    would silently truncate the tuple being deposited.
    """

    def __init__(self, max_duration: float = 60.0, max_remotes: int = 4,
                 max_storage_bytes: int = 64 * 1024) -> None:
        self.max_duration = max_duration
        self.max_remotes = max_remotes
        self.max_storage_bytes = max_storage_bytes

    def offer(self, requested: LeaseTerms, operation: str,
              usage: UsageSnapshot) -> Optional[LeaseTerms]:
        needed = requested.storage_bytes or 0
        if usage.storage_capacity is not None:
            if usage.storage_used + needed > usage.storage_capacity:
                return None
        if needed > self.max_storage_bytes:
            return None
        offer = requested.capped(duration=self.max_duration,
                                 max_remotes=self.max_remotes,
                                 storage_bytes=self.max_storage_bytes)
        if offer.duration is None:
            offer = LeaseTerms(self.max_duration, offer.max_remotes, offer.storage_bytes)
        if offer.max_remotes is None:
            offer = LeaseTerms(offer.duration, self.max_remotes, offer.storage_bytes)
        return offer


class AdaptivePolicy(GrantPolicy):
    """Scale offers down as resource pressure rises.

    The offered duration and remote budget shrink linearly with the
    dominant pressure signal (max of storage pressure and thread
    utilisation); above ``refuse_threshold`` pressure, new storage-bearing
    leases are refused entirely.
    """

    def __init__(self, base_duration: float = 300.0, base_remotes: int = 16,
                 refuse_threshold: float = 0.95) -> None:
        self.base_duration = base_duration
        self.base_remotes = base_remotes
        self.refuse_threshold = refuse_threshold

    def offer(self, requested: LeaseTerms, operation: str,
              usage: UsageSnapshot) -> Optional[LeaseTerms]:
        pressure = max(usage.storage_pressure, usage.thread_utilisation,
                       usage.queue_pressure)
        needed = requested.storage_bytes or 0
        if needed and pressure >= self.refuse_threshold:
            return None
        if usage.storage_capacity is not None:
            if usage.storage_used + needed > usage.storage_capacity:
                return None
        scale = max(0.05, 1.0 - pressure)
        duration_cap = self.base_duration * scale
        remote_cap = max(1, int(self.base_remotes * scale))
        offer = requested.capped(duration=duration_cap, max_remotes=remote_cap)
        if offer.duration is None:
            offer = LeaseTerms(duration_cap, offer.max_remotes, offer.storage_bytes)
        if offer.max_remotes is None:
            offer = LeaseTerms(offer.duration, remote_cap, offer.storage_bytes)
        return offer


class DenyAllPolicy(GrantPolicy):
    """Refuse every lease.  Exists for tests and the F2 architecture bench
    (a refused lease must prevent all further work on the operation)."""

    def offer(self, requested: LeaseTerms, operation: str,
              usage: UsageSnapshot) -> Optional[LeaseTerms]:
        return None
