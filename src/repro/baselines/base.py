"""The common node interface all compared systems implement.

The T5 comparison bench drives six systems (Tiamat plus five baselines)
with one workload; :class:`SpaceNode` is the contract that makes that
possible.  Operations are asynchronous and complete via a
:class:`SimpleOp` handle — mirroring the shape of Tiamat's own
:class:`~repro.core.ops.Operation` but without leases, so each baseline can
express its own timeout/fault semantics.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.tuples import Pattern, Tuple


class SimpleOp:
    """A pending or finished baseline operation.

    ``event`` succeeds with the matching tuple, or ``None`` on
    failure/timeout; ``error`` carries a short failure reason for the
    bench's diagnostics.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.event: Event = sim.event()
        self.done = False
        self.result: Optional[Tuple] = None
        self.error: Optional[str] = None

    def finalize(self, result: Optional[Tuple], error: Optional[str] = None) -> None:
        """Complete the operation exactly once."""
        if self.done:
            return
        self.done = True
        self.result = result
        self.error = error
        self.event.succeed(result)

    @property
    def satisfied(self) -> bool:
        """True when the operation finished with a match."""
        return self.done and self.result is not None


class SpaceNode:
    """Protocol: one participant in a distributed tuple-space system.

    Implementations provide the five data operations (``eval`` is specific
    to Tiamat and not part of the cross-system comparison).  ``timeout``
    bounds blocking operations so comparison runs terminate; systems with
    their own effort model (Tiamat's leases) map it onto that model.
    """

    name: str

    def out(self, tup: Tuple) -> None:  # pragma: no cover - interface
        """Deposit a tuple."""
        raise NotImplementedError

    def rdp(self, pattern: Pattern) -> SimpleOp:  # pragma: no cover
        """Non-blocking read."""
        raise NotImplementedError

    def inp(self, pattern: Pattern) -> SimpleOp:  # pragma: no cover
        """Non-blocking take."""
        raise NotImplementedError

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:  # pragma: no cover
        """Blocking read (bounded by ``timeout``)."""
        raise NotImplementedError

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:  # pragma: no cover
        """Blocking take (bounded by ``timeout``)."""
        raise NotImplementedError

    def stored_tuples(self) -> int:  # pragma: no cover - interface
        """Tuples resident at this node (storage-burden metric)."""
        raise NotImplementedError
