"""Limbo's Distributed Tuple Space (DTS) protocol model.

Section 4.3: Limbo "uses a Distributed Tuple Space (DTS) protocol to
replicate tuple spaces across participating hosts.  Each tuple space has
its own multicast group, and clients attempt to maintain a consistent
replica of the space by multicasting a copy of every operation to the
group."  Properties modelled faithfully:

* **full replication** — every node stores a replica of every tuple it has
  heard about (the storage-burden metric of T5/T6);
* **ownership** — each tuple has a single owner; only the owner may remove
  it.  ``in``/``inp`` on a non-owned tuple first request an ownership
  transfer from the owner over *direct* unicast — impossible when the
  owner is not visible (breaking the identity/time/space decouplings, as
  the paper argues);
* **disconnected operation** — ``out`` and ``rd`` work as normal while
  disconnected; ``in`` only on owned tuples; a removal log is kept and
  replayed on reconnection, and missed inserts are fetched from the first
  peer that becomes visible again;
* **anomalies** — a replica that missed a removal still *sees* the tuple
  (stale reads, counted via a shared oracle for T6), and tuples whose
  owner departed can never be removed by anyone (orphans).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.baselines.base import SimpleOp, SpaceNode
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.serialization import decode_tuple, encode_tuple

_OUT = "dts_out"
_REMOVE = "dts_remove"
_TRANSFER_REQ = "dts_transfer_req"
_TRANSFER_GRANT = "dts_transfer_grant"
_SYNC_REQ = "dts_sync_req"
_SYNC_DATA = "dts_sync_data"

_transfer_ids = itertools.count(1)


class LimboOracle:
    """Bench-side global truth used only for anomaly *measurement*.

    Records which tuple uids have been removed anywhere, so stale reads
    (section 4.3: "the tuple may still be accessible to a disconnected
    host") can be counted without altering protocol behaviour.
    """

    def __init__(self) -> None:
        self.removed_uids: set[str] = set()


class LimboNode(SpaceNode):
    """One participant holding a full replica of the distributed space."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 oracle: Optional[LimboOracle] = None) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.oracle = oracle if oracle is not None else LimboOracle()
        self.space = LocalTupleSpace(sim, name=name)
        self.iface = network.attach(name, self._on_message)
        self._uid_seq = itertools.count(1)
        self._by_uid: dict[str, int] = {}          # uid -> entry_id
        self._removed_log: set[str] = set()        # uids this node knows removed
        self._pending_transfers: dict[int, SimpleOp] = {}
        network.visibility.on_edge_change(self._on_edge)
        # anomaly metrics
        self.stale_reads = 0
        self.transfer_failures = 0

    # ------------------------------------------------------------------
    # SpaceNode operations
    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        """Deposit locally and multicast the insert to the group."""
        uid = f"{self.name}/{next(self._uid_seq)}"
        self._apply_out(tup, uid, owner=self.name)
        self.iface.multicast({"kind": _OUT, "tuple": encode_tuple(tup),
                              "uid": uid, "owner": self.name})

    def rdp(self, pattern: Pattern) -> SimpleOp:
        """Read from the local replica (no communication at all)."""
        handle = SimpleOp(self.sim)
        entry = self.space.store.find(pattern, self.space.rng)
        if entry is not None:
            self._count_if_stale(entry)
            handle.finalize(entry.tuple)
        else:
            handle.finalize(None, error="no match")
        return handle

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        """Blocking read against the local replica."""
        handle = SimpleOp(self.sim)
        waiter = self.space.rd(pattern)
        if waiter.satisfied:
            handle.finalize(waiter.event.value)
            return handle
        waiter.event.add_callback(lambda event: handle.finalize(event.value))
        self.sim.schedule(timeout, self._waiter_timeout, waiter, handle)
        return handle

    def inp(self, pattern: Pattern) -> SimpleOp:
        """Take: owned tuples immediately; others via ownership transfer."""
        handle = SimpleOp(self.sim)
        self._try_take(pattern, handle)
        return handle

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        """Blocking take (retries as matches appear, until timeout)."""
        handle = SimpleOp(self.sim)
        self._blocking_take(pattern, handle)
        if not handle.done:
            self.sim.schedule(timeout, self._blocking_give_up, handle)
        return handle

    def stored_tuples(self) -> int:
        return self.space.count()

    def stored_bytes(self) -> int:
        """Replica storage burden in bytes."""
        return self.space.stored_bytes()

    # ------------------------------------------------------------------
    # Take machinery
    # ------------------------------------------------------------------
    def _try_take(self, pattern: Pattern, handle: SimpleOp) -> None:
        entry = self.space.store.find(pattern, self.space.rng)
        if entry is None:
            handle.finalize(None, error="no match")
            return
        owner = entry.meta["owner"]
        uid = entry.meta["uid"]
        if owner == self.name:
            self._remove_uid(uid, broadcast=True)
            handle.finalize(entry.tuple)
            return
        # Need the owner to hand over ownership — direct communication only.
        tid = next(_transfer_ids)
        sent = self.iface.unicast(owner, {"kind": _TRANSFER_REQ, "uid": uid,
                                          "tid": tid})
        if not sent:
            self.transfer_failures += 1
            handle.finalize(None, error=f"owner {owner} unreachable")
            return
        self._pending_transfers[tid] = handle
        handle._limbo_entry = entry  # stashed for the grant handler
        self.sim.schedule(5.0, self._transfer_timeout, tid)

    def _blocking_take(self, pattern: Pattern, handle: SimpleOp) -> None:
        if handle.done:
            return
        probe = SimpleOp(self.sim)
        self._try_take(pattern, probe)
        if probe.done and probe.result is not None:
            handle.finalize(probe.result)
            return
        if probe.done and probe.error not in (None, "no match"):
            handle.finalize(None, error=probe.error)
            return
        if not probe.done:
            # Transfer in flight: mirror its outcome.
            probe.event.add_callback(
                lambda event: handle.finalize(probe.result, probe.error)
                if probe.result is not None else self._rearm(pattern, handle))
            return
        # No match yet: watch for one.
        waiter = self.space.rd(pattern)
        if waiter.satisfied:
            self._blocking_take(pattern, handle)
            return
        waiter.event.add_callback(lambda event: self._blocking_take(pattern, handle))
        handle._limbo_waiter = waiter

    def _rearm(self, pattern: Pattern, handle: SimpleOp) -> None:
        if not handle.done:
            self._blocking_take(pattern, handle)

    def _blocking_give_up(self, handle: SimpleOp) -> None:
        if not handle.done:
            waiter = getattr(handle, "_limbo_waiter", None)
            if waiter is not None:
                waiter.cancel()
            handle.finalize(None, error="timeout")

    def _waiter_timeout(self, waiter, handle: SimpleOp) -> None:
        if not handle.done:
            waiter.cancel()
            handle.finalize(None, error="timeout")

    def _transfer_timeout(self, tid: int) -> None:
        handle = self._pending_transfers.pop(tid, None)
        if handle is not None and not handle.done:
            self.transfer_failures += 1
            handle.finalize(None, error="transfer timeout")

    # ------------------------------------------------------------------
    # Replica state
    # ------------------------------------------------------------------
    def _apply_out(self, tup: Tuple, uid: str, owner: str) -> None:
        if uid in self._by_uid or uid in self._removed_log:
            return  # duplicate or already-removed insert
        entry = self.space.out(tup, meta={"uid": uid, "owner": owner})
        if entry.entry_id:
            self._by_uid[uid] = entry.entry_id

    def _remove_uid(self, uid: str, broadcast: bool) -> None:
        self._removed_log.add(uid)
        self.oracle.removed_uids.add(uid)
        entry_id = self._by_uid.pop(uid, None)
        if entry_id is not None and self.space.store.get(entry_id) is not None:
            self.space.store.remove(entry_id)
        if broadcast:
            self.iface.multicast({"kind": _REMOVE, "uid": uid})

    def _count_if_stale(self, entry) -> None:
        if entry.meta.get("uid") in self.oracle.removed_uids:
            self.stale_reads += 1

    # ------------------------------------------------------------------
    # Protocol messages
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        payload = msg.payload
        kind = msg.kind
        if kind == _OUT:
            self._apply_out(decode_tuple(payload["tuple"]), payload["uid"],
                            payload["owner"])
        elif kind == _REMOVE:
            self._removed_log.add(payload["uid"])
            entry_id = self._by_uid.pop(payload["uid"], None)
            if entry_id is not None and self.space.store.get(entry_id) is not None:
                self.space.store.remove(entry_id)
        elif kind == _TRANSFER_REQ:
            self._on_transfer_request(msg.src, payload)
        elif kind == _TRANSFER_GRANT:
            self._on_transfer_grant(payload)
        elif kind == _SYNC_REQ:
            self._on_sync_request(msg.src, payload)
        elif kind == _SYNC_DATA:
            self._on_sync_data(payload)

    def _on_transfer_request(self, requester: str, payload: dict) -> None:
        uid = payload["uid"]
        ok = uid in self._by_uid and uid not in self._removed_log
        if ok:
            entry_id = self._by_uid[uid]
            entry = self.space.store.get(entry_id)
            if entry is not None:
                entry.meta["owner"] = requester
        self.iface.unicast(requester, {"kind": _TRANSFER_GRANT,
                                       "tid": payload["tid"], "uid": uid,
                                       "ok": ok})

    def _on_transfer_grant(self, payload: dict) -> None:
        handle = self._pending_transfers.pop(payload["tid"], None)
        if handle is None or handle.done:
            return
        if not payload["ok"]:
            handle.finalize(None, error="transfer denied")
            return
        entry = getattr(handle, "_limbo_entry", None)
        if entry is None or entry.removed:
            handle.finalize(None, error="tuple vanished during transfer")
            return
        entry.meta["owner"] = self.name
        self._remove_uid(payload["uid"], broadcast=True)
        handle.finalize(entry.tuple)

    # ------------------------------------------------------------------
    # Reconnection synchronisation
    # ------------------------------------------------------------------
    def _on_edge(self, a: str, b: str, visible: bool) -> None:
        if not visible or self.name not in (a, b):
            return
        peer = b if a == self.name else a
        # Ask the newly visible peer for what we missed.
        self.iface.unicast(peer, {
            "kind": _SYNC_REQ,
            "have": sorted(self._by_uid),
            "removed": sorted(self._removed_log),
        })

    def _on_sync_request(self, peer: str, payload: dict) -> None:
        their_have = set(payload["have"])
        their_removed = set(payload["removed"])
        # Apply removals we missed.
        for uid in their_removed - self._removed_log:
            self._removed_log.add(uid)
            entry_id = self._by_uid.pop(uid, None)
            if entry_id is not None and self.space.store.get(entry_id) is not None:
                self.space.store.remove(entry_id)
        # Send tuples and removals the peer is missing.
        missing = [uid for uid in self._by_uid
                   if uid not in their_have and uid not in their_removed]
        tuples = []
        for uid in missing:
            entry = self.space.store.get(self._by_uid[uid])
            if entry is not None:
                tuples.append({"uid": uid, "owner": entry.meta["owner"],
                               "tuple": encode_tuple(entry.tuple)})
        removed_for_peer = sorted(self._removed_log - their_removed)
        if tuples or removed_for_peer:
            self.iface.unicast(peer, {"kind": _SYNC_DATA, "tuples": tuples,
                                      "removed": removed_for_peer})

    def _on_sync_data(self, payload: dict) -> None:
        for uid in payload["removed"]:
            self._removed_log.add(uid)
            entry_id = self._by_uid.pop(uid, None)
            if entry_id is not None and self.space.store.get(entry_id) is not None:
                self.space.store.remove(entry_id)
        for item in payload["tuples"]:
            self._apply_out(decode_tuple(item["tuple"]), item["uid"], item["owner"])

    # ------------------------------------------------------------------
    def orphaned_tuples(self, departed: set[str]) -> int:
        """Tuples owned by a departed node: unremovable by anyone (4.3)."""
        count = 0
        for entry in self.space.store:
            if entry.visible and entry.meta.get("owner") in departed:
                count += 1
        return count


def build_limbo_system(sim: Simulator, network: Network, names: list[str]):
    """Construct a Limbo group; returns ({name: node}, oracle)."""
    oracle = LimboOracle()
    nodes = {name: LimboNode(sim, network, name, oracle) for name in names}
    return nodes, oracle
