"""Centralized client/server tuple space (TSpaces / JavaSpaces style).

Section 4.2: "Both systems offer the tuple space abstraction to devices on
a client/server basis. ... centralised architectures, where one machine
must be visible to all others, are not appropriate in a mobile
environment."

One :class:`CentralServer` hosts the only tuple space; every
:class:`CentralClient` forwards each operation to it over unicast and fails
the operation when the server is not visible.  Blocking operations park a
waiter *at the server* until a match or the client-supplied timeout.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import SimpleOp, SpaceNode
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.serialization import (
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
)

_OUT = "cs_out"
_OP = "cs_op"
_REPLY = "cs_reply"

_op_ids = itertools.count(1)


class CentralServer:
    """The single space-hosting node."""

    def __init__(self, sim: Simulator, network: Network, name: str = "server") -> None:
        self.sim = sim
        self.name = name
        self.space = LocalTupleSpace(sim, name=name)
        self.iface = network.attach(name, self._on_message)
        self.ops_served = 0

    def _on_message(self, msg: Message) -> None:
        payload = msg.payload
        if msg.kind == _OUT:
            self.space.out(decode_tuple(payload["tuple"]))
            self.ops_served += 1
            return
        if msg.kind != _OP:
            return
        self.ops_served += 1
        pattern = decode_pattern(payload["pattern"])
        op, op_id, client = payload["op"], payload["op_id"], msg.src
        if op == "rdp":
            self._reply(client, op_id, self.space.rdp(pattern))
        elif op == "inp":
            self._reply(client, op_id, self.space.inp(pattern))
        elif op in ("rd", "in"):
            waiter = (self.space.rd(pattern) if op == "rd"
                      else self.space.in_(pattern))
            deadline = payload.get("timeout", 30.0)
            if waiter.satisfied:
                self._reply(client, op_id, waiter.event.value)
                return
            waiter.event.add_callback(
                lambda event: self._reply(client, op_id, event.value))
            self.sim.schedule(deadline, self._give_up, waiter, client, op_id)

    def _give_up(self, waiter, client: str, op_id: int) -> None:
        if not waiter.satisfied:
            waiter.cancel()
            self._reply(client, op_id, None)

    def _reply(self, client: str, op_id: int, tup) -> None:
        payload = {"kind": _REPLY, "op_id": op_id, "found": tup is not None}
        if tup is not None:
            payload["tuple"] = encode_tuple(tup)
        self.iface.unicast(client, payload)


class CentralClient(SpaceNode):
    """A client of the central server; useless while the server is invisible."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 server: str = "server") -> None:
        self.sim = sim
        self.name = name
        self.server = server
        self.iface = network.attach(name, self._on_message)
        self._pending: dict[int, SimpleOp] = {}
        self.failures_unreachable = 0

    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        """Forward the deposit to the server; silently lost if unreachable."""
        sent = self.iface.unicast(self.server, {"kind": _OUT,
                                                "tuple": encode_tuple(tup)})
        if not sent:
            self.failures_unreachable += 1

    def rdp(self, pattern: Pattern) -> SimpleOp:
        return self._remote_op("rdp", pattern, timeout=5.0)

    def inp(self, pattern: Pattern) -> SimpleOp:
        return self._remote_op("inp", pattern, timeout=5.0)

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._remote_op("rd", pattern, timeout=timeout)

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._remote_op("in", pattern, timeout=timeout)

    def stored_tuples(self) -> int:
        return 0  # clients store nothing; the server carries everything

    # ------------------------------------------------------------------
    def _remote_op(self, op: str, pattern: Pattern, timeout: float) -> SimpleOp:
        handle = SimpleOp(self.sim)
        op_id = next(_op_ids)
        sent = self.iface.unicast(self.server, {
            "kind": _OP, "op": op, "op_id": op_id,
            "pattern": encode_pattern(pattern), "timeout": timeout,
        })
        if not sent:
            self.failures_unreachable += 1
            handle.finalize(None, error="server unreachable")
            return handle
        self._pending[op_id] = handle
        # Client-side backstop in case the reply is lost or the server dies.
        self.sim.schedule(timeout + 5.0, self._abandon, op_id)
        return handle

    def _abandon(self, op_id: int) -> None:
        handle = self._pending.pop(op_id, None)
        if handle is not None and not handle.done:
            handle.finalize(None, error="timeout")

    def _on_message(self, msg: Message) -> None:
        if msg.kind != _REPLY:
            return
        handle = self._pending.pop(msg.payload["op_id"], None)
        if handle is None or handle.done:
            return
        if msg.payload["found"]:
            handle.finalize(decode_tuple(msg.payload["tuple"]))
        else:
            handle.finalize(None, error="no match")


def build_central_system(sim: Simulator, network: Network,
                         client_names: list[str],
                         server_name: str = "server"):
    """Construct a server plus clients; returns (server, {name: client})."""
    server = CentralServer(sim, network, server_name)
    clients = {name: CentralClient(sim, network, name, server_name)
               for name in client_names}
    return server, clients
