"""Baseline generative-communication systems from the paper's section 4.

Each baseline is a faithful protocol model of the cited system's
*structure* — the properties the paper's comparison (section 4.7) turns on:

* :mod:`repro.baselines.central` — TSpaces/JavaSpaces-style client/server:
  one machine must be visible to all others.
* :mod:`repro.baselines.limbo` — Limbo's Distributed Tuple Space: full
  replication over multicast, per-tuple ownership, disconnected operation
  with reconnect synchronisation — and the anomalies those bring
  (stale reads of removed tuples, orphaned tuples when owners leave).
* :mod:`repro.baselines.lime` — LIME: federated tuple spaces with global
  consistency and *atomic* engagement/disengagement that blocks all other
  operations, which is what limits it to small federations.
* :mod:`repro.baselines.corelime` — CoreLime: host-level spaces only;
  remote access requires explicitly migrating a mobile agent.
* :mod:`repro.baselines.peers` — PeerSpaces: per-node spaces searched by
  flooding broadcast with a TTL; leases exist only for search
  fault-tolerance; deposited tuples never expire.

All baselines implement the common :class:`~repro.baselines.base.SpaceNode`
interface, so the T5 comparison bench can drive every system (including
Tiamat, via an adapter) with the same workload.
"""

from repro.baselines.base import SimpleOp, SpaceNode
from repro.baselines.central import CentralClient, CentralServer, build_central_system
from repro.baselines.limbo import LimboNode, build_limbo_system
from repro.baselines.lime import Federation, LimeHost, build_lime_system
from repro.baselines.corelime import CoreLimeHost, build_corelime_system
from repro.baselines.peers import PeerNode, build_peers_system

__all__ = [
    "CentralClient",
    "CentralServer",
    "CoreLimeHost",
    "Federation",
    "LimboNode",
    "LimeHost",
    "PeerNode",
    "SimpleOp",
    "SpaceNode",
    "build_central_system",
    "build_corelime_system",
    "build_lime_system",
    "build_limbo_system",
    "build_peers_system",
]
