"""PeerSpaces protocol model: flooding search over per-node spaces.

Section 4.6: "Each JXTA node contains a tuple space and reading operations
are sent out in a flooding broadcast to other nodes in the network in order
to find matches.  While PeerSpaces does include the concept of leasing
while searching the network, it is included only to ensure fault-tolerance.
... PeerSpaces makes no other attempts to provide any resource management
features."

Model:

* ``out`` deposits locally, with **no expiry ever** (the missing resource
  management the T4/T5 benches measure);
* read operations flood a query to all visible neighbours with a TTL;
  receivers answer from their local space and re-forward; duplicate
  queries are suppressed by id;
* replies travel back along the reverse path;
* the *search lease* is a plain timeout that ends the search — pure
  fault-tolerance, exactly as the paper characterises it;
* destructive reads use the same hold/accept discipline as Tiamat so the
  comparison measures flooding cost, not correctness differences.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import SimpleOp, SpaceNode
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.serialization import (
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
)

_QUERY = "ps_query"
_REPLY = "ps_reply"
_ACCEPT = "ps_accept"
_REJECT = "ps_reject"

_query_ids = itertools.count(1)


class PeerNode(SpaceNode):
    """One peer: a local space plus flooding search."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 default_ttl: int = 4, claim_timeout: float = 2.0) -> None:
        self.sim = sim
        self.name = name
        self.default_ttl = default_ttl
        self.claim_timeout = claim_timeout
        self.space = LocalTupleSpace(sim, name=name)
        self.iface = network.attach(name, self._on_message)
        self._pending: dict[int, SimpleOp] = {}
        self._seen_queries: set[int] = set()
        self._held: dict[int, int] = {}  # query_id -> held entry_id
        self.queries_forwarded = 0

    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        """Deposit locally; PeerSpaces tuples never expire."""
        self.space.out(tup)

    def rdp(self, pattern: Pattern) -> SimpleOp:
        return self._search(pattern, remove=False, search_lease=2.0)

    def inp(self, pattern: Pattern) -> SimpleOp:
        return self._search(pattern, remove=True, search_lease=2.0)

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._search(pattern, remove=False, search_lease=timeout,
                            repeat=True)

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._search(pattern, remove=True, search_lease=timeout,
                            repeat=True)

    def stored_tuples(self) -> int:
        return self.space.count()

    # ------------------------------------------------------------------
    # Search engine
    # ------------------------------------------------------------------
    def _search(self, pattern: Pattern, remove: bool, search_lease: float,
                repeat: bool = False) -> SimpleOp:
        handle = SimpleOp(self.sim)
        local = self.space.inp(pattern) if remove else self.space.rdp(pattern)
        if local is not None:
            handle.finalize(local)
            return handle
        query_id = next(_query_ids)
        self._pending[query_id] = handle
        handle._ps_remove = remove
        self._flood(query_id, pattern, remove, self.default_ttl, exclude=None)
        if repeat:
            # Blocking semantics approximated by periodic re-flooding until
            # the search lease runs out (JXTA-style pull).
            self.sim.spawn(self._reflood_loop(query_id, pattern, remove,
                                              search_lease))
        self.sim.schedule(search_lease, self._search_expired, query_id)
        return handle

    def _reflood_loop(self, query_id: int, pattern: Pattern, remove: bool,
                      search_lease: float):
        deadline = self.sim.now + search_lease
        interval = 1.0
        handle = self._pending.get(query_id)
        while self.sim.now + interval < deadline:
            yield self.sim.timeout(interval)
            if handle is None or handle.done:
                return
            local = self.space.inp(pattern) if remove else self.space.rdp(pattern)
            if local is not None:
                self._pending.pop(query_id, None)
                handle.finalize(local)
                return
            # Each round is a fresh search (receivers de-duplicate by id, so
            # re-using the old id would make later rounds no-ops).
            query_id = next(_query_ids)
            self._pending[query_id] = handle
            self._flood(query_id, pattern, remove, self.default_ttl, exclude=None)

    def _flood(self, query_id: int, pattern: Pattern, remove: bool, ttl: int,
               exclude) -> None:
        payload = {"kind": _QUERY, "query_id": query_id, "origin": self.name,
                   "pattern": encode_pattern(pattern), "remove": remove,
                   "ttl": ttl, "path": [self.name]}
        for neighbor in self.iface.neighbors():
            if neighbor != exclude:
                self.iface.unicast(neighbor, payload)

    def _search_expired(self, query_id: int) -> None:
        handle = self._pending.pop(query_id, None)
        if handle is not None and not handle.done:
            handle.finalize(None, error="search lease expired")
        # Purge entries for searches that finished under a different id.
        for stale in [k for k, v in self._pending.items() if v.done]:
            del self._pending[stale]

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if msg.kind == _QUERY:
            self._on_query(msg.src, msg.payload)
        elif msg.kind == _REPLY:
            self._on_reply(msg.payload)
        elif msg.kind == _ACCEPT:
            self._on_accept(msg.payload)
        elif msg.kind == _REJECT:
            self._on_reject(msg.payload)

    def _on_query(self, sender: str, payload: dict) -> None:
        query_id = payload["query_id"]
        if query_id in self._seen_queries or payload["origin"] == self.name:
            return
        self._seen_queries.add(query_id)
        pattern = decode_pattern(payload["pattern"])
        path = payload["path"]
        if payload["remove"]:
            entry = self.space.hold_match(pattern)
            if entry is not None:
                self._held[query_id] = entry.entry_id
                self._send_reply(path, query_id, entry.tuple, self.name)
                self.sim.schedule(self.claim_timeout, self._claim_expired,
                                  query_id)
                return
        else:
            tup = self.space.rdp(pattern)
            if tup is not None:
                self._send_reply(path, query_id, tup, self.name)
                return
        ttl = payload["ttl"] - 1
        if ttl <= 0:
            return
        forward = dict(payload, ttl=ttl, path=path + [self.name])
        self.queries_forwarded += 1
        for neighbor in self.iface.neighbors():
            if neighbor not in path:
                self.iface.unicast(neighbor, forward)

    def _send_reply(self, path: list[str], query_id: int, tup: Tuple,
                    holder: str) -> None:
        payload = {"kind": _REPLY, "query_id": query_id,
                   "tuple": encode_tuple(tup), "holder": holder,
                   "path": path}
        # Reverse-path routing: hand the reply to the previous hop.
        self.iface.unicast(path[-1], payload)

    def _on_reply(self, payload: dict) -> None:
        path = payload["path"]
        if path and path[-1] == self.name:
            path = path[:-1]
        if path:
            # Not ours: keep walking back toward the origin.
            self.iface.unicast(path[-1], dict(payload, path=path))
            return
        handle = self._pending.get(payload["query_id"])
        holder = payload["holder"]
        if handle is None or handle.done:
            self.iface.unicast(holder, {"kind": _REJECT,
                                        "query_id": payload["query_id"]})
            return
        self._pending.pop(payload["query_id"], None)
        if getattr(handle, "_ps_remove", False):
            self.iface.unicast(holder, {"kind": _ACCEPT,
                                        "query_id": payload["query_id"]})
        handle.finalize(decode_tuple(payload["tuple"]))

    def _on_accept(self, payload: dict) -> None:
        entry_id = self._held.pop(payload["query_id"], None)
        if entry_id is not None:
            self.space.confirm(entry_id)

    def _on_reject(self, payload: dict) -> None:
        entry_id = self._held.pop(payload["query_id"], None)
        if entry_id is not None:
            self.space.release(entry_id)

    def _claim_expired(self, query_id: int) -> None:
        entry_id = self._held.pop(query_id, None)
        if entry_id is not None:
            self.space.release(entry_id)


def build_peers_system(sim: Simulator, network: Network, names: list[str],
                       default_ttl: int = 4):
    """Construct PeerSpaces nodes; returns {name: node}."""
    return {name: PeerNode(sim, network, name, default_ttl=default_ttl)
            for name in names}
