"""CoreLime protocol model: host-level spaces plus mobile agents.

Section 4.5: "Operations are only allowed on local spaces, no remote
communications are permitted at all.  Instead, clients are expected to take
advantage of mobile agents to access other host-level tuple spaces.  If a
client wants to perform an operation on a remote, host-level tuple space,
it must create a new mobile agent and migrate it to the desired host.  Once
there, the agent would engage with the host-level space, perform the
operation and finally migrate back to the originating host."

Model: the plain :class:`SpaceNode` operations act on the local host-level
space only.  Remote access goes through :meth:`CoreLimeHost.send_agent`,
which pays the agent's migration cost both ways (agent code size dominates
the wire bytes) and fails when the destination is not visible — locating
usable remote spaces is explicitly "placed on the application developer".
"""

from __future__ import annotations

import itertools

from repro.baselines.base import SimpleOp, SpaceNode
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.serialization import (
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
)

_AGENT_GO = "cl_agent_go"
_AGENT_BACK = "cl_agent_back"

_agent_ids = itertools.count(1)

#: Padding representing the serialized agent code shipped with each hop.
_AGENT_CODE_SIZE = 2048


class CoreLimeHost(SpaceNode):
    """A host with a local space; remote access only via mobile agents."""

    def __init__(self, sim: Simulator, network: Network, name: str) -> None:
        self.sim = sim
        self.name = name
        self.space = LocalTupleSpace(sim, name=name)
        self.iface = network.attach(name, self._on_message)
        self._pending_agents: dict[int, SimpleOp] = {}
        self.agents_sent = 0
        self.agents_lost = 0

    # ------------------------------------------------------------------
    # Local-only SpaceNode operations
    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        self.space.out(tup)

    def rdp(self, pattern: Pattern) -> SimpleOp:
        handle = SimpleOp(self.sim)
        handle.finalize(self.space.rdp(pattern))
        return handle

    def inp(self, pattern: Pattern) -> SimpleOp:
        handle = SimpleOp(self.sim)
        handle.finalize(self.space.inp(pattern))
        return handle

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._local_blocking(self.space.rd(pattern), timeout)

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._local_blocking(self.space.in_(pattern), timeout)

    def _local_blocking(self, waiter, timeout: float) -> SimpleOp:
        handle = SimpleOp(self.sim)
        if waiter.satisfied:
            handle.finalize(waiter.event.value)
            return handle
        waiter.event.add_callback(lambda event: handle.finalize(event.value))
        self.sim.schedule(timeout, self._give_up, waiter, handle)
        return handle

    def _give_up(self, waiter, handle: SimpleOp) -> None:
        if not handle.done:
            waiter.cancel()
            handle.finalize(None, error="timeout")

    def stored_tuples(self) -> int:
        return self.space.count()

    # ------------------------------------------------------------------
    # Mobile agents: the only road to a remote space
    # ------------------------------------------------------------------
    def send_agent(self, destination: str, op: str, pattern: Pattern = None,
                   tup: Tuple = None, timeout: float = 10.0) -> SimpleOp:
        """Migrate an agent to ``destination`` to run ``op`` there.

        ``op`` is one of ``"out"``, ``"rdp"``, ``"inp"``, ``"rd"``,
        ``"in"``.  The agent carries its code (a fixed padding) plus the
        operation payload each way.  The returned handle yields the result
        tuple (or None) once the agent migrates back — or fails when either
        migration leg is impossible.
        """
        handle = SimpleOp(self.sim)
        agent_id = next(_agent_ids)
        payload = {"kind": _AGENT_GO, "agent_id": agent_id, "op": op,
                   "home": self.name, "code": "x" * _AGENT_CODE_SIZE,
                   "timeout": timeout}
        if pattern is not None:
            payload["pattern"] = encode_pattern(pattern)
        if tup is not None:
            payload["tuple"] = encode_tuple(tup)
        if not self.iface.unicast(destination, payload):
            self.agents_lost += 1
            handle.finalize(None, error=f"{destination} not visible")
            return handle
        self.agents_sent += 1
        self._pending_agents[agent_id] = handle
        self.sim.schedule(timeout + 5.0, self._agent_timeout, agent_id)
        return handle

    def _agent_timeout(self, agent_id: int) -> None:
        handle = self._pending_agents.pop(agent_id, None)
        if handle is not None and not handle.done:
            self.agents_lost += 1
            handle.finalize(None, error="agent never returned")

    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if msg.kind == _AGENT_GO:
            self._host_agent(msg.payload)
        elif msg.kind == _AGENT_BACK:
            handle = self._pending_agents.pop(msg.payload["agent_id"], None)
            if handle is not None and not handle.done:
                found = msg.payload.get("found", False)
                tup = decode_tuple(msg.payload["tuple"]) if found else None
                handle.finalize(tup, None if found else "no match")

    def _host_agent(self, payload: dict) -> None:
        """An incoming agent engages with the local space and runs its op."""
        op = payload["op"]
        home = payload["home"]
        agent_id = payload["agent_id"]
        if op == "out":
            self.space.out(decode_tuple(payload["tuple"]))
            self._agent_return(home, agent_id, decode_tuple(payload["tuple"]))
            return
        pattern = decode_pattern(payload["pattern"])
        if op == "rdp":
            self._agent_return(home, agent_id, self.space.rdp(pattern))
        elif op == "inp":
            self._agent_return(home, agent_id, self.space.inp(pattern))
        elif op in ("rd", "in"):
            waiter = (self.space.rd(pattern) if op == "rd"
                      else self.space.in_(pattern))
            if waiter.satisfied:
                self._agent_return(home, agent_id, waiter.event.value)
                return
            waiter.event.add_callback(
                lambda event: self._agent_return(home, agent_id, event.value))
            self.sim.schedule(payload.get("timeout", 10.0),
                              self._agent_give_up, waiter, home, agent_id)

    def _agent_give_up(self, waiter, home: str, agent_id: int) -> None:
        if not waiter.satisfied:
            waiter.cancel()
            self._agent_return(home, agent_id, None)

    def _agent_return(self, home: str, agent_id: int, tup) -> None:
        payload = {"kind": _AGENT_BACK, "agent_id": agent_id,
                   "found": tup is not None, "code": "x" * _AGENT_CODE_SIZE}
        if tup is not None:
            payload["tuple"] = encode_tuple(tup)
        self.iface.unicast(home, payload)


def build_corelime_system(sim: Simulator, network: Network, names: list[str]):
    """Construct CoreLime hosts; returns {name: host}."""
    return {name: CoreLimeHost(sim, network, name) for name in names}
