"""LIME protocol model: federated tuple spaces with global consistency.

Section 4.4: LIME engages host-level spaces "into larger federated tuple
spaces.  Unlike Tiamat, LIME does not do this on an opportunistic basis,
rather it tries to ensure global consistency across hosts ... LIME also
requires the space engagement and disengagement operations to be atomic
across all hosts in the federated space.  This means that other operations
cannot proceed while hosts are engaging/disengaging."  The paper notes the
prototype "cannot function with more than six hosts forming a single
federated space".

Model:

* one :class:`Federation` holds the globally consistent shared store;
* engagement/disengagement is a barrier: it takes time proportional to the
  current federation size (a distributed transaction over all members) and
  *blocks every operation* issued meanwhile — they queue and run after;
* every data operation pays a consistency round: one message to each other
  member (charged to the network for honest accounting);
* federations beyond ``max_hosts`` members fail engagement outright,
  reproducing the reported scalability wall.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import SimpleOp, SpaceNode
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple


class Federation:
    """The shared, globally consistent federated space."""

    def __init__(self, sim: Simulator, network: Network,
                 engage_cost_per_host: float = 0.25,
                 max_hosts: Optional[int] = 6) -> None:
        self.sim = sim
        self.network = network
        self.space = LocalTupleSpace(sim, name="federation")
        self.engage_cost_per_host = engage_cost_per_host
        self.max_hosts = max_hosts
        self.members: list[str] = []
        self._pending_engagements = 0
        self.busy_until = 0.0
        self._queued: list = []
        # statistics
        self.engagements = 0
        self.engagement_failures = 0
        self.ops_blocked_by_engagement = 0

    # ------------------------------------------------------------------
    # Engagement barrier
    # ------------------------------------------------------------------
    @property
    def engaged_count(self) -> int:
        """Hosts currently in the federation."""
        return len(self.members)

    def engage(self, host: "LimeHost") -> SimpleOp:
        """Atomically add a host; blocks all operations while in progress."""
        handle = SimpleOp(self.sim)
        committed = len(self.members) + self._pending_engagements
        if self.max_hosts is not None and committed >= self.max_hosts:
            self.engagement_failures += 1
            handle.finalize(None, error="federation at capacity")
            return handle
        self._pending_engagements += 1
        cost = self.engage_cost_per_host * max(1, len(self.members) + 1)
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + cost
        self.engagements += 1
        # The engagement transaction touches every current member.
        for member in self.members:
            self.network.unicast(host.name, member, {"kind": "lime_engage"})
        self.sim.schedule_at(self.busy_until, self._complete_engage, host, handle)
        return handle

    def _complete_engage(self, host: "LimeHost", handle: SimpleOp) -> None:
        self._pending_engagements = max(0, self._pending_engagements - 1)
        if host.name not in self.members:
            self.members.append(host.name)
        host.engaged = True
        handle.finalize(Tuple("engaged", host.name))
        self._drain()

    def disengage(self, host: "LimeHost") -> SimpleOp:
        """Atomically remove a host (same barrier semantics)."""
        handle = SimpleOp(self.sim)
        cost = self.engage_cost_per_host * max(1, len(self.members))
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + cost
        self.sim.schedule_at(self.busy_until, self._complete_disengage, host, handle)
        return handle

    def _complete_disengage(self, host: "LimeHost", handle: SimpleOp) -> None:
        if host.name in self.members:
            self.members.remove(host.name)
        host.engaged = False
        handle.finalize(Tuple("disengaged", host.name))
        self._drain()

    # ------------------------------------------------------------------
    # Operation admission (blocked during engagement)
    # ------------------------------------------------------------------
    def submit(self, fn, *args) -> None:
        """Run an operation now, or queue it behind the engagement barrier."""
        if self.sim.now < self.busy_until:
            self.ops_blocked_by_engagement += 1
            self._queued.append((fn, args))
        else:
            fn(*args)

    def _drain(self) -> None:
        if self.sim.now < self.busy_until:
            return  # another engagement is already in progress
        queued, self._queued = self._queued, []
        for fn, args in queued:
            fn(*args)

    def consistency_round(self, origin: str) -> None:
        """Charge the per-operation consistency traffic to the network."""
        for member in self.members:
            if member != origin:
                self.network.unicast(origin, member, {"kind": "lime_sync"})


class LimeHost(SpaceNode):
    """A host participating in (at most) one federation."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 federation: Federation) -> None:
        self.sim = sim
        self.name = name
        self.federation = federation
        self.engaged = False
        self.iface = network.attach(name, lambda msg: None)
        self.local_space = LocalTupleSpace(sim, name=name)

    # ------------------------------------------------------------------
    def engage(self) -> SimpleOp:
        """Join the federation (atomic, blocking everyone else)."""
        return self.federation.engage(self)

    def disengage(self) -> SimpleOp:
        """Leave the federation (atomic, blocking everyone else)."""
        return self.federation.disengage(self)

    def _space(self) -> LocalTupleSpace:
        return self.federation.space if self.engaged else self.local_space

    # ------------------------------------------------------------------
    def out(self, tup: Tuple) -> None:
        self.federation.submit(self._do_out, tup)

    def _do_out(self, tup: Tuple) -> None:
        space = self._space()
        space.out(tup)
        if self.engaged:
            self.federation.consistency_round(self.name)

    def rdp(self, pattern: Pattern) -> SimpleOp:
        handle = SimpleOp(self.sim)
        self.federation.submit(self._do_probe, pattern, handle, False)
        return handle

    def inp(self, pattern: Pattern) -> SimpleOp:
        handle = SimpleOp(self.sim)
        self.federation.submit(self._do_probe, pattern, handle, True)
        return handle

    def _do_probe(self, pattern: Pattern, handle: SimpleOp, remove: bool) -> None:
        space = self._space()
        tup = space.inp(pattern) if remove else space.rdp(pattern)
        if self.engaged:
            self.federation.consistency_round(self.name)
        handle.finalize(tup, None if tup is not None else "no match")

    def rd(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._blocking(pattern, timeout, remove=False)

    def in_(self, pattern: Pattern, timeout: float = 30.0) -> SimpleOp:
        return self._blocking(pattern, timeout, remove=True)

    def _blocking(self, pattern: Pattern, timeout: float, remove: bool) -> SimpleOp:
        handle = SimpleOp(self.sim)
        self.federation.submit(self._do_blocking, pattern, handle, remove, timeout)
        return handle

    def _do_blocking(self, pattern: Pattern, handle: SimpleOp, remove: bool,
                     timeout: float) -> None:
        space = self._space()
        waiter = space.in_(pattern) if remove else space.rd(pattern)
        if self.engaged:
            self.federation.consistency_round(self.name)
        if waiter.satisfied:
            handle.finalize(waiter.event.value)
            return
        waiter.event.add_callback(lambda event: handle.finalize(event.value))
        self.sim.schedule(timeout, self._give_up, waiter, handle)

    def _give_up(self, waiter, handle: SimpleOp) -> None:
        if not handle.done:
            waiter.cancel()
            handle.finalize(None, error="timeout")

    def stored_tuples(self) -> int:
        # The federated store's burden is shared; attribute an even share.
        if self.engaged and self.federation.members:
            share = self.federation.space.count() / len(self.federation.members)
            return int(share) + self.local_space.count()
        return self.local_space.count()


def build_lime_system(sim: Simulator, network: Network, names: list[str],
                      max_hosts: Optional[int] = 6,
                      engage_cost_per_host: float = 0.25):
    """Construct a federation plus hosts (not yet engaged)."""
    federation = Federation(sim, network, engage_cost_per_host=engage_cost_per_host,
                            max_hosts=max_hosts)
    hosts = {name: LimeHost(sim, network, name, federation) for name in names}
    return federation, hosts
