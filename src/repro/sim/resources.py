"""Synchronization primitives for simulation processes.

The Tiamat middleware itself manages contention through leases, but
scenario and application code frequently needs plain coordination tools:
a counted :class:`SimResource` (e.g. "this PDA can run two concurrent
fetches"), a :class:`SimStore` (producer/consumer buffer of Python
objects), and a :class:`Gate` (broadcast signal many processes wait on).

All three follow the conventions of the kernel: acquisition returns an
Event to ``yield`` on, FIFO fairness among waiters, and deterministic
behaviour under a fixed seed.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class SimResource:
    """A counted resource with FIFO acquisition.

    ::

        resource = SimResource(sim, capacity=2)

        def worker(sim):
            token = yield resource.acquire()
            try:
                yield sim.timeout(3.0)
            finally:
                resource.release(token)
    """

    def __init__(self, sim: Simulator, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[Event] = deque()
        self._tokens = 0

    def acquire(self) -> Event:
        """An event that succeeds (with an opaque token) once a unit is free."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            self._tokens += 1
            event.succeed(self._tokens)
        else:
            self._queue.append(event)
        return event

    def release(self, token: Any = None) -> None:
        """Return a unit; wakes the longest-waiting acquirer."""
        if self.in_use <= 0:
            raise SimulationError("release without acquire")
        if self._queue:
            event = self._queue.popleft()
            self._tokens += 1
            event.succeed(self._tokens)
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        """Processes currently waiting to acquire."""
        return len(self._queue)


class SimStore:
    """An unbounded FIFO buffer of Python objects for processes.

    ``put`` never blocks; ``get`` returns an event yielding the oldest
    item, blocking (FIFO among getters) while the store is empty.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the longest-waiting getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that succeeds with the next item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Gate:
    """A broadcast signal: every waiter is released when the gate opens.

    Re-usable: :meth:`close` re-arms it.  Waiting on an open gate returns
    immediately.
    """

    def __init__(self, sim: Simulator, open_: bool = False) -> None:
        self.sim = sim
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        """Whether waiters currently pass straight through."""
        return self._open

    def wait(self) -> Event:
        """An event that succeeds when the gate is (or becomes) open."""
        event = self.sim.event()
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self, value: Any = None) -> None:
        """Open the gate, releasing every current waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)

    def close(self) -> None:
        """Re-arm the gate; subsequent waiters block until the next open."""
        self._open = False
