"""Named, reproducible random streams.

A simulation mixes many independent sources of randomness (mobility paths,
message loss, workload inter-arrival times, non-deterministic tuple-match
selection).  If they all drew from one ``random.Random``, adding a draw in
one subsystem would shift every subsequent sample in all the others and
silently change experiment results.  ``RngStream`` therefore derives child
streams by hashing a parent seed with a stream name, so each subsystem owns
an independent, stable sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Sequence


def _derive_seed(parent_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{parent_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A seeded random stream that can spawn named child streams.

    The public surface mirrors the handful of ``random.Random`` methods the
    simulation actually uses, plus :meth:`child` for derivation.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self.seed)

    def child(self, name: str) -> "RngStream":
        """Derive an independent stream identified by ``name``."""
        return RngStream(_derive_seed(self.seed, name), name=f"{self.name}/{name}")

    # -- draws ----------------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, a: float, b: float) -> float:
        """Uniform float in [a, b]."""
        return self._random.uniform(a, b)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in [a, b] inclusive."""
        return self._random.randint(a, b)

    def choice(self, seq: Sequence[Any]) -> Any:
        """Uniformly random element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[Any], k: int) -> list:
        """k distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStream {self.name} seed={self.seed}>"
