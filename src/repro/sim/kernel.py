"""The discrete-event simulator: clock, event queue, and run loop.

The design is a small, deterministic core:

* :class:`Simulator` owns the virtual clock (``now``) and a binary heap of
  pending callbacks keyed by ``(time, sequence)``.  The monotonically
  increasing sequence number guarantees FIFO order among callbacks scheduled
  for the same instant, which in turn makes every experiment reproducible.
* :class:`Timer` is the cancellable handle returned by
  :meth:`Simulator.schedule`; cancelling is O(1) (the heap entry is merely
  flagged dead and skipped when popped).
* Generator-based processes and event objects live in sibling modules and
  reduce to ``schedule`` calls on this class.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.rng import RngStream


class Timer:
    """Cancellable handle for a scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only ever
    calls :meth:`cancel` or inspects :attr:`cancelled`/:attr:`fired`.

    ``tiebreak`` is a secondary sort key between ``time`` and ``seq``: with
    the default of ``0.0`` for every timer the heap order is exactly the
    historical ``(time, seq)`` FIFO, so seeded experiments are bit-identical.
    A schedule-exploration harness (``repro.check``) installs a tiebreak
    hook that assigns random subkeys, turning same-instant FIFO into an
    adversarially explorable interleaving while staying deterministic per
    seed.
    """

    __slots__ = ("time", "tiebreak", "seq", "callback", "args", "cancelled",
                 "fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple,
                 tiebreak: float = 0.0) -> None:
        self.time = time
        self.tiebreak = tiebreak
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running; a no-op if it already fired."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the callback is still pending."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Timer") -> bool:
        return ((self.time, self.tiebreak, self.seq)
                < (other.time, other.tiebreak, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Timer t={self.time:.6g} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulation's random streams.  Two runs with the
        same seed and the same scheduled work produce bit-identical event
        orderings.
    start_time:
        Initial value of the virtual clock (defaults to ``0.0``).
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Timer] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.seed = seed
        self._rng_root = RngStream(seed)
        self._rng_children: dict[str, RngStream] = {}
        self.events_processed = 0
        self._obs = None
        #: Optional ``fn() -> float`` returning the tiebreak subkey stamped
        #: on every subsequently scheduled timer (see :class:`Timer`).
        #: ``None`` (the default) keeps the historical FIFO order.
        self._tiebreak_hook: Optional[Callable[[], float]] = None
        #: Optional ``fn(timer)`` invoked after every executed callback —
        #: the model checker's schedule recorder.  ``None`` by default; the
        #: run loop pays one falsy check per event, nothing else.
        self.event_hook: Optional[Callable[[Timer], None]] = None
        self.profiling = False
        #: handler label -> [calls, perf_counter seconds]; populated only
        #: while :meth:`enable_profiling` is in effect.
        self.handler_profile: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Clock and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def rng(self, name: str = "default") -> RngStream:
        """Return a named random stream derived from the master seed.

        Named streams decouple the randomness consumed by independent
        subsystems (e.g. mobility vs. message loss), so adding randomness in
        one place does not perturb the sampled values in another.
        """
        stream = self._rng_children.get(name)
        if stream is None:
            stream = self._rng_root.child(name)
            self._rng_children[name] = stream
        return stream

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self):
        """This simulation's telemetry hub (registry + opt-in tracer).

        Built lazily on first access, clocked by virtual time.  Components
        register their collect-time metric callbacks here; tracing starts
        only when ``sim.obs.start_trace(network)`` is called, so untouched
        simulations pay nothing.
        """
        if self._obs is None:
            from repro.obs import Observability

            self._obs = Observability(clock=lambda: self._now)
            self._obs.observe_kernel(self)
        return self._obs

    def enable_profiling(self) -> None:
        """Start timing every run-loop callback with ``perf_counter``.

        Per-handler call counts and cumulative wall-clock seconds land in
        :attr:`handler_profile` (and, through ``obs``, in the
        ``sim_handler_*`` metric families).  Profiling measures wall time
        only — virtual-time behaviour is unchanged.
        """
        self.profiling = True

    def disable_profiling(self) -> None:
        """Stop timing callbacks (accumulated profile is kept)."""
        self.profiling = False

    def _profile(self, callback: Callable[..., Any], elapsed: float) -> None:
        label = getattr(callback, "__qualname__", None) or repr(callback)
        record = self.handler_profile.get(label)
        if record is None:
            record = self.handler_profile[label] = [0, 0.0]
        record[0] += 1
        record[1] += elapsed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def set_tiebreak(self, hook: Optional[Callable[[], float]]) -> None:
        """Install (or clear, with ``None``) the same-instant tiebreak hook.

        When set, every subsequently scheduled timer is stamped with
        ``hook()`` as its secondary sort key, so callbacks scheduled for
        the *same instant* execute in hook-chosen order instead of FIFO.
        This is the model checker's schedule-exploration lever: a hook
        drawing from a named :meth:`rng` stream yields a different — but
        per-seed deterministic — interleaving of every same-tick race
        (delivery vs. expiry, ack vs. retransmit, flush vs. handler).

        Timers already in the queue keep their stamps; clearing the hook
        restores FIFO for future scheduling only.
        """
        self._tiebreak_hook = hook

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` units of virtual time.

        ``delay`` must be non-negative; a zero delay schedules the callback
        for the current instant, after all callbacks already queued for this
        instant (FIFO — unless a tiebreak hook reorders same-instant
        callbacks, see :meth:`set_tiebreak`).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        tiebreak = 0.0 if self._tiebreak_hook is None else self._tiebreak_hook()
        timer = Timer(self._now + delay, next(self._seq), callback, args,
                      tiebreak)
        heapq.heappush(self._queue, timer)
        return timer

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback, *args)

    # ------------------------------------------------------------------
    # Processes and events (thin wrappers; real logic in sibling modules)
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator) -> "Process":
        """Start a generator-based process now; returns its Process handle."""
        from repro.sim.process import Process

        return Process(self, generator)

    def event(self) -> "Event":
        """Create an untriggered event bound to this simulator."""
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """Create an event that succeeds after ``delay`` virtual time units."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.  Returns the final clock value.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if the queue drained earlier, mirroring SimPy semantics so that
        periodic measurements aligned to the horizon are well-defined.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                timer = self._queue[0]
                if timer.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and timer.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                if timer.time < self._now:
                    raise SimulationError("event queue corrupted: time moved backwards")
                self._now = timer.time
                timer.fired = True
                if self.profiling:
                    started = _time.perf_counter()
                    try:
                        timer.callback(*timer.args)
                    except StopSimulation:
                        self._profile(timer.callback,
                                      _time.perf_counter() - started)
                        break
                    self._profile(timer.callback,
                                  _time.perf_counter() - started)
                else:
                    try:
                        timer.callback(*timer.args)
                    except StopSimulation:
                        break
                processed += 1
                self.events_processed += 1
                if self.event_hook is not None:
                    self.event_hook(timer)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return self._now

    def step(self) -> bool:
        """Process exactly one pending callback; False if queue is empty."""
        before = self.events_processed
        self.run(max_events=1)
        return self.events_processed > before

    def stop(self) -> None:
        """Halt the current :meth:`run` after the active callback returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) callbacks in the queue."""
        return sum(1 for t in self._queue if not t.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next live callback, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6g} pending={self.pending}>"
