"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that simulation processes can wait
on.  Events either *succeed* with a value or *fail* with an exception; in
both cases the registered callbacks run at the current virtual instant (via a
zero-delay timer, preserving deterministic FIFO ordering with everything else
scheduled "now").

:class:`Timeout` is an event that succeeds after a fixed virtual delay.
:class:`AnyOf`/:class:`AllOf` compose events so a process can wait for the
first of several things (e.g. "a matching tuple arrives OR my lease
expires") or for all of them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    Callbacks are callables of one argument (the event itself); they are
    invoked exactly once, at the virtual instant the event triggers.  Adding
    a callback to an already-triggered event schedules it to run now.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    @property
    def defused(self) -> bool:
        """Whether a failure of this event has been marked as handled."""
        return self._defused

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(exception, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._value = value
        self._ok = ok
        self.sim.schedule(0.0, self._run_callbacks)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    # -- waiting --------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event triggers."""
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            # Already triggered and callbacks flushed: run at "now".
            self.sim.schedule(0.0, callback, self)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Deregister a pending callback; a no-op if already flushed."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that succeeds ``delay`` time units after creation.

    The underlying timer can be cancelled with :meth:`cancel` (e.g. when a
    blocking operation is satisfied before its lease deadline).
    """

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        super().__init__(sim)
        self.delay = delay
        self._timer = sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self.triggered:
            self.succeed(value)

    def cancel(self) -> None:
        """Stop the timeout from firing; a no-op once triggered."""
        self._timer.cancel()


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` and :class:`AllOf`."""

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed(self._snapshot())
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _snapshot(self) -> dict:
        return {e: e.value for e in self.events if e.triggered}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._done += 1
        if self._check():
            self.succeed(self._snapshot())

    def _check(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds.

    The success value is a dict mapping each already-triggered child to its
    value, so the waiter can tell which event won.
    """

    def _check(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Succeeds when every child event has succeeded."""

    def _check(self) -> bool:
        return self._done >= len(self.events)
