"""Generator-based simulation processes.

A process is a Python generator that ``yield``\\ s :class:`~repro.sim.events.Event`
objects; the kernel resumes the generator with the event's value when the
event triggers (or throws the event's exception into it on failure).  The
process object is itself an event that succeeds with the generator's return
value, so processes compose: one process can wait for another, or combine a
child process with a timeout via :class:`~repro.sim.events.AnyOf`.

Processes support cooperative interruption
(:meth:`Process.interrupt`), which throws
:class:`~repro.errors.ProcessInterrupt` into the generator at the point it is
currently waiting — the mechanism the leasing subsystem uses to cut off
work whose lease has been revoked.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import Event


class Process(Event):
    """A running generator coupled to the simulator.

    Create via :meth:`repro.sim.Simulator.spawn`.  The process starts at the
    current instant (its first step runs via a zero-delay timer, so spawning
    never re-enters user code synchronously).
    """

    def __init__(self, sim, generator: Generator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"spawn() needs a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Event | None = None
        sim.schedule(0.0, self._step, None, None)

    # -- lifecycle -------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process where it waits.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the awaited event first, so a later
        trigger of that event cannot resume the process twice.
        """
        if not self.alive:
            raise SimulationError("cannot interrupt a finished process")
        self.sim.schedule(0.0, self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.alive:
            return  # finished in the meantime; interrupt is moot
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._resume)
            self._waiting_on = None
        self._step(None, ProcessInterrupt(cause))

    # -- stepping ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            event.defuse()
            self._step(None, event.value)

    def _step(self, value: Any, exception: BaseException | None) -> None:
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self.fail(exc)
            self.sim.schedule(0.0, self._reraise_if_unhandled, exc)
            return
        if not isinstance(target, Event):
            self.generator.throw(
                SimulationError(f"process yielded {target!r}; yield Event objects")
            )
            return
        if target is self:
            self.generator.throw(SimulationError("process cannot wait on itself"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _reraise_if_unhandled(self, exc: BaseException) -> None:
        # If nothing waited on this process and nobody defused the failure,
        # surface the exception instead of letting it vanish: "errors should
        # never pass silently".  Waiters (other processes, AnyOf/AllOf)
        # defuse the failure when they consume it; this callback runs after
        # the failure callbacks have been flushed, so the flag is settled.
        if not self.defused:
            raise exc
